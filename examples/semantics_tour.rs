//! A guided tour of the paper's Section II: runs Q1's building blocks
//! (Table I) remotely under each message-passing semantics and shows the
//! five semantic problems of pass-by-value appearing — and disappearing
//! under pass-by-fragment / pass-by-projection.
//!
//! ```sh
//! cargo run --example semantics_tour
//! ```

use xqd::{Federation, NetworkModel, Strategy};

const PROLOG: &str = r#"
    declare function makenodes() as node()
    { element a { element b { element c {()} } }/b };
    declare function overlap($l as node(), $r as node()) as xs:boolean
    { not(empty($l//* intersect $r//*)) };
    declare function earlier($l as node(), $r as node()) as node()
    { if ($l << $r) then $l else $r };
"#;

fn run_all(title: &str, local_query: &str, remote_query: &str) {
    println!("\n── {title} ──");
    let mut fed = Federation::new(NetworkModel::lan());
    fed.add_peer("p");
    let local = fed.run(local_query, Strategy::DataShipping).unwrap();
    println!("  local ground truth:   {:?}", local.result);
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let mut fed = Federation::new(NetworkModel::lan());
        fed.add_peer("p");
        match fed.run(remote_query, strategy) {
            Ok(out) => {
                let verdict = if out.result == local.result { "✓ matches local" } else { "✗ DIFFERS" };
                println!("  {:<19}  {:?}  {verdict}", strategy.name(), out.result);
            }
            Err(e) => println!("  {:<19}  error: {e}", strategy.name()),
        }
    }
}

fn main() {
    println!("Semantic problems of remote XQuery execution (paper Section II, query Q1)");

    run_all(
        "Problem 1: reverse axis on a shipped result ($bc/parent::a)",
        &format!("{PROLOG} let $bc := makenodes() return name($bc/parent::a)"),
        &format!("{PROLOG} let $bc := execute at {{\"p\"}} {{ makenodes() }} return name($bc/parent::a)"),
    );

    run_all(
        "Problem 2: node identity between shipped parameters (overlap)",
        &format!(
            "{PROLOG} let $bc := makenodes(), $abc := $bc/parent::a \
             return overlap($abc, $bc)"
        ),
        &format!(
            "{PROLOG} let $bc := makenodes(), $abc := $bc/parent::a \
             return execute at {{\"p\"}} {{ overlap($abc, $bc) }}"
        ),
    );

    run_all(
        "Problem 3: document order between parameters (earlier)",
        &format!(
            "{PROLOG} let $bc := makenodes(), $abc := $bc/parent::a \
             return name(earlier($bc, $abc))"
        ),
        &format!(
            "{PROLOG} let $bc := makenodes(), $abc := $bc/parent::a \
             return name(execute at {{\"p\"}} {{ earlier($bc, $abc) }})"
        ),
    );

    run_all(
        "Problem 4: steps over results of different calls (//c dedup)",
        &format!(
            "{PROLOG} let $bc := makenodes(), $abc := $bc/parent::a \
             return count((for $n in ($bc, $abc) return earlier($n, $abc))//c)"
        ),
        &format!(
            "{PROLOG} let $bc := makenodes(), $abc := $bc/parent::a \
             return count((for $n in ($bc, $abc) \
                           return execute at {{\"p\"}} {{ earlier($n, $abc) }})//c)"
        ),
    );

    run_all(
        "Problem 5: fn:root() on a shipped result (root($bc)/a)",
        &format!("{PROLOG} let $bc := makenodes() return count(root($bc)/a)"),
        &format!(
            "{PROLOG} let $bc := execute at {{\"p\"}} {{ makenodes() }} \
             return count(root($bc)/a)"
        ),
    );

    println!("\nFull Q1 (Table I): local result is exactly one <c/> element");
    run_all(
        "Q1 end-to-end",
        &format!(
            "{PROLOG} let $bc := makenodes(), $abc := $bc/parent::a \
             return count((for $node in ($bc, $abc) \
                           let $first := earlier($bc, $abc) \
                           where overlap($first, $node) \
                           return $node)//c)"
        ),
        &format!(
            "{PROLOG} let $bc := execute at {{\"p\"}} {{ makenodes() }}, \
                 $abc := $bc/parent::a \
             return count((for $node in ($bc, $abc) \
                           let $first := earlier($bc, $abc) \
                           where overlap($first, $node) \
                           return $node)//c)"
        ),
    );
}
