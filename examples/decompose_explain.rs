//! Walks the paper's Q2 (Table III) through the full decomposition
//! pipeline, printing each stage: surface query → XCore → d-graph →
//! normalized (let-motion) → the decomposed plans Qv2 / Qf2 / Qp2 with code
//! motion and projection paths (Tables III & IV) → the compiled flat plan
//! IR the executor actually runs (op list, per-step indexed/scan choice,
//! folded constants, scatter rounds, replica routes) → the join-aware
//! variant: the detected cross-peer join graph, the chosen key-ship
//! direction, and the rewritten distinct-key harvest call.
//!
//! ```sh
//! cargo run --example decompose_explain
//! ```

use xqd::core::dgraph::build_dgraph;
use xqd::core::letmotion::let_motion;
use xqd::{compile_module, decompose, decompose_with, parse_query, DecomposeOptions, StaticContext, Strategy};
use xqd::xquery::PlanRoute;

const Q2: &str = r#"
(let $s := doc("xrpc://A/students.xml")/people/person,
     $c := doc("xrpc://B/course42.xml"),
     $t := $s[tutor = $s/name]
 for $e in $c/enroll/exam
 where $e/@id = $t/id
 return $e)/grade
"#;

fn main() {
    println!("=== surface query Q2 (Table III) ==={Q2}");

    let module = parse_query(Q2).expect("Q2 parses");

    let core = xqd::xquery::normalize(&module).expect("normalizes");
    println!("=== XCore equivalent (Qc2) ===\n{core}\n");

    let normalized = let_motion(&core);
    println!("=== after let-motion (Qn2) ===\n{normalized}\n");

    let graph = build_dgraph(&normalized).expect("d-graph builds");
    println!("=== d-graph ({} vertices, Fig. 2 style) ===", graph.len());
    print!("{}", graph.dump());

    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let d = decompose(&module, strategy).expect("decomposes");
        println!("\n=== decomposed under {} ===", strategy.name());
        println!("{}", d.rewritten);
        println!("--- {} remote call(s):", d.calls.len());
        for (i, call) in d.calls.iter().enumerate() {
            println!("  fcn{} at {}:", i + 1, call.peer);
            println!("    params: {:?}", call.params.iter().map(|p| format!("${} := ${}", p.var, p.outer)).collect::<Vec<_>>());
            println!("    body:   {}", call.body);
            if let Some(proj) = &call.projection {
                println!(
                    "    response projection: used={:?} returned={:?}",
                    proj.result.used.iter().map(ToString::to_string).collect::<Vec<_>>(),
                    proj.result.returned.iter().map(ToString::to_string).collect::<Vec<_>>(),
                );
                for (j, ps) in proj.params.iter().enumerate() {
                    println!(
                        "    param {} projection: used={:?} returned={:?}",
                        j,
                        ps.used.iter().map(ToString::to_string).collect::<Vec<_>>(),
                        ps.returned.iter().map(ToString::to_string).collect::<Vec<_>>(),
                    );
                }
            }
        }

        // the flat plan IR the executor lowers the rewritten query to (the
        // coordinator caches this per query text + static context)
        let routes = d
            .calls
            .iter()
            .map(|c| PlanRoute { peer: c.peer.clone(), replicas: c.replicas.clone() })
            .collect();
        let plan = compile_module(&[], &d.rewritten, true, &StaticContext::default())
            .with_routes(routes);
        println!("--- compiled plan IR:");
        for line in plan.dump().lines() {
            println!("  {line}");
        }

        // the executor's default adds join-aware decomposition on top: the
        // cross-peer equi-join is detected, the small side's Execute is
        // rewritten to harvest distinct join keys, and the consumer call
        // evaluates the predicate against the shipped key filter
        let opts = DecomposeOptions { semijoin: true, ..Default::default() };
        let dj = decompose_with(&module, strategy, opts).expect("decomposes");
        println!("--- join graph (join-aware decomposition):");
        if dj.semijoins.is_empty() {
            println!("  no cross-peer value join detected under {}", strategy.name());
        }
        for sj in &dj.semijoins {
            let producer = format!("call {} at {}", sj.producer + 1, sj.producer_peer);
            let consumer = match (&sj.consumer, &sj.consumer_peer) {
                (Some(c), Some(p)) => format!("call {} at {}", c + 1, p),
                _ => "(coordinator)".to_string(),
            };
            println!("  edge: ${} — key column {}", sj.var, sj.key_path);
            println!("    ship direction: {producer} -> {consumer}");
        }
        for (i, call) in dj.calls.iter().enumerate() {
            if !call.depends_on.is_empty() {
                println!(
                    "  call {} at {} depends on call(s) {:?} (two-phase scatter)",
                    i + 1,
                    call.peer,
                    call.depends_on.iter().map(|d| d + 1).collect::<Vec<_>>(),
                );
            }
        }
        if !dj.semijoins.is_empty() {
            println!("  rewritten: {}", dj.rewritten);
        }
    }
}
