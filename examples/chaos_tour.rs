//! Chaos tour: a seeded fault-injection sweep over the federation,
//! demonstrating the failure model end to end and checking the core
//! robustness invariant as it goes:
//!
//! > under any fault schedule a query returns results **bit-identical** to
//! > the fault-free run, or a **typed** error — never a panic, a hang, or
//! > a wrong answer.
//!
//! ```sh
//! cargo run --release --example chaos_tour                 # default sweep
//! cargo run --release --example chaos_tour -- --seeds 100  # wider sweep
//! cargo run --release --example chaos_tour -- --quiet      # summary only
//! ```
//!
//! Exits non-zero if any schedule violates the invariant.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

use xqd::{rendezvous_order, FaultPlan, Federation, Metrics, NetworkModel, Strategy};

const FAULT_RATE: f64 = 0.3;
/// Near-total targeted rate for the replica-failover scene: the elected
/// host is effectively killed, the ladder must walk to its stand-in.
const KILL_RATE: f64 = 0.9;

const STRATEGIES: [Strategy; 3] =
    [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection];

const QUERIES: [(&str, &str); 2] = [
    (
        "ancestry",
        "let $b := execute at {\"p\"} params () { doc(\"d.xml\")/a/b[1] } \
         return (count($b/parent::a), $b//c)",
    ),
    (
        "scatter",
        "(execute at {\"a\"} params () { count(doc(\"da.xml\")//x) }) + \
         (execute at {\"b\"} params () { count(doc(\"db.xml\")//x) })",
    ),
];

/// The logical peer whose elected replica the failover scene attacks, per
/// query (for the scatter query: one slot's host dies mid-round).
const VICTIMS: [&str; 2] = ["p", "a"];

fn federation() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("p", "d.xml", "<a><b><c>one</c></b><b><c>two</c></b></a>").unwrap();
    f.load_document("a", "da.xml", "<r><x/><x/></r>").unwrap();
    f.load_document("b", "db.xml", "<r><x/></r>").unwrap();
    f
}

/// The fixture with every peer's documents replicated onto a second host,
/// deterministic replica election seeded by `seed`, and hedging armed.
fn replicated_federation(seed: u64) -> Federation {
    let mut f = federation();
    for (primary, replica) in [("p", "p2"), ("a", "a2"), ("b", "b2")] {
        f.replicate_peer(primary, replica).unwrap();
    }
    f.set_replica_seed(seed);
    f.set_hedge(Some(Duration::from_millis(2)));
    f
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = 50u64;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                seeds = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--seeds requires a number");
                i += 2;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            other => {
                eprintln!("unknown option {other:?} (supported: --seeds N, --quiet)");
                return ExitCode::FAILURE;
            }
        }
    }

    // the injected worker panics are captured and converted into typed
    // errors; silence their default-hook noise
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("injected fault"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let mut schedules = 0u64;
    let mut clean_runs = 0u64;
    let mut typed_errors: BTreeMap<String, u64> = BTreeMap::new();
    let mut violations = 0u64;
    let mut total = Metrics::default();

    for (label, query) in QUERIES {
        for strategy in STRATEGIES {
            let baseline = federation().run(query, strategy).expect("fault-free run succeeds");
            for seed in 0..seeds {
                schedules += 1;
                let mut f = federation();
                f.set_fault_plan(Some(FaultPlan::uniform(seed, FAULT_RATE)));
                match f.run(query, strategy) {
                    Ok(out) => {
                        total.add(&out.metrics);
                        if out.result == baseline.result {
                            clean_runs += 1;
                        } else {
                            violations += 1;
                            eprintln!(
                                "VIOLATION [{label}/{}/seed {seed}]: wrong answer {:?} != {:?}",
                                strategy.name(),
                                out.result,
                                baseline.result
                            );
                        }
                    }
                    Err(e) => {
                        total.add(&f.metrics());
                        match e.code {
                            Some(code) => *typed_errors.entry(code).or_insert(0) += 1,
                            None => {
                                violations += 1;
                                eprintln!(
                                    "VIOLATION [{label}/{}/seed {seed}]: untyped error {:?}",
                                    strategy.name(),
                                    e.message
                                );
                            }
                        }
                    }
                }
            }
            if !quiet {
                println!("swept {label} under {} ({seeds} seeds)", strategy.name());
            }
        }
    }

    // scene 2: replica failover — every peer's documents also live on a
    // stand-in host, and the fault schedule is aimed squarely at the host
    // the ladder elects first. With a healthy replica up, every schedule
    // must end in the baseline answer without degrading to data shipping.
    let mut failover_schedules = 0u64;
    for ((label, query), victim) in QUERIES.into_iter().zip(VICTIMS) {
        for strategy in STRATEGIES {
            let baseline = federation().run(query, strategy).expect("fault-free run succeeds");
            for seed in 0..seeds {
                schedules += 1;
                failover_schedules += 1;
                let mut f = replicated_federation(seed);
                let hosts = f.replica_catalog().hosts_serving_peer(victim);
                let primary = rendezvous_order(seed, &hosts)[0].clone();
                f.set_fault_plan(Some(FaultPlan::uniform(seed, KILL_RATE).with_target(&primary)));
                match f.run(query, strategy) {
                    Ok(out) if out.result == baseline.result && out.metrics.fallbacks == 0 => {
                        total.add(&out.metrics);
                        clean_runs += 1;
                    }
                    Ok(out) => {
                        total.add(&out.metrics);
                        violations += 1;
                        eprintln!(
                            "VIOLATION [{label}/{}/seed {seed}]: killed {primary} but got \
                             result {:?} (baseline {:?}) with {} degradations",
                            strategy.name(),
                            out.result,
                            baseline.result,
                            out.metrics.fallbacks,
                        );
                    }
                    Err(e) => {
                        total.add(&f.metrics());
                        violations += 1;
                        eprintln!(
                            "VIOLATION [{label}/{}/seed {seed}]: killed {primary} and the \
                             healthy replica did not rescue the run: {:?}",
                            strategy.name(),
                            e.message,
                        );
                    }
                }
            }
            if !quiet {
                println!(
                    "swept {label} under {} with {victim}'s elected host killed ({seeds} seeds)",
                    strategy.name()
                );
            }
        }
    }

    println!("chaos tour: {schedules} schedules at fault rate {FAULT_RATE}");
    println!(
        "  {clean_runs} correct results, {} typed errors, {violations} violations",
        schedules - clean_runs,
    );
    println!(
        "  {} faults injected, {} retries, {} graceful degradations",
        total.faults_injected, total.retries, total.fallbacks,
    );
    println!(
        "  {failover_schedules} replicated kill-the-primary schedules: {} replica failovers, \
         {} hedges ({} won), {} breaker trips",
        total.replica_failovers, total.hedges, total.hedge_wins, total.breaker_trips,
    );
    for (code, count) in &typed_errors {
        println!("    {code}: {count}");
    }
    if violations == 0 {
        println!("invariant holds: bit-identical results or typed errors, no panics");
        ExitCode::SUCCESS
    } else {
        eprintln!("invariant VIOLATED {violations} time(s)");
        ExitCode::FAILURE
    }
}
