//! Scale-out experiment: the same multi-peer XMark aggregate executed with
//! the parallel scatter-gather executor vs. the sequential loop, 1..=8
//! peers under the WAN model. Writes the trajectory to `BENCH.json` and
//! prints the table.
//!
//! Run with: `cargo run --release --example scaleout`

fn main() {
    let max_peers = 8;
    let bytes_per_peer = 20_000;
    eprintln!("scale-out sweep: 1..={max_peers} peers, ~{bytes_per_peer} B/peer (WAN model)");
    let points = xqd_bench::scaleout(max_peers, bytes_per_peer);

    println!(
        "{:>5} {:>10} {:>14} {:>14} {:>9} {:>8}",
        "peers", "speedup", "seq wall", "par wall", "msg KB", "equal"
    );
    for p in &points {
        println!(
            "{:>5} {:>9.2}x {:>14?} {:>14?} {:>9.1} {:>8}",
            p.peers,
            p.speedup(),
            p.sequential.wall_clock_serialized(),
            p.parallel.wall_clock_overlapped(),
            p.parallel.message_bytes as f64 / 1024.0,
            p.parallel_result == p.sequential_result
                && p.parallel.message_bytes == p.sequential.message_bytes,
        );
    }

    let json = xqd_bench::scaleout_json(&points);
    std::fs::write("BENCH.json", &json).expect("write BENCH.json");
    eprintln!("trajectory written to BENCH.json");
}
