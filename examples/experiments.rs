//! Regenerates every figure of the paper's evaluation (Section VII) and
//! prints the series in tabular form.
//!
//! ```sh
//! cargo run --release --example experiments            # all figures
//! cargo run --release --example experiments -- fig7    # one figure
//! cargo run --release --example experiments -- --large # paper-scale sweep
//! ```
//!
//! Document sizes default to 0.25–4 MB per document (the paper used
//! 10–160 MB per document on a 3-machine testbed); pass `--large` for a
//! 1–16 MB sweep. The reproduction target is the *shape* of each series.

use std::time::Duration;

use xqd_bench::{fig10_11_projection, fig7_bandwidth, fig8_breakdown, BENCHMARK_QUERY};
use xqd_core::Strategy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let large = args.iter().any(|a| a == "--large");
    let which: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let all = which.is_empty();

    let sizes: Vec<usize> = if large {
        vec![1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000]
    } else {
        vec![250_000, 500_000, 1_000_000, 2_000_000, 4_000_000]
    };
    let breakdown_size = *sizes.last().unwrap();

    println!("benchmark query (Section VII):{BENCHMARK_QUERY}");

    if all || which.contains(&"fig7") || which.contains(&"fig9") {
        println!("== Figures 7 & 9: bandwidth usage and execution time ==");
        println!(
            "{:>12} | {:>19} | {:>14} | {:>12} | {:>8}",
            "total docs", "strategy", "transferred", "time", "result"
        );
        for (size, points) in fig7_bandwidth(&sizes) {
            for p in points {
                println!(
                    "{:>12} | {:>19} | {:>14} | {:>12} | {:>8}",
                    human(2 * size as u64),
                    p.strategy.name(),
                    human(p.metrics.transferred_bytes()),
                    format!("{:.1?}", p.metrics.total + p.metrics.network),
                    p.result_len,
                );
            }
            println!("{}", "-".repeat(78));
        }
    }

    if all || which.contains(&"fig8") {
        println!("\n== Figure 8: query time breakdown ({} per doc) ==", human(breakdown_size as u64));
        println!(
            "{:>19} | {:>10} | {:>10} | {:>12} | {:>11} | {:>10}",
            "strategy", "shred", "local exec", "(de)serialize", "remote exec", "network"
        );
        for p in fig8_breakdown(breakdown_size) {
            println!(
                "{:>19} | {:>10} | {:>10} | {:>12} | {:>11} | {:>10}",
                p.strategy.name(),
                fmt_dur(p.metrics.shred),
                fmt_dur(p.metrics.local_exec()),
                fmt_dur(p.metrics.serialize),
                fmt_dur(p.metrics.remote_exec),
                fmt_dur(p.metrics.network),
            );
        }
    }

    if all || which.contains(&"fig10") || which.contains(&"fig11") {
        println!("\n== Figures 10 & 11: runtime vs compile-time projection ==");
        println!(
            "{:>12} | {:>16} | {:>14} | {:>9} | {:>13} | {:>11}",
            "doc size", "compile-time", "runtime", "precision", "compile cost", "runtime cost"
        );
        for &s in &sizes {
            let p = fig10_11_projection(s, 42);
            println!(
                "{:>12} | {:>16} | {:>14} | {:>8.1}x | {:>13} | {:>11}",
                human(p.doc_bytes as u64),
                human(p.compile_time_bytes as u64),
                human(p.runtime_bytes as u64),
                p.compile_time_bytes as f64 / p.runtime_bytes.max(1) as f64,
                fmt_dur(p.compile_time_cost),
                fmt_dur(p.runtime_cost),
            );
        }
    }

    if all || which.contains(&"plans") {
        println!("\n== decomposition plans per strategy ==");
        for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
            let module = xqd_xquery::parse_query(BENCHMARK_QUERY).unwrap();
            let d = xqd_core::decompose(&module, strategy).unwrap();
            println!("-- {} ({} remote calls)", strategy.name(), d.calls.len());
            for c in &d.calls {
                println!("   at {}: {}", c.peer, c.body);
                if let Some(proj) = &c.projection {
                    for (i, ps) in proj.params.iter().enumerate() {
                        println!("     param {i}: used={:?} returned={:?}",
                            ps.used.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
                            ps.returned.iter().map(|p| p.to_string()).collect::<Vec<_>>());
                    }
                    println!("     result: used={:?} returned={:?}",
                        proj.result.used.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
                        proj.result.returned.iter().map(|p| p.to_string()).collect::<Vec<_>>());
                }
            }
        }
    }
}

fn human(bytes: u64) -> String {
    if bytes >= 10_000_000 {
        format!("{:.1} MB", bytes as f64 / 1e6)
    } else if bytes >= 10_000 {
        format!("{:.0} KB", bytes as f64 / 1e3)
    } else {
        format!("{bytes} B")
    }
}

fn fmt_dur(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2} s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}
