//! Paths experiment: descendant-heavy XMark path queries evaluated with the
//! staircase-join name-index engine on vs. off (naive axis scans), across
//! several document scales. Writes the trajectory to `BENCH_paths.json`
//! (override with `--out <path>`) and prints the table.
//!
//! Run with: `cargo run --release --example paths_bench`
//! CI smoke:  `cargo run --release --example paths_bench -- --small --out target/BENCH_paths.ci.json`

fn main() {
    let mut out_path = String::from("BENCH_paths.json");
    let mut scales: Vec<usize> = vec![50_000, 200_000, 800_000];
    let mut iters = 5;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--small" => {
                scales = vec![20_000];
                iters = 2;
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    eprintln!("paths sweep: scales {scales:?} target bytes, best of {iters} runs per mode");
    let points = xqd_bench::paths_sweep(&scales, iters);

    println!(
        "{:>34} {:>10} {:>10} {:>10} {:>9} {:>6}",
        "query", "doc KB", "scan us", "index us", "speedup", "equal"
    );
    for p in &points {
        println!(
            "{:>34} {:>10.1} {:>10} {:>10} {:>8.2}x {:>6}",
            p.query,
            p.doc_bytes as f64 / 1024.0,
            p.scan_us,
            p.indexed_us,
            p.speedup(),
            p.results_identical,
        );
    }

    let json = xqd_bench::paths_json(&points);
    std::fs::write(&out_path, &json).expect("write BENCH_paths.json");
    eprintln!("trajectory written to {out_path}");
}
