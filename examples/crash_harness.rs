//! Multi-process crash harness: N `xqd serve` daemons on localhost,
//! `kill -9` mid-workload, and the dichotomy the whole robustness stack
//! promises — every query returns either a **bit-identical** result or a
//! **typed** error, never a hang, never a panic, never a wrong answer.
//!
//! Phases:
//!
//! 1. **equivalence** — a federated value join across two live daemons
//!    must return byte-identical canonical results to the in-process
//!    simulated federation, under all three strategies, both through the
//!    library coordinator and through the `xqd run --connect` CLI;
//! 2. **kill, no replica** — `kill -9` one daemon while a worker hammers
//!    the federation with queries: every outcome before, during and after
//!    the kill is identical-or-typed, and the dead peer surfaces as a
//!    typed error (never a hang — every call is deadline-bounded);
//! 3. **kill the primary, replica standing** — a third daemon serves a
//!    bit-identical replica of the primary's document; after `kill -9` of
//!    the primary the failover ladder must keep returning the identical
//!    result through the replica;
//! 4. **drain** — every surviving daemon winds down cleanly (exit 0) on a
//!    stdin `drain` line.
//!
//! Synchronization is handshake-based throughout: daemon startup is the
//! `READY peer=... addr=...` stdout line (never a sleep), kill timing is
//! driven by observed query completions, and the whole run sits under a
//! hard watchdog that exits 2 — failure — if anything wedges.
//!
//! ```sh
//! cargo build --release && cargo run --release --example crash_harness
//! ```

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use xqd::{Federation, NetworkModel, SocketFederation, Strategy};
use xqd::xrpc::RetryPolicy;

/// Absolute ceiling on the whole harness. The watchdog thread exits 2
/// when it fires: a wedged federation is exactly the failure this
/// harness exists to catch.
const HARD_TIMEOUT: Duration = Duration::from_secs(90);

const PEOPLE: &str = r#"<people><person id="p1"><age>31</age></person><person id="p2"><age>55</age></person><person id="p3"><age>24</age></person></people>"#;
const ORDERS: &str = r#"<orders><order buyer="p1"><total>10</total></order><order buyer="p2"><total>70</total></order><order buyer="p3"><total>5</total></order><order buyer="p1"><total>3</total></order></orders>"#;

const JOIN_QUERY: &str = r#"
    let $y := doc("xrpc://P1/people.xml")//person[age < 40]
    return for $o in doc("xrpc://P2/orders.xml")//order
           return if ($o/@buyer = $y/@id) then $o/total else ()
"#;

fn retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        deadline: Duration::from_secs(2),
    }
}

/// One spawned `xqd serve` process, synchronized on its READY line.
struct Daemon {
    name: String,
    addr: String,
    child: Child,
    stdin: Option<ChildStdin>,
}

impl Daemon {
    fn spawn(bin: &Path, name: &str, docs: &[(String, String)], replicas: &[(String, String)]) -> Daemon {
        let mut cmd = Command::new(bin);
        cmd.arg("serve").arg("--name").arg(name).arg("--listen").arg("127.0.0.1:0");
        for (doc, file) in docs {
            cmd.arg("--doc").arg(format!("{doc}={file}"));
        }
        for (uri, file) in replicas {
            cmd.arg("--replica-doc").arg(format!("{uri}={file}"));
        }
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("spawning daemon {name}: {e}"));
        let stdout = child.stdout.take().expect("piped stdout");
        // the READY line is the startup handshake — no sleeps
        let mut ready = String::new();
        BufReader::new(stdout)
            .read_line(&mut ready)
            .unwrap_or_else(|e| panic!("reading READY from {name}: {e}"));
        let addr = ready
            .trim()
            .strip_prefix(&format!("READY peer={name} addr="))
            .unwrap_or_else(|| panic!("daemon {name} printed {ready:?}, expected a READY line"))
            .to_string();
        let stdin = child.stdin.take();
        Daemon { name: name.to_string(), addr, child, stdin }
    }

    /// SIGKILL — no drain, no goodbye, mid-whatever-it-was-doing.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks for a graceful drain and reports whether the daemon exited 0.
    fn drain(&mut self) -> bool {
        if let Some(mut stdin) = self.stdin.take() {
            let _ = stdin.write_all(b"drain\n");
            let _ = stdin.flush();
            // dropping stdin closes it: EOF is the fallback drain trigger
        }
        let give_up = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return status.success(),
                Ok(None) => {
                    if Instant::now() >= give_up {
                        eprintln!("daemon {} ignored the drain; killing", self.name);
                        self.kill9();
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => return false,
            }
        }
    }
}

fn xqd_binary() -> PathBuf {
    // target/<profile>/examples/crash_harness -> target/<profile>/xqd
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe
        .parent()
        .and_then(|p| p.parent())
        .expect("examples dir inside the target profile dir");
    let bin = dir.join("xqd");
    if !bin.exists() {
        eprintln!(
            "crash_harness: {} not found — build the binary first (cargo build --release)",
            bin.display()
        );
        std::process::exit(2);
    }
    bin
}

fn write_doc(dir: &Path, name: &str, xml: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, xml).expect("writing fixture document");
    path.to_string_lossy().into_owned()
}

/// Builds the coordinator federating the given daemons.
fn coordinator(daemons: &[&Daemon], replicas: &[(&str, &str)]) -> SocketFederation {
    let (mut fed, transport) = SocketFederation::over_tcp();
    for d in daemons {
        transport.register(&d.name, &d.addr);
        fed.set_peer_address(&d.name, &d.addr);
    }
    for (uri, host) in replicas {
        fed.register_replica(uri, host);
    }
    fed.set_retry_policy(retry());
    fed
}

/// One query outcome, reduced to the dichotomy under test.
enum Outcome {
    Identical,
    Divergent(Vec<String>),
    TypedError(String),
    UntypedError(String),
}

fn classify(run: Result<Vec<String>, xqd::EvalError>, expected: &[String]) -> Outcome {
    match run {
        Ok(result) if result == expected => Outcome::Identical,
        Ok(result) => Outcome::Divergent(result),
        Err(e) => match &e.code {
            Some(code) => Outcome::TypedError(code.clone()),
            None => Outcome::UntypedError(e.to_string()),
        },
    }
}

/// Hammers the federation until told to stop, reporting each outcome.
fn worker(
    mut fed: SocketFederation,
    expected: Vec<String>,
    stop: Arc<AtomicBool>,
    tx: mpsc::Sender<Outcome>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            let run = fed
                .run(JOIN_QUERY, Strategy::ByProjection)
                .map(|out| out.result);
            if tx.send(classify(run, &expected)).is_err() {
                return;
            }
        }
    })
}

/// Receives outcomes until `until` says stop (or the cap runs out);
/// returns (all_identical_or_typed, saw_typed, saw_identical).
fn observe(
    rx: &mpsc::Receiver<Outcome>,
    mut until: impl FnMut(&Outcome) -> bool,
) -> (bool, bool, bool) {
    let mut sound = true;
    let (mut saw_typed, mut saw_identical) = (false, false);
    for _ in 0..500 {
        let Ok(outcome) = rx.recv_timeout(Duration::from_secs(10)) else {
            eprintln!("  worker went quiet — treating as a hang");
            return (false, saw_typed, saw_identical);
        };
        match &outcome {
            Outcome::Identical => saw_identical = true,
            Outcome::TypedError(code) => {
                saw_typed = true;
                eprintln!("  typed error observed: {code}");
            }
            Outcome::Divergent(got) => {
                sound = false;
                eprintln!("  WRONG ANSWER: {got:?}");
            }
            Outcome::UntypedError(msg) => {
                sound = false;
                eprintln!("  UNTYPED error: {msg}");
            }
        }
        if until(&outcome) {
            return (sound, saw_typed, saw_identical);
        }
    }
    eprintln!("  outcome cap reached without the awaited state");
    (false, saw_typed, saw_identical)
}

fn main() {
    // hard watchdog: a wedged harness is a failed harness
    std::thread::spawn(|| {
        std::thread::sleep(HARD_TIMEOUT);
        eprintln!("crash_harness: watchdog fired after {HARD_TIMEOUT:?} — something hung");
        std::process::exit(2);
    });

    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let bin = xqd_binary();
    let dir = std::env::temp_dir().join(format!("xqd_crash_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let people_file = write_doc(&dir, "people.xml", PEOPLE);
    let orders_file = write_doc(&dir, "orders.xml", ORDERS);

    // the in-process simulated federation is the oracle
    let mut sim = Federation::new(NetworkModel::lan());
    sim.load_document("P1", "people.xml", PEOPLE).unwrap();
    sim.load_document("P2", "orders.xml", ORDERS).unwrap();

    // ---- phase 1: equivalence over the real wire -----------------------
    println!("# phase 1: TCP equivalence against the simulated oracle");
    let mut p1 = Daemon::spawn(&bin, "P1", &[("people.xml".into(), people_file.clone())], &[]);
    let mut p2 = Daemon::spawn(&bin, "P2", &[("orders.xml".into(), orders_file.clone())], &[]);
    println!("#   P1 at {}, P2 at {}", p1.addr, p2.addr);

    let mut equivalence_identical = true;
    let mut fed = coordinator(&[&p1, &p2], &[]);
    let mut expected_projection: Vec<String> = Vec::new();
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let expected = sim.run(JOIN_QUERY, strategy).expect("oracle run").result;
        match fed.run(JOIN_QUERY, strategy) {
            Ok(out) if out.result == expected => {
                println!("#   {strategy:?}: identical ({} items)", out.result.len());
            }
            Ok(out) => {
                equivalence_identical = false;
                eprintln!("#   {strategy:?}: DIVERGED {:?} vs {expected:?}", out.result);
            }
            Err(e) => {
                equivalence_identical = false;
                eprintln!("#   {strategy:?}: errored on a healthy federation: {e}");
            }
        }
        if strategy == Strategy::ByProjection {
            expected_projection = expected;
        }
    }
    // and once more through the CLI client, comparing raw stdout lines
    let cli = Command::new(&bin)
        .args([
            "run", "-e", JOIN_QUERY,
            "--connect", &format!("P1={}", p1.addr),
            "--connect", &format!("P2={}", p2.addr),
            "--strategy", "projection",
        ])
        .output()
        .expect("running the CLI client");
    let cli_lines: Vec<String> =
        String::from_utf8_lossy(&cli.stdout).lines().map(str::to_string).collect();
    if !cli.status.success() || cli_lines != expected_projection {
        equivalence_identical = false;
        eprintln!(
            "#   CLI client diverged (exit {:?}): {cli_lines:?} vs {expected_projection:?}",
            cli.status.code()
        );
    } else {
        println!("#   xqd run --connect: identical through the CLI");
    }

    // ---- phase 2: kill -9 a peer with no replica -----------------------
    println!("# phase 2: kill -9 P2 (no replica) mid-workload");
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    let handle = worker(
        coordinator(&[&p1, &p2], &[]),
        expected_projection.clone(),
        Arc::clone(&stop),
        tx,
    );
    // wait for the first completed query, then pull the trigger while the
    // worker keeps firing — the kill lands mid-workload by construction
    let (sound_before, _, saw_ok) = observe(&rx, |o| matches!(o, Outcome::Identical));
    p2.kill9();
    println!("#   P2 killed");
    let (sound_after, saw_typed, _) = observe(&rx, |o| matches!(o, Outcome::TypedError(_)));
    stop.store(true, Ordering::SeqCst);
    drop(rx);
    handle.join().expect("worker must not panic");
    let killed_typed_or_identical = sound_before && sound_after && saw_ok && saw_typed;

    // ---- phase 3: kill -9 the primary with a replica standing ----------
    println!("# phase 3: kill -9 the primary while P3 serves its replica");
    let mut p1b = Daemon::spawn(&bin, "P1", &[("people.xml".into(), people_file.clone())], &[]);
    let mut p2b = Daemon::spawn(&bin, "P2", &[("orders.xml".into(), orders_file.clone())], &[]);
    let mut p3b = Daemon::spawn(
        &bin,
        "P3",
        &[],
        &[("xrpc://P1/people.xml".into(), people_file.clone())],
    );
    println!("#   P1 at {}, P2 at {}, P3 (replica) at {}", p1b.addr, p2b.addr, p3b.addr);
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    let handle = worker(
        coordinator(&[&p1b, &p2b, &p3b], &[("xrpc://P1/people.xml", "P3")]),
        expected_projection.clone(),
        Arc::clone(&stop),
        tx,
    );
    let (sound_before, _, saw_ok) = observe(&rx, |o| matches!(o, Outcome::Identical));
    p1b.kill9();
    println!("#   P1 killed; the ladder must reach P3");
    // identical-after-kill is the convergence proof: the replica answered
    let (sound_after, _, saw_identical) = observe(&rx, |o| matches!(o, Outcome::Identical));
    stop.store(true, Ordering::SeqCst);
    drop(rx);
    handle.join().expect("worker must not panic");
    let replica_failover_identical = sound_before && sound_after && saw_ok && saw_identical;

    // ---- phase 4: graceful drain of every survivor ---------------------
    println!("# phase 4: drain the surviving daemons");
    let mut drain_exit_zero = true;
    for d in [&mut p1, &mut p2b, &mut p3b] {
        let clean = d.drain();
        println!("#   {} drained, exit 0: {clean}", d.name);
        drain_exit_zero &= clean;
    }

    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"equivalence_identical\": {equivalence_identical},\n  \
         \"killed_typed_or_identical\": {killed_typed_or_identical},\n  \
         \"replica_failover_identical\": {replica_failover_identical},\n  \
         \"drain_exit_zero\": {drain_exit_zero}\n}}\n"
    );
    print!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
    let all_ok = equivalence_identical
        && killed_typed_or_identical
        && replica_failover_identical
        && drain_exit_zero;
    std::process::exit(if all_ok { 0 } else { 1 });
}
