//! Quickstart: federate two peers, run one query under all four strategies,
//! and compare results and network cost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xqd::{Federation, NetworkModel, Strategy};

fn main() {
    // Two "remote" peers: a personnel service and a project registry.
    let people = r#"<staff>
        <person id="p1"><name>ada</name><skill>compilers</skill><bio>joined 2001, leads the backend team, twenty years of systems experience</bio></person>
        <person id="p2"><name>grace</name><skill>databases</skill><bio>joined 2003, query optimization and distributed execution</bio></person>
        <person id="p3"><name>edsger</name><skill>verification</skill><bio>joined 1999, formal methods, proofs and semantics</bio></person>
    </staff>"#;
    let projects = r#"<projects>
        <project name="pathfinder"><lead ref="p2"/><topic>databases</topic></project>
        <project name="spinoza"><lead ref="p3"/><topic>verification</topic></project>
    </projects>"#;

    // A federated query: which staff members lead a project on their own
    // specialty? The two documents live on different hosts.
    let query = r#"
        for $p in doc("xrpc://hr.example.org/staff.xml")//person
        for $j in doc("xrpc://lab.example.org/projects.xml")//project
        where $j/lead/@ref = $p/@id and $j/topic = $p/skill
        return element match { attribute project { $j/@name }, $p/name/text() }
    "#;

    println!("query:\n{query}");
    for strategy in Strategy::ALL {
        let mut fed = Federation::new(NetworkModel::lan());
        fed.load_document("hr.example.org", "staff.xml", people).unwrap();
        fed.load_document("lab.example.org", "projects.xml", projects).unwrap();
        let out = fed.run(query, strategy).expect("query runs");
        println!("== {:<19} result: {:?}", strategy.name(), out.result);
        println!(
            "   bytes: {:>6} (messages {} / documents {})   round trips: {}",
            out.metrics.transferred_bytes(),
            out.metrics.message_bytes,
            out.metrics.document_bytes,
            out.metrics.transfers,
        );
        if !out.plan.calls.is_empty() {
            for c in &out.plan.calls {
                println!("   pushed to {}: {}", c.peer, truncate(&c.body, 90));
            }
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
