//! Plans experiment: the compiled front end (parse → decompose → lower to
//! flat plan IR) on a repeated-query workload, with the coordinator's LRU
//! plan cache off / cold / warm, plus end-to-end latency and bit-parity of
//! compiled vs. interpreted execution. Writes the trajectory to
//! `BENCH_plans.json` (override with `--out <path>`) and prints the table.
//!
//! Run with: `cargo run --release --example plans_bench`
//! CI smoke:  `cargo run --release --example plans_bench -- --small --out target/BENCH_plans.ci.json`

use xqd::Strategy;

fn main() {
    let mut out_path = String::from("BENCH_plans.json");
    let mut bytes_per_doc = 30_000;
    let mut iters = 300;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--small" => {
                bytes_per_doc = 8_000;
                iters = 30;
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let strategy = Strategy::ByProjection;
    eprintln!(
        "plans sweep: {} queries, {} front-end iters each, {} bytes/doc, {}",
        xqd_bench::PLANS_QUERIES.len(),
        iters,
        bytes_per_doc,
        strategy.name()
    );
    let points = xqd_bench::plans_sweep(bytes_per_doc, strategy, iters);

    println!(
        "{:>28} {:>12} {:>12} {:>12} {:>9} {:>10} {:>10} {:>10} {:>6}",
        "query", "off p/s", "cold p/s", "warm p/s", "speedup", "comp us", "interp us", "traced us",
        "equal"
    );
    for p in &points {
        println!(
            "{:>28} {:>12.0} {:>12.0} {:>12.0} {:>8.1}x {:>10} {:>10} {:>10} {:>6}",
            p.query,
            p.off_plans_per_sec,
            p.cold_plans_per_sec,
            p.warm_plans_per_sec,
            p.warm_speedup(),
            p.compiled_us,
            p.interpreted_us,
            p.traced_us,
            p.results_identical && p.bytes_identical,
        );
    }
    let worst = points
        .iter()
        .map(|p| p.trace_overhead_frac())
        .fold(0.0f64, f64::max);
    eprintln!(
        "tracing overhead (traced vs untraced warm run): worst {:.1}% — budget ok: {}",
        worst * 100.0,
        points.iter().all(|p| p.trace_overhead_ok()),
    );

    let json = xqd_bench::plans_json(&points, strategy);
    std::fs::write(&out_path, &json).expect("write BENCH_plans.json");
    eprintln!("trajectory written to {out_path}");
}
