//! Throughput experiment: the multi-tenant workload engine driving the
//! Section VII federation at offered loads from well below to well past
//! saturation, on the simulated clock with seeded Poisson arrivals.
//! Reports goodput (completed queries/sec) and p50/p95/p99 latency per
//! load point; past saturation the admission controller sheds with typed
//! `Overloaded` errors and goodput stays flat instead of collapsing.
//! Writes the curve to `BENCH_throughput.json` (override with
//! `--out <path>`) and prints the table.
//!
//! Run with: `cargo run --release --example throughput_bench`
//! CI smoke:  `cargo run --release --example throughput_bench -- --small --out target/BENCH_throughput.ci.json`

fn main() {
    let mut out_path = String::from("BENCH_throughput.json");
    let mut bytes_per_doc = 8_000;
    let mut target_arrivals = 1_200;
    let mut loads: Vec<f64> = vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--small" => {
                bytes_per_doc = 4_000;
                target_arrivals = 200;
                loads = vec![0.5, 1.0, 2.0];
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let capacity = xqd_bench::throughput_capacity(bytes_per_doc);
    eprintln!(
        "throughput sweep: 3 tenants, ~{} arrivals/point, {} bytes/doc, capacity ~{:.0} q/s",
        target_arrivals, bytes_per_doc, capacity
    );

    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>7} {:>7} {:>9} {:>9} {:>9} {:>6}",
        "load", "offered q/s", "goodput q/s", "arrivals", "shed", "cancel", "p50 us", "p95 us", "p99 us", "ok"
    );
    let mut points = Vec::new();
    for &load in &loads {
        let p = xqd_bench::throughput_point(bytes_per_doc, capacity, load, target_arrivals);
        println!(
            "{:>5.2}x {:>12.1} {:>12.1} {:>9} {:>7} {:>7} {:>9} {:>9} {:>9} {:>6}",
            p.load_factor,
            p.offered_qps,
            p.goodput_qps,
            p.arrivals,
            p.shed,
            p.deadline_cancelled,
            p.p50_us,
            p.p95_us,
            p.p99_us,
            p.results_identical && p.all_errors_typed,
        );
        points.push(p);
    }

    let json = xqd_bench::throughput_json(&points);
    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    eprintln!("curve written to {out_path}");
}
