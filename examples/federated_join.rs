//! A realistic federated-join scenario on XMark-shaped data: three peers
//! (people registry, auction house, and the query originator), the
//! Section VII benchmark query, and a WAN-vs-LAN comparison showing the
//! paper's closing argument — slow links make the enhanced semantics pay
//! off even more. The `semi-join` column shows what join-aware
//! decomposition saves on top of each strategy: the consumer's join
//! predicate evaluates against a shipped distinct-key filter instead of
//! the whole fragment.
//!
//! ```sh
//! cargo run --release --example federated_join
//! ```

use xqd::xmark::{document_pair, XmarkConfig};
use xqd::{ExecOptions, Federation, NetworkModel, Strategy};

const QUERY: &str = r#"
(let $t := (let $s := doc("xrpc://people.example.org/xmk.xml")
                      /child::site/child::people/child::person
            return for $x in $s return
                if ($x/descendant::age < 40) then $x else ())
 return for $e in (let $c := doc("xrpc://auctions.example.org/xmk.auctions.xml")
                   return $c/descendant::open_auction)
        return if ($e/child::seller/attribute::person = $t/attribute::id)
               then $e/child::annotation else ())/child::author
"#;

fn build(model: NetworkModel, semijoin: bool) -> Federation {
    let cfg = XmarkConfig::with_target_bytes(400_000, 2024);
    let (people, auctions) = document_pair(&cfg);
    let mut fed = Federation::new(model);
    fed.load_document("people.example.org", "xmk.xml", &people).unwrap();
    fed.load_document("auctions.example.org", "xmk.auctions.xml", &auctions).unwrap();
    fed.set_exec_options(ExecOptions { semijoin, ..ExecOptions::default() });
    fed
}

fn main() {
    println!("Which auction authors match sellers under 40? (Section VII query)\n");
    for (net_label, model) in [("LAN 1 Gb/s", NetworkModel::lan()), ("WAN 10 Mb/s", NetworkModel::wan())] {
        println!("=== network: {net_label} ===");
        println!(
            "{:<20} {:>12} {:>14} {:>9} {:>12} {:>12} {:>8}",
            "strategy", "bytes", "semi-join", "keys", "wire time", "total time", "authors"
        );
        for strategy in Strategy::ALL {
            let base = build(model, false).run(QUERY, strategy).expect("query runs");
            let semi = build(model, true).run(QUERY, strategy).expect("query runs");
            assert_eq!(semi.result, base.result, "semi-join changed the answer");
            let semi_col = if semi.metrics.semijoins > 0 {
                format!("{} bytes", semi.metrics.transferred_bytes())
            } else {
                "—".to_string() // strategy offers no cross-peer Execute to rewrite
            };
            println!(
                "{:<20} {:>12} {:>14} {:>9} {:>12} {:>12} {:>8}",
                strategy.name(),
                base.metrics.transferred_bytes(),
                semi_col,
                semi.metrics.join_keys_shipped,
                format!("{:.1?}", semi.metrics.network),
                format!("{:.1?}", semi.metrics.total + semi.metrics.network),
                semi.result.len(),
            );
        }
        println!();
    }
    println!(
        "The WAN column shows the paper's closing point: with slow links, the\n\
         reduced message sizes of pass-by-fragment/-projection dominate total\n\
         time — and the semi-join column tightens them further by shipping\n\
         only the distinct join keys of the small side."
    );
}
