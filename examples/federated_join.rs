//! A realistic federated-join scenario on XMark-shaped data: three peers
//! (people registry, auction house, and the query originator), the
//! Section VII benchmark query, and a WAN-vs-LAN comparison showing the
//! paper's closing argument — slow links make the enhanced semantics pay
//! off even more.
//!
//! ```sh
//! cargo run --release --example federated_join
//! ```

use xqd::xmark::{document_pair, XmarkConfig};
use xqd::{Federation, NetworkModel, Strategy};

const QUERY: &str = r#"
(let $t := (let $s := doc("xrpc://people.example.org/xmk.xml")
                      /child::site/child::people/child::person
            return for $x in $s return
                if ($x/descendant::age < 40) then $x else ())
 return for $e in (let $c := doc("xrpc://auctions.example.org/xmk.auctions.xml")
                   return $c/descendant::open_auction)
        return if ($e/child::seller/attribute::person = $t/attribute::id)
               then $e/child::annotation else ())/child::author
"#;

fn build(model: NetworkModel) -> Federation {
    let cfg = XmarkConfig::with_target_bytes(400_000, 2024);
    let (people, auctions) = document_pair(&cfg);
    let mut fed = Federation::new(model);
    fed.load_document("people.example.org", "xmk.xml", &people).unwrap();
    fed.load_document("auctions.example.org", "xmk.auctions.xml", &auctions).unwrap();
    fed
}

fn main() {
    println!("Which auction authors match sellers under 40? (Section VII query)\n");
    for (net_label, model) in [("LAN 1 Gb/s", NetworkModel::lan()), ("WAN 10 Mb/s", NetworkModel::wan())] {
        println!("=== network: {net_label} ===");
        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>8}",
            "strategy", "bytes", "wire time", "total time", "authors"
        );
        for strategy in Strategy::ALL {
            let mut fed = build(model);
            let out = fed.run(QUERY, strategy).expect("query runs");
            println!(
                "{:<20} {:>12} {:>12} {:>12} {:>8}",
                strategy.name(),
                out.metrics.transferred_bytes(),
                format!("{:.1?}", out.metrics.network),
                format!("{:.1?}", out.metrics.total + out.metrics.network),
                out.result.len(),
            );
        }
        println!();
    }
    println!(
        "The WAN column shows the paper's closing point: with slow links, the\n\
         reduced message sizes of pass-by-fragment/-projection dominate total time."
    );
}
