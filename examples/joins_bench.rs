//! Joins experiment: join-aware decomposition (semi-join key shipping)
//! against the best of the paper's four strategies on the Q2-shaped XMark
//! join, across auction-side scales. Writes the trajectory to
//! `BENCH_joins.json` (override with `--out <path>`) and prints the table.
//!
//! Run with: `cargo run --release --example joins_bench`
//! CI smoke:  `cargo run --release --example joins_bench -- --small --out target/BENCH_joins.ci.json`

fn main() {
    let mut out_path = String::from("BENCH_joins.json");
    let mut scales: Vec<usize> = vec![30_000, 120_000, 240_000, 480_000];

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--small" => scales = vec![8_000, 30_000],
            other => panic!("unknown argument: {other}"),
        }
    }

    eprintln!("joins sweep: {} scales, Q2 join on the XMark pair", scales.len());
    let points = xqd_bench::joins_sweep(&scales);

    println!(
        "{:>10} {:>22} {:>10} {:>22} {:>10} {:>10} {:>6} {:>6}",
        "doc bytes", "baseline", "bytes", "semijoin", "bytes", "reduction", "keys", "equal"
    );
    for p in &points {
        println!(
            "{:>10} {:>22} {:>10} {:>22} {:>10} {:>9.2}x {:>6} {:>6}",
            p.total_doc_bytes,
            p.baseline_strategy,
            p.baseline_bytes,
            p.semijoin_strategy,
            p.semijoin_bytes,
            p.reduction(),
            p.join_keys_shipped,
            p.results_identical && p.bytes_identical,
        );
    }

    let json = xqd_bench::joins_json(&points);
    std::fs::write(&out_path, &json).expect("write BENCH_joins.json");
    eprintln!("trajectory written to {out_path}");
}
