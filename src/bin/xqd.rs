//! `xqd` — the distributed XQuery shell.
//!
//! ```text
//! xqd run   -e 'doc("xrpc://a/d.xml")//x' --peer a:d.xml=./d.xml [--strategy S] [--metrics]
//! xqd run   query.xq --peer hr:staff.xml=staff.xml --strategy all
//! xqd run   -e QUERY --connect a=127.0.0.1:7001   # drive live daemons over TCP
//! xqd serve --name a --listen 127.0.0.1:0 --doc d.xml=./d.xml   # one peer daemon
//! xqd explain -e QUERY [--strategy S]        # print decomposition plans
//! xqd gen-xmark --bytes 1000000 --seed 42 --people p.xml --auctions a.xml
//! ```
//!
//! Strategies: `ship` (data shipping), `value`, `fragment`, `projection`,
//! or `all` (run every strategy and compare). Network models: `lan`
//! (1 Gb/s, default) or `wan` (10 Mb/s).

use std::io::BufRead as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use xqd::{
    BreakerPolicy, ExecOptions, FaultPlan, Federation, NetworkModel, PeerServer, RetryPolicy,
    ServerConfig, SocketFederation, Strategy, TenantSpec, WorkloadConfig, WorkloadEngine,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], false),
        Some("explain") => cmd_run(&args[1..], true),
        Some("workload") => cmd_workload(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("gen-xmark") => cmd_gen(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
xqd — distributed XQuery (pass-by-value / -fragment / -projection)

USAGE:
  xqd run [QUERY-FILE] [-e QUERY] [OPTIONS]     execute a federated query
  xqd explain [QUERY-FILE] [-e QUERY] [OPTIONS] print the decomposition plan;
                           with --analyze, execute it and print per-operator
                           and per-span simulated-time profiles
  xqd workload [QUERY-FILE] [-e QUERY] [OPTIONS]
                           drive a multi-tenant workload of the query through
                           the admission-controlled scheduler (simulated
                           clock, seeded Poisson arrivals) and report
                           goodput, tail latency and shed/cancel counts
  xqd serve --name PEER --listen ADDR [--doc DOC=FILE]... [--replica-doc URI=FILE]...
                           run one peer as a TCP daemon speaking length-prefixed
                           XRPC envelopes; prints `READY peer=NAME addr=IP:PORT`
                           on stdout, then drains and exits on stdin `drain` / EOF
  xqd gen-xmark --bytes N [--seed S] --people FILE --auctions FILE

OPTIONS:
  -e QUERY                 inline query text (alternative to QUERY-FILE)
  --peer NAME:DOC=FILE     load FILE as document DOC on peer NAME (repeatable)
  --connect NAME=ADDR      federate with a live peer daemon at ADDR instead of
                           simulating it (repeatable; switches `xqd run` to the
                           multi-process TCP transport — same results, real wire)
  --serves HOST=URI        record that daemon HOST serves a bit-identical replica
                           of canonical document URI (repeatable; socket mode)
  --strategy S             ship | value | fragment | projection | all
                           (default: projection)
  --network lan|wan        link model for simulated transfer times
  --metrics                print byte/time accounting after the run
  --fault-seed N           inject deterministic faults from seed N
  --fault-rate P           per-attempt fault probability 0..1 (default 0.2;
                           only meaningful with --fault-seed)
  --retries N              attempts per remote call (default 3)
  --deadline-ms N          per-call deadline in simulated ms (default 10000)
  --backoff-ms N           base retry backoff in simulated ms (default 10)
  --replicas P:A1,A2       replicate every document of peer P onto peers
                           A1, A2, ... for failover (repeatable)
  --hedge-ms N             arm a hedged request to the next replica after
                           ~N simulated ms (default: hedging off)
  --breaker-threshold N    consecutive failures tripping a peer's circuit
                           breaker (default 4; 0 disables breakers)
  --breaker-cooldown-ms N  simulated ms an open breaker rejects calls
                           before admitting a half-open probe (default 500)
  --no-compile             tree-walk the AST instead of compiling queries
                           to the flat plan IR (the correctness oracle)
  --no-semijoin            disable join-aware decomposition (semi-join key
                           shipping for cross-peer value joins; default on)
  --plan-cache-size N      coordinator LRU plan-cache capacity (default 64;
                           0 recompiles on every run)
  --trace-out FILE         record a deterministic trace of the run on the
                           simulated clock and write it to FILE; a chaos
                           replay from the same seeds emits identical bytes
  --trace-format json|chrome
                           trace file format: self-describing span JSON
                           (default) or Chrome trace_event, loadable in
                           chrome://tracing and Perfetto
  --analyze                (xqd explain) execute the query and print the
                           per-operator plan profile (EXPLAIN ANALYZE) plus
                           the span-level simulated-time attribution

WORKLOAD OPTIONS (xqd workload):
  --tenants N              simulated tenants splitting the offered load
                           (default 2)
  --offered-qps Q          total offered load in queries per second of
                           simulated time (default 500)
  --queue-depth N          per-tenant run-queue bound; arrivals beyond it
                           are shed with a typed Overloaded error and an
                           honest retry-after hint (default 16)
  --fair-weights W1,W2,..  per-tenant fair-queuing weights, cycled across
                           the tenants; `off` disables fairness and falls
                           back to one global FIFO (default: all 1)
  --workers N              concurrent executor slots (default 4)
  --duration-ms N          arrival window in simulated ms (default 250)
  --query-deadline-ms N    per-query deadline from arrival; queued work
                           that can no longer meet it is cancelled before
                           it takes a slot (default 200)
  --seed N                 arrival-process seed (default 1)

SERVE OPTIONS (xqd serve):
  --name PEER              peer name this daemon answers as (required)
  --listen ADDR            bind address, e.g. 127.0.0.1:0 for an ephemeral
                           port (default 127.0.0.1:0)
  --doc DOC=FILE           load FILE as this peer's document DOC (repeatable)
  --replica-doc URI=FILE   serve FILE as a bit-identical replica of the
                           canonical document URI, e.g.
                           xrpc://other/d.xml=./d.xml (repeatable)
  --max-inflight N         concurrent requests before shedding with a typed
                           xrpc:overloaded fault + retry-after-ms (default 32)
  --max-connections N      concurrent connections before refusing with a
                           typed fault (default 64)
  --idle-timeout-ms N      quiet-close connections idle this long (default
                           300000)
  --request-deadline-ms N  per-request evaluation budget; expiry answers a
                           typed xrpc:timeout fault (default 10000)
  --drain-deadline-ms N    how long a drain lets in-flight work finish
                           before cancelling it (default 5000)
";

struct RunOptions {
    query: Option<String>,
    peers: Vec<(String, String, String)>, // (peer, doc, file)
    connects: Vec<(String, String)>,      // (peer, addr) — socket mode
    serves: Vec<(String, String)>,        // (host, canonical uri) — socket mode
    strategies: Vec<Strategy>,
    network: NetworkModel,
    metrics: bool,
    fault_seed: Option<u64>,
    fault_rate: f64,
    retry: RetryPolicy,
    replicas: Vec<(String, Vec<String>)>, // (primary, alternates)
    hedge: Option<Duration>,
    breaker: BreakerPolicy,
    compile: bool,
    semijoin: bool,
    plan_cache_size: usize,
    trace_out: Option<String>,
    trace_chrome: bool,
    analyze: bool,
    // `xqd workload` knobs
    tenants: usize,
    offered_qps: f64,
    queue_depth: usize,
    fair_weights: Option<Vec<u32>>, // None = all 1; empty = fairness off
    workers: usize,
    duration: Duration,
    query_deadline: Duration,
    seed: u64,
}

fn parse_strategy(s: &str) -> Option<Vec<Strategy>> {
    Some(match s {
        "ship" | "data-shipping" => vec![Strategy::DataShipping],
        "value" => vec![Strategy::ByValue],
        "fragment" => vec![Strategy::ByFragment],
        "projection" => vec![Strategy::ByProjection],
        "all" => Strategy::ALL.to_vec(),
        _ => return None,
    })
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions {
        query: None,
        peers: Vec::new(),
        connects: Vec::new(),
        serves: Vec::new(),
        strategies: vec![Strategy::ByProjection],
        network: NetworkModel::lan(),
        metrics: false,
        fault_seed: None,
        fault_rate: 0.2,
        retry: RetryPolicy::default(),
        replicas: Vec::new(),
        hedge: None,
        breaker: BreakerPolicy::default(),
        compile: ExecOptions::default().compile,
        semijoin: ExecOptions::default().semijoin,
        plan_cache_size: ExecOptions::default().plan_cache_size,
        trace_out: None,
        trace_chrome: false,
        analyze: false,
        tenants: 2,
        offered_qps: 500.0,
        queue_depth: 16,
        fair_weights: None,
        workers: 4,
        duration: Duration::from_millis(250),
        query_deadline: Duration::from_millis(200),
        seed: 1,
    };
    fn num_arg<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
        args.get(i + 1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("{flag} requires a number"))
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-e" => {
                let q = args.get(i + 1).ok_or("-e requires a query argument")?;
                opts.query = Some(q.clone());
                i += 2;
            }
            "--peer" => {
                let spec = args.get(i + 1).ok_or("--peer requires NAME:DOC=FILE")?;
                let (peer, rest) =
                    spec.split_once(':').ok_or_else(|| format!("bad --peer spec {spec:?}"))?;
                let (doc, file) =
                    rest.split_once('=').ok_or_else(|| format!("bad --peer spec {spec:?}"))?;
                opts.peers.push((peer.to_string(), doc.to_string(), file.to_string()));
                i += 2;
            }
            "--connect" => {
                let spec = args.get(i + 1).ok_or("--connect requires NAME=ADDR")?;
                let (peer, addr) =
                    spec.split_once('=').ok_or_else(|| format!("bad --connect spec {spec:?}"))?;
                opts.connects.push((peer.to_string(), addr.to_string()));
                i += 2;
            }
            "--serves" => {
                let spec = args.get(i + 1).ok_or("--serves requires HOST=URI")?;
                let (host, uri) =
                    spec.split_once('=').ok_or_else(|| format!("bad --serves spec {spec:?}"))?;
                opts.serves.push((host.to_string(), uri.to_string()));
                i += 2;
            }
            "--strategy" => {
                let s = args.get(i + 1).ok_or("--strategy requires a value")?;
                opts.strategies =
                    parse_strategy(s).ok_or_else(|| format!("unknown strategy {s:?}"))?;
                i += 2;
            }
            "--network" => {
                let s = args.get(i + 1).ok_or("--network requires lan|wan")?;
                opts.network = match s.as_str() {
                    "lan" => NetworkModel::lan(),
                    "wan" => NetworkModel::wan(),
                    other => return Err(format!("unknown network model {other:?}")),
                };
                i += 2;
            }
            "--metrics" => {
                opts.metrics = true;
                i += 1;
            }
            "--fault-seed" => {
                opts.fault_seed = Some(num_arg(args, i, "--fault-seed")?);
                i += 2;
            }
            "--fault-rate" => {
                let rate: f64 = num_arg(args, i, "--fault-rate")?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--fault-rate must be in 0..1, got {rate}"));
                }
                opts.fault_rate = rate;
                i += 2;
            }
            "--retries" => {
                opts.retry.max_attempts = num_arg(args, i, "--retries")?;
                i += 2;
            }
            "--deadline-ms" => {
                opts.retry.deadline = Duration::from_millis(num_arg(args, i, "--deadline-ms")?);
                i += 2;
            }
            "--backoff-ms" => {
                opts.retry.base_backoff = Duration::from_millis(num_arg(args, i, "--backoff-ms")?);
                i += 2;
            }
            "--replicas" => {
                let spec = args.get(i + 1).ok_or("--replicas requires PRIMARY:ALT1,ALT2")?;
                let (primary, alts) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("bad --replicas spec {spec:?}"))?;
                let alts: Vec<String> =
                    alts.split(',').filter(|a| !a.is_empty()).map(str::to_string).collect();
                if alts.is_empty() {
                    return Err(format!("bad --replicas spec {spec:?}: no alternate hosts"));
                }
                opts.replicas.push((primary.to_string(), alts));
                i += 2;
            }
            "--hedge-ms" => {
                opts.hedge = Some(Duration::from_millis(num_arg(args, i, "--hedge-ms")?));
                i += 2;
            }
            "--breaker-threshold" => {
                opts.breaker.threshold = num_arg(args, i, "--breaker-threshold")?;
                i += 2;
            }
            "--breaker-cooldown-ms" => {
                opts.breaker.cooldown =
                    Duration::from_millis(num_arg(args, i, "--breaker-cooldown-ms")?);
                i += 2;
            }
            "--no-compile" => {
                opts.compile = false;
                i += 1;
            }
            "--no-semijoin" => {
                opts.semijoin = false;
                i += 1;
            }
            "--plan-cache-size" => {
                opts.plan_cache_size = num_arg(args, i, "--plan-cache-size")?;
                i += 2;
            }
            "--trace-out" => {
                let f = args.get(i + 1).ok_or("--trace-out requires a file path")?;
                opts.trace_out = Some(f.clone());
                i += 2;
            }
            "--trace-format" => {
                let f = args.get(i + 1).ok_or("--trace-format requires json|chrome")?;
                opts.trace_chrome = match f.as_str() {
                    "json" => false,
                    "chrome" => true,
                    other => return Err(format!("unknown trace format {other:?}")),
                };
                i += 2;
            }
            "--analyze" => {
                opts.analyze = true;
                i += 1;
            }
            "--tenants" => {
                opts.tenants = num_arg(args, i, "--tenants")?;
                if opts.tenants == 0 {
                    return Err("--tenants must be at least 1".to_string());
                }
                i += 2;
            }
            "--offered-qps" => {
                opts.offered_qps = num_arg(args, i, "--offered-qps")?;
                if opts.offered_qps <= 0.0 {
                    return Err(format!("--offered-qps must be positive, got {}", opts.offered_qps));
                }
                i += 2;
            }
            "--queue-depth" => {
                opts.queue_depth = num_arg(args, i, "--queue-depth")?;
                i += 2;
            }
            "--fair-weights" => {
                let spec = args.get(i + 1).ok_or("--fair-weights requires W1,W2,.. or `off`")?;
                if spec == "off" {
                    opts.fair_weights = Some(Vec::new());
                } else {
                    let weights: Option<Vec<u32>> =
                        spec.split(',').map(|w| w.parse().ok()).collect();
                    let weights =
                        weights.ok_or_else(|| format!("bad --fair-weights spec {spec:?}"))?;
                    if weights.is_empty() || weights.contains(&0) {
                        return Err(format!("bad --fair-weights spec {spec:?}: weights must be ≥ 1"));
                    }
                    opts.fair_weights = Some(weights);
                }
                i += 2;
            }
            "--workers" => {
                opts.workers = num_arg(args, i, "--workers")?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                i += 2;
            }
            "--duration-ms" => {
                opts.duration = Duration::from_millis(num_arg(args, i, "--duration-ms")?);
                i += 2;
            }
            "--query-deadline-ms" => {
                opts.query_deadline =
                    Duration::from_millis(num_arg(args, i, "--query-deadline-ms")?);
                i += 2;
            }
            "--seed" => {
                opts.seed = num_arg(args, i, "--seed")?;
                i += 2;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option {flag:?}")),
            file => {
                if opts.query.is_some() {
                    return Err(format!("query given twice (file {file:?} and -e)"));
                }
                let text = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read query file {file:?}: {e}"))?;
                opts.query = Some(text);
                i += 1;
            }
        }
    }
    Ok(opts)
}

fn cmd_run(args: &[String], explain_only: bool) -> ExitCode {
    let opts = match parse_run_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(query) = opts.query.clone() else {
        eprintln!("error: no query given (use -e QUERY or a query file)\n{USAGE}");
        return ExitCode::FAILURE;
    };

    if !opts.connects.is_empty() {
        if explain_only {
            eprintln!("error: --connect is an execution mode; use `xqd run`");
            return ExitCode::FAILURE;
        }
        return cmd_run_socket(&opts, &query);
    }

    if explain_only && !opts.analyze {
        let module = match xqd::parse_query(&query) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("parse error: {e}");
                return ExitCode::FAILURE;
            }
        };
        for strategy in &opts.strategies {
            let dopts = xqd::DecomposeOptions { semijoin: opts.semijoin, ..Default::default() };
            match xqd::decompose_with(&module, *strategy, dopts) {
                Ok(plan) => {
                    println!("=== {} ===", strategy.name());
                    println!("{}", plan.rewritten);
                    for (i, c) in plan.calls.iter().enumerate() {
                        println!("  call {} at {}: {}", i + 1, c.peer, c.body);
                        if !c.depends_on.is_empty() {
                            println!("    depends on call(s): {:?}", c.depends_on);
                        }
                        if let Some(p) = &c.projection {
                            println!(
                                "    response projection: used={:?} returned={:?}",
                                p.result.used.iter().map(ToString::to_string).collect::<Vec<_>>(),
                                p.result
                                    .returned
                                    .iter()
                                    .map(ToString::to_string)
                                    .collect::<Vec<_>>()
                            );
                        }
                    }
                    for sj in &plan.semijoins {
                        println!(
                            "  semi-join: ${} keys {} harvested at {} -> {}",
                            sj.var,
                            sj.key_path,
                            sj.producer_peer,
                            sj.consumer_peer.as_deref().unwrap_or("(coordinator)"),
                        );
                    }
                }
                Err(e) => {
                    eprintln!("decomposition error under {}: {e}", strategy.name());
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    if opts.fault_seed.is_some() {
        // injected worker panics are captured and surfaced as typed errors;
        // keep their default-hook noise out of the CLI output
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                default_hook(info);
            }
        }));
    }

    let explain_analyze = explain_only && opts.analyze;
    for strategy in &opts.strategies {
        let mut fed = Federation::new(opts.network);
        fed.set_exec_options(ExecOptions {
            compile: opts.compile,
            semijoin: opts.semijoin,
            plan_cache_size: opts.plan_cache_size,
            trace: opts.trace_out.is_some() || opts.analyze,
            profile: opts.analyze,
            ..ExecOptions::default()
        });
        fed.set_retry_policy(opts.retry);
        fed.set_hedge(opts.hedge);
        fed.set_breaker_policy(opts.breaker);
        if let Some(seed) = opts.fault_seed {
            fed.set_fault_plan(Some(FaultPlan::uniform(seed, opts.fault_rate)));
            fed.set_replica_seed(seed);
        }
        for (peer, doc, file) in &opts.peers {
            let xml = match std::fs::read_to_string(file) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("cannot read {file:?}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = fed.load_document(peer, doc, &xml) {
                eprintln!("loading {doc} on {peer}: {e}");
                return ExitCode::FAILURE;
            }
        }
        for (primary, alts) in &opts.replicas {
            for alt in alts {
                if let Err(e) = fed.replicate_peer(primary, alt) {
                    eprintln!("replicating {primary} onto {alt}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        match fed.run(&query, *strategy) {
            Ok(out) => {
                if opts.strategies.len() > 1 {
                    println!("=== {} ===", strategy.name());
                }
                if !explain_analyze {
                    for item in &out.result {
                        println!("{item}");
                    }
                }
                if opts.analyze {
                    print_analysis(&out);
                }
                if let Some(path) = &opts.trace_out {
                    let path = if opts.strategies.len() > 1 {
                        format!("{path}.{}", strategy.name())
                    } else {
                        path.clone()
                    };
                    if let Some(trace) = &out.trace {
                        if let Err(e) = write_trace(trace, &path, opts.trace_chrome) {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("# trace written to {path}");
                    }
                }
                if opts.metrics {
                    let m = &out.metrics;
                    eprintln!(
                        "# {}: {} bytes ({} msg / {} doc), {} transfers, \
                         {} remote calls, wire {:?}, total {:?}",
                        strategy.name(),
                        m.transferred_bytes(),
                        m.message_bytes,
                        m.document_bytes,
                        m.transfers,
                        m.remote_calls,
                        m.network,
                        m.total + m.network,
                    );
                    if opts.compile {
                        eprintln!(
                            "# {}: {} plans compiled, plan cache {} hits / {} misses",
                            strategy.name(),
                            m.plans_compiled,
                            m.plan_cache_hits,
                            m.plan_cache_misses,
                        );
                    }
                    if opts.semijoin || m.semijoins > 0 {
                        eprintln!(
                            "# {}: {} semijoins, {} join_keys_shipped, \
                             {} join_bytes_saved",
                            strategy.name(),
                            m.semijoins,
                            m.join_keys_shipped,
                            m.join_bytes_saved,
                        );
                    }
                    if opts.fault_seed.is_some() || m.faults_injected > 0 {
                        eprintln!(
                            "# {}: {} faults injected, {} retries, {} fallbacks",
                            strategy.name(),
                            m.faults_injected,
                            m.retries,
                            m.fallbacks,
                        );
                    }
                    if !opts.replicas.is_empty() || opts.hedge.is_some() {
                        eprintln!(
                            "# {}: {} replica failovers, {} hedges ({} won), \
                             {} breaker trips, {} probes",
                            strategy.name(),
                            m.replica_failovers,
                            m.hedges,
                            m.hedge_wins,
                            m.breaker_trips,
                            m.breaker_probes,
                        );
                    }
                    // the full named counter registry (non-zero entries),
                    // in replay-contract order
                    for (name, value) in m.named().iter().filter(|(_, v)| *v > 0) {
                        eprintln!("# {}: {name} = {value}", strategy.name());
                    }
                }
            }
            Err(e) => {
                eprintln!("error under {}: {e}", strategy.name());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Socket mode: the same query against live peer daemons over TCP. The
/// result lines are printed exactly like simulated runs, so the two modes
/// diff byte for byte on stdout.
fn cmd_run_socket(opts: &RunOptions, query: &str) -> ExitCode {
    let (mut fed, transport) = SocketFederation::over_tcp();
    for (peer, addr) in &opts.connects {
        transport.register(peer, addr);
        fed.set_peer_address(peer, addr);
    }
    for (host, uri) in &opts.serves {
        fed.register_replica(uri, host);
    }
    fed.set_exec_options(ExecOptions {
        semijoin: opts.semijoin,
        replica_seed: opts.seed,
        ..ExecOptions::default()
    });
    fed.set_retry_policy(opts.retry);
    for strategy in &opts.strategies {
        match fed.run(query, *strategy) {
            Ok(out) => {
                if opts.strategies.len() > 1 {
                    println!("=== {} ===", strategy.name());
                }
                for item in &out.result {
                    println!("{item}");
                }
                if opts.metrics {
                    eprintln!(
                        "# {}: {} remote calls, {} failovers, {} retries (tcp)",
                        strategy.name(),
                        out.remote_calls,
                        out.failovers,
                        out.retries,
                    );
                }
            }
            Err(e) => {
                eprintln!("error under {}: {e}", strategy.name());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `xqd serve`: one peer daemon. Prints a READY line (the sleep-free
/// startup synchronization point for harnesses), then blocks on stdin —
/// a `drain` line or EOF triggers graceful drain and exit. Exit code 0
/// means the drain was clean (every request and connection wound down
/// inside its deadline).
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut name: Option<String> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut docs: Vec<(String, String)> = Vec::new();
    let mut replica_docs: Vec<(String, String)> = Vec::new();
    let mut config = ServerConfig::default();
    fn num_arg<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
        args.get(i + 1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("{flag} requires a number"))
    }
    let mut i = 0;
    while i < args.len() {
        let step = match args[i].as_str() {
            "--name" => match args.get(i + 1) {
                Some(n) => {
                    name = Some(n.clone());
                    Ok(2)
                }
                None => Err("--name requires a peer name".to_string()),
            },
            "--listen" => match args.get(i + 1) {
                Some(a) => {
                    listen = a.clone();
                    Ok(2)
                }
                None => Err("--listen requires an address".to_string()),
            },
            "--doc" => match args.get(i + 1).and_then(|s| s.split_once('=')) {
                Some((doc, file)) => {
                    docs.push((doc.to_string(), file.to_string()));
                    Ok(2)
                }
                None => Err("--doc requires DOC=FILE".to_string()),
            },
            "--replica-doc" => match args.get(i + 1).and_then(|s| s.split_once('=')) {
                Some((uri, file)) => {
                    replica_docs.push((uri.to_string(), file.to_string()));
                    Ok(2)
                }
                None => Err("--replica-doc requires URI=FILE".to_string()),
            },
            "--max-inflight" => num_arg(args, i, "--max-inflight").map(|n| {
                config.max_inflight = n;
                2
            }),
            "--max-connections" => num_arg(args, i, "--max-connections").map(|n| {
                config.max_connections = n;
                2
            }),
            "--idle-timeout-ms" => num_arg(args, i, "--idle-timeout-ms").map(|n: u64| {
                config.idle_timeout = Duration::from_millis(n);
                2
            }),
            "--request-deadline-ms" => num_arg(args, i, "--request-deadline-ms").map(|n: u64| {
                config.request_deadline = Duration::from_millis(n);
                2
            }),
            "--drain-deadline-ms" => num_arg(args, i, "--drain-deadline-ms").map(|n: u64| {
                config.drain_deadline = Duration::from_millis(n);
                2
            }),
            other => Err(format!("unknown serve option {other:?}")),
        };
        match step {
            Ok(n) => i += n,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(name) = name else {
        eprintln!("error: xqd serve requires --name PEER\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut server = match PeerServer::bind(&name, &listen, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (doc, file) in &docs {
        let xml = match std::fs::read_to_string(file) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("cannot read {file:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = server.load_document(doc, &xml) {
            eprintln!("loading {doc}: {e}");
            return ExitCode::FAILURE;
        }
    }
    for (uri, file) in &replica_docs {
        let xml = match std::fs::read_to_string(file) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("cannot read {file:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = server.load_replica(uri, &xml) {
            eprintln!("loading replica {uri}: {e}");
            return ExitCode::FAILURE;
        }
    }
    server.start();
    // the READY line is the startup handshake: a parent process reads it
    // instead of sleeping, and learns the ephemeral port
    println!("READY peer={} addr={}", server.name(), server.addr());
    let _ = std::io::stdout().flush();
    // std-only signal story: drain on stdin "drain" or EOF (a dying parent
    // closes our stdin, so orphaned daemons still wind down)
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "drain" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let report = server.drain();
    eprintln!(
        "# drained: {} served, {} shed, {} cancelled in-flight, clean={} ({:?})",
        report.served, report.shed, report.cancelled_inflight, report.clean, report.elapsed,
    );
    if report.clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_trace(trace: &xqd::Trace, path: &str, chrome: bool) -> Result<(), String> {
    let body = if chrome { trace.to_chrome() } else { trace.to_json() };
    std::fs::write(path, body).map_err(|e| format!("writing trace {path:?}: {e}"))
}

/// `explain --analyze` output: the per-operator plan profile plus the
/// span-level attribution of the run's simulated wall time.
fn print_analysis(out: &xqd::RunOutcome) {
    match (&out.compiled, &out.profile) {
        (Some(prepared), Some(profile)) => println!("{}", prepared.plan.dump_analyze(profile)),
        _ => println!("(no per-operator profile: query ran without the compiled plan IR)"),
    }
    let Some(trace) = &out.trace else { return };
    // aggregate the root's direct children — the network-bearing spans that
    // partition the simulated timeline — by span name
    let mut rows: Vec<(&str, u64, u64)> = Vec::new();
    for s in trace.children_of(xqd::ROOT_SPAN) {
        match rows.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some(row) => {
                row.1 += 1;
                row.2 += s.dur_ns;
            }
            None => rows.push((s.name, 1, s.dur_ns)),
        }
    }
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let total = trace.total_ns.max(1);
    println!(
        "trace {:#018x}: total simulated {:?}, span coverage {:.1}%",
        trace.trace_id,
        Duration::from_nanos(trace.total_ns),
        trace.coverage() * 100.0,
    );
    for (name, count, ns) in &rows {
        println!(
            "  {name:<16} x{count:<4} {:>12}  {:>5.1}%",
            format!("{:?}", Duration::from_nanos(*ns)),
            *ns as f64 * 100.0 / total as f64,
        );
    }
    let attempts = trace.histogram("rpc.attempt");
    if attempts.count() > 0 {
        println!("rpc.attempt latency:");
        for line in attempts.render().lines() {
            println!("  {line}");
        }
    }
}

fn cmd_workload(args: &[String]) -> ExitCode {
    let opts = match parse_run_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(query) = opts.query else {
        eprintln!("error: no query given (use -e QUERY or a query file)\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let strategy = opts.strategies[0];

    if opts.fault_seed.is_some() {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                default_hook(info);
            }
        }));
    }

    let mut fed = Federation::new(opts.network);
    fed.set_exec_options(ExecOptions {
        compile: opts.compile,
        semijoin: opts.semijoin,
        plan_cache_size: opts.plan_cache_size,
        ..ExecOptions::default()
    });
    fed.set_retry_policy(opts.retry);
    fed.set_hedge(opts.hedge);
    fed.set_breaker_policy(opts.breaker);
    if let Some(seed) = opts.fault_seed {
        fed.set_fault_plan(Some(FaultPlan::uniform(seed, opts.fault_rate)));
        fed.set_replica_seed(seed);
    }
    for (peer, doc, file) in &opts.peers {
        let xml = match std::fs::read_to_string(file) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("cannot read {file:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fed.load_document(peer, doc, &xml) {
            eprintln!("loading {doc} on {peer}: {e}");
            return ExitCode::FAILURE;
        }
    }
    for (primary, alts) in &opts.replicas {
        for alt in alts {
            if let Err(e) = fed.replicate_peer(primary, alt) {
                eprintln!("replicating {primary} onto {alt}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // N tenants splitting the offered load evenly, all running the query;
    // weights come from --fair-weights (cycled), `off` degrades to FIFO
    let fair = !matches!(&opts.fair_weights, Some(w) if w.is_empty());
    let weights: Vec<u32> = match &opts.fair_weights {
        Some(w) if !w.is_empty() => w.clone(),
        _ => vec![1],
    };
    let per_tenant_qps = opts.offered_qps / opts.tenants as f64;
    let tenants: Vec<TenantSpec> = (0..opts.tenants)
        .map(|i| {
            TenantSpec::new(
                &format!("t{}", i + 1),
                weights[i % weights.len()],
                per_tenant_qps,
                vec![query.clone()],
            )
        })
        .collect();
    let mut config = WorkloadConfig::new(tenants);
    config.strategy = strategy;
    config.seed = opts.seed;
    config.duration = opts.duration;
    config.workers = opts.workers;
    config.queue_depth = opts.queue_depth;
    config.deadline = opts.query_deadline;
    config.fair = fair;

    let report = if let Some(path) = &opts.trace_out {
        match WorkloadEngine::run_traced(&mut fed, &config) {
            Ok((r, trace)) => {
                if let Err(e) = write_trace(&trace, path, opts.trace_chrome) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("# scheduler trace written to {path}");
                r
            }
            Err(e) => {
                eprintln!("workload error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match WorkloadEngine::run(&mut fed, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("workload error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    println!(
        "offered {:.0} q/s over {} tenants for {:?} -> goodput {:.0} q/s",
        report.offered_qps,
        opts.tenants,
        opts.duration,
        report.goodput_qps,
    );
    println!(
        "arrivals {}: {} completed, {} shed, {} deadline-cancelled, {} errored",
        report.arrivals, report.completed, report.shed, report.deadline_cancelled, report.errored,
    );
    println!(
        "latency p50 {:?} / p95 {:?} / p99 {:?}  (simulated clock)",
        report.p50, report.p95, report.p99,
    );
    println!(
        "completed results bit-identical to serial execution: {}; all errors typed: {}",
        report.results_identical, report.all_errors_typed,
    );
    for t in &report.per_tenant {
        println!(
            "  {:>8}: {} arrivals, {} ok, {} shed, {} cancelled, {} errored, p99 {:?}",
            t.name, t.arrivals, t.completed, t.shed, t.deadline_cancelled, t.errored, t.p99,
        );
    }
    if opts.metrics {
        let m = &report.metrics;
        eprintln!(
            "# workload: {} queued, {} shed, {} deadline_cancelled, peak queue depth {}",
            m.queued, m.shed, m.deadline_cancelled, m.peak_queue_depth,
        );
        eprintln!(
            "# workload: {} bytes ({} msg / {} doc), {} transfers, {} remote calls",
            m.transferred_bytes(),
            m.message_bytes,
            m.document_bytes,
            m.transfers,
            m.remote_calls,
        );
        if opts.fault_seed.is_some() || m.faults_injected > 0 {
            eprintln!(
                "# workload: {} faults injected, {} retries, {} fallbacks",
                m.faults_injected, m.retries, m.fallbacks,
            );
        }
    }
    if report.results_identical && report.all_errors_typed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let mut bytes = 1_000_000usize;
    let mut seed = 42u64;
    let mut people_file = None;
    let mut auctions_file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bytes" => {
                bytes = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(b) => b,
                    None => {
                        eprintln!("--bytes requires a number");
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--seed" => {
                seed = match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires a number");
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--people" => {
                people_file = args.get(i + 1).cloned();
                i += 2;
            }
            "--auctions" => {
                auctions_file = args.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown option {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let cfg = xqd::xmark::XmarkConfig::with_target_bytes(bytes, seed);
    let (people, auctions) = xqd::xmark::document_pair(&cfg);
    for (file, content, label) in
        [(people_file, people, "people"), (auctions_file, auctions, "auctions")]
    {
        match file {
            Some(f) => {
                if let Err(e) = std::fs::write(&f, &content) {
                    eprintln!("writing {f:?}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("# wrote {label} document: {f} ({} bytes)", content.len());
            }
            None => eprintln!("# skipping {label} (no output file given)"),
        }
    }
    ExitCode::SUCCESS
}
