//! # xqd — distributed execution of full-fledged XQuery
//!
//! A Rust reproduction of *"Efficient Distribution of Full-Fledged
//! XQuery"* (Ying Zhang, Nan Tang, Peter Boncz — ICDE 2009): automatic
//! decomposition of arbitrary XQuery over documents stored at remote peers
//! into function-shipped subqueries, with three message-passing semantics —
//! **pass-by-value**, **pass-by-fragment** and **pass-by-projection** — that
//! progressively repair the node-identity / document-order problems of
//! copying XML across the network.
//!
//! This crate is the umbrella: it re-exports the workspace members and hosts
//! the runnable examples and cross-crate integration tests.
//!
//! | crate | contents |
//! |---|---|
//! | [`xml`] | arena XML store, parser, serializer, axes, runtime projection (Algorithm 1) |
//! | [`xquery`] | XCore lexer/parser/normalizer/evaluator with XRPC hooks |
//! | [`core`] | d-graph, insertion conditions, let-motion, code motion, path analysis, the decomposer |
//! | [`xrpc`] | message codecs, simulated peers, Bulk RPC, the distributed executor |
//! | [`xmark`] | XMark-shaped synthetic data generator |
//!
//! ## Quickstart
//!
//! ```
//! use xqd::{Federation, NetworkModel, Strategy};
//!
//! let mut fed = Federation::new(NetworkModel::lan());
//! fed.load_document("org", "depts.xml",
//!     "<depts><dept name=\"sales\"/></depts>").unwrap();
//! let out = fed.run(
//!     "doc(\"xrpc://org/depts.xml\")//dept/@name",
//!     Strategy::ByProjection,
//! ).unwrap();
//! assert_eq!(out.result, vec!["attr:name=sales"]);
//! ```

pub use xqd_core as core;
pub use xqd_xmark as xmark;
pub use xqd_xml as xml;
pub use xqd_xquery as xquery;
pub use xqd_xrpc as xrpc;

pub use xqd_core::{
    decompose, decompose_with, rendezvous_order, DecomposeOptions, Decomposition, ReplicaCatalog,
    Semantics, SemijoinEdge, Strategy,
};
pub use xqd_xquery::{
    compile_module, compile_query, eval_query, parse_query, EvalError, Item, Plan, QueryModule,
    Sequence, StaticContext,
};
pub use xqd_xquery::{OpProfile, ProfileHook};
pub use xqd_xrpc::{
    BreakerPolicy, BreakerState, DrainReport, ExecOptions, Fault, FaultPlan, Federation,
    Histogram, Metrics, MetricsSnapshot, NetworkModel, OutcomeKind, PeerServer, PreparedQuery,
    QueryOutcome, RetryPolicy, RunOutcome, Scoreboard, ServerConfig, SocketFederation, Span,
    SpanBuilder, TcpTransport, TenantReport, TenantSpec, Trace, Tracer, Transport,
    WorkloadConfig, WorkloadEngine, WorkloadReport, XrpcError, METRIC_NAMES, ROOT_SPAN,
};
