//! # xqd-xmark — XMark-shaped synthetic data generator
//!
//! Generates the two documents the paper's Section VII benchmark consults:
//!
//! * a **people** document — `site/people/person` with `@id`, `name`,
//!   contact fields, a fat `profile` (interests, education, business, and
//!   the `age` the benchmark predicate filters on) and `watches`;
//! * an **auctions** document — `site/open_auctions/open_auction` with
//!   bidders, `seller/@person` referencing person ids, and an `annotation`
//!   whose `author` / `description` children the by-projection response
//!   keeps while pruning everything else.
//!
//! The shape reproduces what makes the paper's experiments meaningful: the
//! join keys (`person/@id` ↔ `seller/@person`) and the filter field
//! (`descendant::age`) are tiny compared to the record payloads, so
//! projection has something to prune; the reference distribution makes the
//! semijoin selective.
//!
//! Documents are **byte-targeted**: [`XmarkConfig::with_target_bytes`] picks
//! entity counts so a generated document lands near the requested size,
//! standing in for XMark's scale factors (0.1 → ~10 MB etc.).

use xqd_prng::Rng;

const WORDS: &[&str] = &[
    "gold", "river", "quiet", "orchid", "lantern", "copper", "meadow", "harbor", "violet",
    "summit", "ember", "willow", "falcon", "marble", "cinder", "breeze", "thicket", "aurora",
    "granite", "juniper", "saffron", "tundra", "velvet", "zephyr", "bramble", "crystal",
];

const FIRST_NAMES: &[&str] = &[
    "Ying", "Nan", "Peter", "Maria", "Jan", "Sofia", "Henk", "Lucia", "Arjen", "Femke",
    "Stefan", "Marta", "Niels", "Eva", "Milan", "Anna",
];

const LAST_NAMES: &[&str] = &[
    "Zhang", "Tang", "Boncz", "Kersten", "Manegold", "Nes", "Mullender", "Vries", "Groffen",
    "Rijke",
];

const CITIES: &[&str] =
    &["Amsterdam", "Utrecht", "Rotterdam", "Delft", "Leiden", "Groningen", "Eindhoven"];

const COUNTRIES: &[&str] = &["Netherlands", "Germany", "France", "Belgium", "Denmark"];

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    pub people: usize,
    pub open_auctions: usize,
    pub seed: u64,
    /// Number of sentence words in fat text fields (profile/business,
    /// annotation/description); scales the payload-to-key ratio.
    pub payload_words: usize,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig { people: 100, open_auctions: 100, seed: 42, payload_words: 30 }
    }
}

/// Empirical bytes per person with default payload (see `sizing` test).
const BYTES_PER_PERSON: usize = 1250;
/// Empirical bytes per open auction with default payload.
const BYTES_PER_AUCTION: usize = 650;

impl XmarkConfig {
    /// Picks entity counts so each generated document is roughly
    /// `target_bytes` long.
    pub fn with_target_bytes(target_bytes: usize, seed: u64) -> Self {
        XmarkConfig {
            people: (target_bytes / BYTES_PER_PERSON).max(1),
            open_auctions: (target_bytes / BYTES_PER_AUCTION).max(1),
            seed,
            payload_words: 30,
        }
    }
}

fn words(rng: &mut Rng, n: usize, out: &mut String) {
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(rng.choose(WORDS));
    }
}

/// Generates the people document (`site/people/person*`).
pub fn people_document(cfg: &XmarkConfig) -> String {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut out = String::with_capacity(cfg.people * BYTES_PER_PERSON + 64);
    out.push_str("<site><people>");
    for i in 0..cfg.people {
        let first = rng.choose(FIRST_NAMES);
        let last = rng.choose(LAST_NAMES);
        let age = rng.gen_range(18..80);
        let income = rng.gen_range(20_000..180_000);
        out.push_str(&format!("<person id=\"person{i}\">"));
        out.push_str(&format!("<name>{first} {last}</name>"));
        out.push_str(&format!(
            "<emailaddress>mailto:{}.{}@example.org</emailaddress>",
            first.to_lowercase(),
            last.to_lowercase()
        ));
        out.push_str(&format!(
            "<phone>+31 {} {}</phone>",
            rng.gen_range(10..99),
            rng.gen_range(1_000_000..9_999_999)
        ));
        out.push_str(&format!(
            "<address><street>{} {}</street><city>{}</city><country>{}</country><zipcode>{}</zipcode></address>",
            rng.gen_range(1..400),
            rng.choose(WORDS),
            rng.choose(CITIES),
            rng.choose(COUNTRIES),
            rng.gen_range(1000..9999),
        ));
        out.push_str(&format!(
            "<creditcard>{} {} {} {}</creditcard>",
            rng.gen_range(1000..9999),
            rng.gen_range(1000..9999),
            rng.gen_range(1000..9999),
            rng.gen_range(1000..9999)
        ));
        out.push_str(&format!("<profile income=\"{income}\">"));
        for _ in 0..rng.gen_range(1..4) {
            out.push_str(&format!(
                "<interest category=\"category{}\"/>",
                rng.gen_range(0..50)
            ));
        }
        out.push_str("<education>");
        words(&mut rng, 3, &mut out);
        out.push_str("</education>");
        out.push_str(&format!(
            "<gender>{}</gender>",
            if rng.gen_bool(0.5) { "male" } else { "female" }
        ));
        out.push_str("<business>");
        words(&mut rng, cfg.payload_words, &mut out);
        out.push_str("</business>");
        out.push_str(&format!("<age>{age}</age>"));
        out.push_str("</profile>");
        out.push_str("<watches>");
        for _ in 0..rng.gen_range(0..3) {
            out.push_str(&format!(
                "<watch open_auction=\"open_auction{}\"/>",
                rng.gen_range_usize(0..cfg.open_auctions.max(1))
            ));
        }
        out.push_str("</watches>");
        out.push_str("</person>");
    }
    out.push_str("</people>");
    // the rest of an XMark site: regions with items — content the benchmark
    // query never touches, which is exactly what function shipping prunes
    out.push_str("<regions><europe>");
    for i in 0..cfg.people {
        out.push_str(&format!("<item id=\"item{i}\">"));
        out.push_str(&format!("<location>{}</location>", rng.choose(COUNTRIES)));
        out.push_str(&format!("<quantity>{}</quantity>", rng.gen_range(1..9)));
        out.push_str("<name>");
        words(&mut rng, 2, &mut out);
        out.push_str("</name><payment>Creditcard</payment><description><text>");
        words(&mut rng, cfg.payload_words, &mut out);
        out.push_str("</text></description><shipping>Will ship internationally</shipping>");
        out.push_str(&format!("<mailbox><mail><from>person{}</from><date>{:02}/{:02}/2008</date></mail></mailbox>",
            rng.gen_range_usize(0..cfg.people.max(1)),
            rng.gen_range(1..29),
            rng.gen_range(1..13),
        ));
        out.push_str("</item>");
    }
    out.push_str("</europe></regions></site>");
    out
}

/// Generates the auctions document (`site/open_auctions/open_auction*`);
/// `seller/@person` references ids of the people document generated with
/// the same config.
pub fn auctions_document(cfg: &XmarkConfig) -> String {
    let mut rng = Rng::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut out = String::with_capacity(cfg.open_auctions * BYTES_PER_AUCTION + 64);
    out.push_str("<site><open_auctions>");
    for i in 0..cfg.open_auctions {
        let seller = rng.gen_range_usize(0..cfg.people.max(1));
        let author = rng.gen_range_usize(0..cfg.people.max(1));
        out.push_str(&format!("<open_auction id=\"open_auction{i}\">"));
        out.push_str(&format!(
            "<initial>{}.{:02}</initial>",
            rng.gen_range(1..300),
            rng.gen_range(0..100)
        ));
        for _ in 0..rng.gen_range(0..4) {
            out.push_str(&format!(
                "<bidder><date>{:02}/{:02}/2008</date><personref person=\"person{}\"/><increase>{}.00</increase></bidder>",
                rng.gen_range(1..29),
                rng.gen_range(1..13),
                rng.gen_range_usize(0..cfg.people.max(1)),
                rng.gen_range(1..50),
            ));
        }
        out.push_str(&format!("<current>{}.00</current>", rng.gen_range(1..500)));
        out.push_str(&format!(
            "<itemref item=\"item{}\"/>",
            rng.gen_range_usize(0..cfg.open_auctions.max(1))
        ));
        out.push_str(&format!("<seller person=\"person{seller}\"/>"));
        out.push_str("<annotation>");
        out.push_str(&format!("<author person=\"person{author}\"/>"));
        out.push_str("<description><text>");
        words(&mut rng, cfg.payload_words, &mut out);
        out.push_str("</text></description>");
        out.push_str("<happiness>");
        out.push_str(&rng.gen_range(1..10).to_string());
        out.push_str("</happiness>");
        out.push_str("</annotation>");
        out.push_str(&format!("<quantity>{}</quantity>", rng.gen_range(1..5)));
        out.push_str("<type>Regular</type>");
        out.push_str(&format!(
            "<interval><start>{:02}/{:02}/2008</start><end>{:02}/{:02}/2009</end></interval>",
            rng.gen_range(1..29),
            rng.gen_range(1..13),
            rng.gen_range(1..29),
            rng.gen_range(1..13),
        ));
        out.push_str("</open_auction>");
    }
    out.push_str("</open_auctions></site>");
    out
}

/// Generates both documents of one benchmark scale point.
pub fn document_pair(cfg: &XmarkConfig) -> (String, String) {
    (people_document(cfg), auctions_document(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = XmarkConfig::default();
        assert_eq!(people_document(&cfg), people_document(&cfg));
        assert_eq!(auctions_document(&cfg), auctions_document(&cfg));
        let other = XmarkConfig { seed: 7, ..XmarkConfig::default() };
        assert_ne!(people_document(&cfg), people_document(&other));
    }

    #[test]
    fn documents_parse_and_have_the_benchmark_shape() {
        let cfg = XmarkConfig { people: 20, open_auctions: 15, ..XmarkConfig::default() };
        let mut store = xqd_xml::Store::new();
        let people =
            xqd_xml::parse_document(&mut store, &people_document(&cfg), Some("p.xml")).unwrap();
        let auctions =
            xqd_xml::parse_document(&mut store, &auctions_document(&cfg), Some("a.xml")).unwrap();

        // site/people/person with @id and descendant age
        let pdoc = store.doc(people);
        let site = pdoc.children(0).next().unwrap();
        assert_eq!(store.names.resolve(pdoc.name(site)), "site");
        let mut persons = 0;
        let mut ages = 0;
        for i in 0..pdoc.len() as u32 {
            let name = store.names.resolve(pdoc.name(i));
            if name == "person" {
                persons += 1;
            }
            if name == "age" {
                ages += 1;
            }
        }
        assert_eq!(persons, 20);
        assert_eq!(ages, 20);

        // open_auction with seller/@person and annotation/author
        let adoc = store.doc(auctions);
        let mut auctions_n = 0;
        let mut sellers = 0;
        let mut authors = 0;
        for i in 0..adoc.len() as u32 {
            match store.names.resolve(adoc.name(i)) {
                "open_auction" => auctions_n += 1,
                "seller" => sellers += 1,
                "author" => authors += 1,
                _ => {}
            }
        }
        assert_eq!(auctions_n, 15);
        assert_eq!(sellers, 15);
        assert_eq!(authors, 15);
    }

    #[test]
    fn seller_references_resolve_to_people() {
        let cfg = XmarkConfig { people: 10, open_auctions: 30, ..XmarkConfig::default() };
        let auctions = auctions_document(&cfg);
        for part in auctions.split("<seller person=\"person").skip(1) {
            let n: usize = part[..part.find('"').unwrap()].parse().unwrap();
            assert!(n < 10);
        }
    }

    #[test]
    fn sizing_targets_are_roughly_met() {
        for target in [50_000usize, 200_000] {
            let cfg = XmarkConfig::with_target_bytes(target, 1);
            let p = people_document(&cfg);
            let a = auctions_document(&cfg);
            let tolerance = 0.5;
            assert!(
                (p.len() as f64) > target as f64 * (1.0 - tolerance)
                    && (p.len() as f64) < target as f64 * (1.0 + tolerance),
                "people: {} vs target {target}",
                p.len()
            );
            assert!(
                (a.len() as f64) > target as f64 * (1.0 - tolerance)
                    && (a.len() as f64) < target as f64 * (1.0 + tolerance),
                "auctions: {} vs target {target}",
                a.len()
            );
        }
    }

    #[test]
    fn age_distribution_gives_selective_predicate() {
        let cfg = XmarkConfig { people: 200, ..XmarkConfig::default() };
        let doc = people_document(&cfg);
        let young = doc
            .split("<age>")
            .skip(1)
            .filter(|s| s[..s.find('<').unwrap()].parse::<u32>().unwrap() < 40)
            .count();
        // ages uniform in 18..80 → roughly 35% under 40
        assert!(young > 40 && young < 120, "{young}/200 under 40");
    }
}
