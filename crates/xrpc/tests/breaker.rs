//! Circuit-breaker state machine against a scripted simulated clock, and
//! the federation-level surface of a trip: the scoreboard is driven only by
//! [`Scoreboard::advance`] / [`Scoreboard::observe`], so every transition
//! below is a pure replay of the scripted observation sequence.

use std::time::Duration;

use xqd_core::{rendezvous_order, Strategy};
use xqd_xrpc::health::Observation;
use xqd_xrpc::{Admission, BreakerPolicy, BreakerState, FaultPlan, Federation, NetworkModel, Scoreboard};

const COOLDOWN: Duration = Duration::from_millis(500);

fn policy(threshold: u32) -> BreakerPolicy {
    BreakerPolicy { threshold, cooldown: COOLDOWN }
}

fn failure(peer: &str, failed_attempts: u32) -> Observation {
    Observation {
        peer: peer.into(),
        ok: false,
        failed_attempts,
        chain: Duration::from_millis(5),
        probe: false,
    }
}

fn success(peer: &str) -> Observation {
    Observation {
        peer: peer.into(),
        ok: true,
        failed_attempts: 0,
        chain: Duration::from_millis(5),
        probe: false,
    }
}

fn probe(peer: &str, ok: bool) -> Observation {
    Observation {
        peer: peer.into(),
        ok,
        failed_attempts: u32::from(!ok),
        chain: Duration::from_millis(5),
        probe: true,
    }
}

#[test]
fn trips_exactly_at_the_consecutive_failure_threshold() {
    let mut b = Scoreboard::new(policy(4));
    assert!(!b.observe(&failure("p", 2)), "2 < 4: still closed");
    assert_eq!(b.state("p"), BreakerState::Closed);
    assert!(b.observe(&failure("p", 2)), "2 + 2 reaches the threshold");
    assert_eq!(b.state("p"), BreakerState::Open);
    match b.admission("p") {
        Admission::Reject { retry_after } => assert_eq!(retry_after, COOLDOWN),
        other => panic!("open breaker must reject, got {other:?}"),
    }
}

#[test]
fn further_failures_on_an_open_breaker_do_not_retrip() {
    let mut b = Scoreboard::new(policy(2));
    assert!(b.observe(&failure("p", 2)));
    // a non-probe failure while already open keeps the original deadline
    assert!(!b.observe(&failure("p", 3)));
    match b.admission("p") {
        Admission::Reject { retry_after } => assert_eq!(retry_after, COOLDOWN),
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn cooldown_elapses_into_a_half_open_probe() {
    let mut b = Scoreboard::new(policy(2));
    b.observe(&failure("p", 2));
    b.advance(COOLDOWN - Duration::from_millis(1));
    assert_eq!(b.state("p"), BreakerState::Open);
    match b.admission("p") {
        Admission::Reject { retry_after } => assert_eq!(retry_after, Duration::from_millis(1)),
        other => panic!("expected rejection, got {other:?}"),
    }
    b.advance(Duration::from_millis(1));
    assert_eq!(b.state("p"), BreakerState::HalfOpen);
    assert_eq!(b.admission("p"), Admission::Allow { probe: true });
}

#[test]
fn failed_probe_reopens_with_a_fresh_cooldown() {
    let mut b = Scoreboard::new(policy(2));
    b.observe(&failure("p", 2));
    b.advance(COOLDOWN);
    assert_eq!(b.state("p"), BreakerState::HalfOpen);
    assert!(b.observe(&probe("p", false)), "a failed probe counts as a (re-)trip");
    assert_eq!(b.state("p"), BreakerState::Open);
    match b.admission("p") {
        Admission::Reject { retry_after } => {
            assert_eq!(retry_after, COOLDOWN, "cooldown restarts from the probe")
        }
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn successful_probe_closes_and_resets_the_failure_count() {
    let mut b = Scoreboard::new(policy(2));
    b.observe(&failure("p", 2));
    b.advance(COOLDOWN);
    assert!(!b.observe(&probe("p", true)));
    assert_eq!(b.state("p"), BreakerState::Closed);
    assert_eq!(b.admission("p"), Admission::Allow { probe: false });
    // the count restarted: one failure is again below the threshold
    assert!(!b.observe(&failure("p", 1)));
    assert_eq!(b.state("p"), BreakerState::Closed);
}

#[test]
fn a_success_resets_the_consecutive_failure_count() {
    let mut b = Scoreboard::new(policy(4));
    b.observe(&failure("p", 3));
    b.observe(&success("p"));
    assert!(!b.observe(&failure("p", 3)), "the earlier streak no longer counts");
    assert_eq!(b.state("p"), BreakerState::Closed);
}

#[test]
fn health_rank_orders_replica_candidates() {
    let mut b = Scoreboard::new(policy(2));
    b.observe(&failure("open", 2));
    b.observe(&failure("half", 2));
    assert_eq!(b.health_rank("closed"), 0);
    assert_eq!(b.health_rank("open"), 2);
    b.advance(COOLDOWN);
    assert_eq!(b.health_rank("half"), 1, "after the cooldown both are half-open");
    assert_eq!(b.health_rank("open"), 1);
}

// ---------------------------------------------------------------------------
// federation-level surface
// ---------------------------------------------------------------------------

fn fed() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("p", "d.xml", "<a><b><c/></b><b><c/></b></a>").unwrap();
    f
}

#[test]
fn an_exhausted_ladder_trips_the_federation_breaker() {
    let mut f = fed();
    f.set_breaker_policy(policy(2));
    f.set_fault_plan(Some(FaultPlan { p_peer_down: 1.0, ..FaultPlan::none(9) }));
    // nested `execute at` keeps the body ineligible for degradation
    let q = "execute at {\"p\"} params () { execute at {\"p\"} params () { 1 } }";
    let err = f.run(q, Strategy::ByValue).unwrap_err();
    assert_eq!(err.code.as_deref(), Some("xrpc:peer-busy"));
    assert_eq!(f.metrics().breaker_trips, 1, "3 failed attempts >= threshold 2");
    assert_eq!(f.breaker_state("p"), BreakerState::Open);
    // the board is per-run state: a clean run resets and closes it
    f.set_fault_plan(None);
    let out = f.run("execute at {\"p\"} params () { count(doc(\"d.xml\")//c) }", Strategy::ByValue);
    assert_eq!(out.unwrap().result, vec!["atom:2"]);
    assert_eq!(f.breaker_state("p"), BreakerState::Closed);
}

#[test]
fn tripped_primary_fails_over_to_the_replica_without_degrading() {
    let mut f = fed();
    f.replicate_peer("p", "q").unwrap();
    f.set_breaker_policy(policy(1));
    f.set_replica_seed(17);
    let hosts = f.replica_catalog().hosts_serving_peer("p");
    let order = rendezvous_order(17, &hosts);
    let (primary, standby) = (order[0].clone(), order[1].clone());
    f.set_fault_plan(Some(
        FaultPlan { p_peer_down: 1.0, ..FaultPlan::none(4) }.with_target(&primary),
    ));
    let out =
        f.run("execute at {\"p\"} params () { count(doc(\"d.xml\")//c) }", Strategy::ByValue).unwrap();
    assert_eq!(out.result, vec!["atom:2"], "the replica serves the call bit-identically");
    assert_eq!(out.metrics.replica_failovers, 1);
    assert_eq!(out.metrics.breaker_trips, 1);
    assert_eq!(out.metrics.fallbacks, 0, "a healthy replica means no data-shipping degrade");
    assert_eq!(f.breaker_state(&primary), BreakerState::Open);
    assert_eq!(f.breaker_state(&standby), BreakerState::Closed);
}
