//! End-to-end distributed semantics tests.
//!
//! Reproduces the paper's Section II semantic Problems 1–4 under
//! pass-by-value — the *wrong* results the paper documents — and verifies
//! that pass-by-fragment / pass-by-projection restore local semantics
//! exactly as Sections V–VI claim. The fixture queries are Q1 (Table I) and
//! Q2 (Table III) with XRPC calls at the places the paper discusses.

use xqd_core::Strategy;
use xqd_xrpc::{ExecOptions, Federation, NetworkModel};

fn fed() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.add_peer("p");
    f
}

/// Q1's function prolog (Table I), shipped bodies written with the real
/// XRPC surface syntax.
const Q1_PROLOG: &str = r#"
    declare function makenodes() as node()
    { element a { element b { element c {()} } }/b };
    declare function overlap($l as node(), $r as node()) as xs:boolean
    { not(empty($l//* intersect $r//*)) };
    declare function earlier($l as node(), $r as node()) as node()
    { if ($l << $r) then $l else $r };
"#;

// ---------------------------------------------------------------------------
// Problem 1: non-downward XPath steps
// ---------------------------------------------------------------------------

#[test]
fn problem1_parent_step_empty_under_by_value() {
    let q = format!(
        "{Q1_PROLOG} let $bc := execute at {{\"p\"}} {{ makenodes() }} \
         return count($bc/parent::a)"
    );
    let out = fed().run(&q, Strategy::ByValue).unwrap();
    assert_eq!(out.result, vec!["atom:0"], "pass-by-value loses the parent");
    // by-fragment ships only the node's subtree too: still empty
    let out = fed().run(&q, Strategy::ByFragment).unwrap();
    assert_eq!(out.result, vec!["atom:0"]);
}

#[test]
fn problem1_fixed_by_projection() {
    // Example 6.1 / Fig. 5: the projection ships the parent context
    let q = format!(
        "{Q1_PROLOG} let $bc := execute at {{\"p\"}} {{ makenodes() }} \
         return name($bc/parent::a)"
    );
    let out = fed().run(&q, Strategy::ByProjection).unwrap();
    assert_eq!(out.result, vec!["atom:a"], "projection preserves the ancestor");
}

// ---------------------------------------------------------------------------
// Problem 2: node identity comparisons
// ---------------------------------------------------------------------------

#[test]
fn problem2_overlap_false_under_by_value() {
    // $l and $r overlap structurally, but two by-value copies do not
    let q = format!(
        "{Q1_PROLOG} \
         let $bc := element a {{ element b {{ element c {{()}} }} }}/b, \
             $abc := $bc/parent::a \
         return execute at {{\"p\"}} {{ overlap($abc, $bc) }}"
    );
    let out = fed().run(&q, Strategy::ByValue).unwrap();
    assert_eq!(out.result, vec!["atom:false"], "copies never intersect");
    let out = fed().run(&q, Strategy::ByFragment).unwrap();
    assert_eq!(out.result, vec!["atom:true"], "one fragment preserves identity");
    let out = fed().run(&q, Strategy::ByProjection).unwrap();
    assert_eq!(out.result, vec!["atom:true"]);
}

// ---------------------------------------------------------------------------
// Problem 3: document order between parameters
// ---------------------------------------------------------------------------

#[test]
fn problem3_parameter_order_under_by_value() {
    // earlier($bc, $abc) must return $abc (the parent precedes); by-value
    // serializes parameters in parameter order, so the copy of $bc comes
    // first and wins
    let q = format!(
        "{Q1_PROLOG} \
         let $bc := element a {{ element b {{ element c {{()}} }} }}/b, \
             $abc := $bc/parent::a \
         return name(execute at {{\"p\"}} {{ earlier($bc, $abc) }})"
    );
    let out = fed().run(&q, Strategy::ByValue).unwrap();
    assert_eq!(out.result, vec!["atom:b"], "by-value picks the first-serialized copy");
    let out = fed().run(&q, Strategy::ByFragment).unwrap();
    assert_eq!(out.result, vec!["atom:a"], "fragments preserve document order (Fig. 4)");
    let out = fed().run(&q, Strategy::ByProjection).unwrap();
    assert_eq!(out.result, vec!["atom:a"]);
}

// ---------------------------------------------------------------------------
// Problem 4: interaction between different calls
// ---------------------------------------------------------------------------

#[test]
fn problem4_mixed_call_duplicates_under_by_value() {
    // two loop iterations call the same function; //c over the union of
    // their results must deduplicate — by-value yields two copies, bulk
    // by-fragment shares one fragments preamble and yields one
    let q = format!(
        "{Q1_PROLOG} \
         let $bc := element a {{ element b {{ element c {{()}} }} }}/b, \
             $abc := $bc/parent::a \
         return count((for $node in ($bc, $abc) \
                       return execute at {{\"p\"}} {{ earlier($node, $abc) }})//c)"
    );
    let out = fed().run(&q, Strategy::ByValue).unwrap();
    assert_eq!(out.result, vec!["atom:2"], "two separate copies of <c/>");
    let out = fed().run(&q, Strategy::ByFragment).unwrap();
    assert_eq!(out.result, vec!["atom:1"], "Bulk RPC + fragments restore identity");
}

#[test]
fn problem4_bulk_rpc_single_message() {
    let q = format!(
        "{Q1_PROLOG} \
         let $bc := element a {{ element b {{ element c {{()}} }} }}/b, \
             $abc := $bc/parent::a \
         return count((for $node in ($bc, $abc) \
                       return execute at {{\"p\"}} {{ earlier($node, $abc) }})//c)"
    );
    let out = fed().run(&q, Strategy::ByFragment).unwrap();
    assert_eq!(
        out.metrics.transfers, 2,
        "one request + one response despite two loop iterations"
    );
    assert_eq!(out.metrics.remote_calls, 2, "both calls carried in the message");
}

// ---------------------------------------------------------------------------
// Q1 end-to-end: the full Table I query
// ---------------------------------------------------------------------------

fn q1_distributed() -> String {
    format!(
        "{Q1_PROLOG} \
         let $bc := execute at {{\"p\"}} {{ makenodes() }}, \
             $abc := $bc/parent::a \
         return count((for $node in ($bc, $abc) \
                       let $first := earlier($bc, $abc) \
                       where overlap($first, $node) \
                       return $node)//c)"
    )
}

#[test]
fn q1_local_ground_truth() {
    // pure local execution returns exactly one <c/>
    let q = format!(
        "{Q1_PROLOG} \
         let $bc := makenodes(), $abc := $bc/parent::a \
         return count((for $node in ($bc, $abc) \
                       let $first := earlier($bc, $abc) \
                       where overlap($first, $node) \
                       return $node)//c)"
    );
    let out = fed().run(&q, Strategy::DataShipping).unwrap();
    assert_eq!(out.result, vec!["atom:1"]);
}

#[test]
fn q1_projection_matches_local() {
    let out = fed().run(&q1_distributed(), Strategy::ByProjection).unwrap();
    assert_eq!(out.result, vec!["atom:1"], "by-projection restores local semantics");
}

#[test]
fn q1_by_value_differs_from_local() {
    // $abc is empty under by-value (Problem 1), so the loop runs over one
    // node only and overlap($first, …) sees broken identity — the count is
    // not the local 1
    let out = fed().run(&q1_distributed(), Strategy::ByValue).unwrap();
    assert_ne!(out.result, vec!["atom:1"], "by-value must expose Problems 1-3");
}

// ---------------------------------------------------------------------------
// Q2 (Table III): every strategy returns the same result
// ---------------------------------------------------------------------------

fn students_xml() -> String {
    // two students; sara tutors tom (sara is also a student)
    "<people>\
       <person><name>sara</name><tutor>ben</tutor><id>s1</id></person>\
       <person><name>tom</name><tutor>sara</tutor><id>s2</id></person>\
     </people>"
        .to_string()
}

fn course_xml() -> String {
    // the query navigates $c/enroll/exam from the document node, so the
    // document root element is <enroll>
    "<enroll><exam id=\"s2\"><grade>A</grade></exam>\
             <exam id=\"s9\"><grade>F</grade></exam></enroll>"
        .to_string()
}

fn q2_federation() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("A", "students.xml", &students_xml()).unwrap();
    f.load_document("B", "course42.xml", &course_xml()).unwrap();
    f
}

const Q2: &str = r#"(let $s := doc("xrpc://A/students.xml")/people/person,
        $c := doc("xrpc://B/course42.xml"),
        $t := $s[tutor = $s/name]
    for $e in $c/enroll/exam
    where $e/@id = $t/id
    return $e)/grade"#;

#[test]
fn q2_equivalent_across_all_strategies() {
    let baseline = q2_federation().run(Q2, Strategy::DataShipping).unwrap();
    assert_eq!(baseline.result, vec!["<grade>A</grade>"]);
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let out = q2_federation().run(Q2, strategy).unwrap();
        assert_eq!(out.result, baseline.result, "{strategy:?} must match local semantics");
    }
}

#[test]
fn q2_fragment_uses_less_bandwidth_than_data_shipping() {
    let ship = q2_federation().run(Q2, Strategy::DataShipping).unwrap();
    let frag = q2_federation().run(Q2, Strategy::ByFragment).unwrap();
    let proj = q2_federation().run(Q2, Strategy::ByProjection).unwrap();
    assert!(ship.metrics.document_bytes > 0);
    assert_eq!(frag.metrics.document_bytes, 0, "no whole documents shipped");
    assert_eq!(proj.metrics.document_bytes, 0);
}

/// With realistic payload-to-key ratios (fat <cv> blobs on each person),
/// by-projection prunes the A-side response to person shells plus ids,
/// beating by-fragment's full subtrees — the Figure 7 ordering.
#[test]
fn projection_beats_fragment_on_fat_payloads() {
    let blob = "x".repeat(2000);
    let students = format!(
        "<people>\
           <person><name>sara</name><tutor>ben</tutor><id>s1</id><cv>{blob}</cv></person>\
           <person><name>tom</name><tutor>sara</tutor><id>s2</id><cv>{blob}</cv></person>\
         </people>"
    );
    let run = |strategy| {
        let mut f = Federation::new(NetworkModel::lan());
        // the Figure 7 ordering is about the paper's baseline strategies:
        // the semi-join rewrite would shrink by-fragment below by-projection
        f.set_exec_options(ExecOptions { semijoin: false, ..ExecOptions::default() });
        f.load_document("A", "students.xml", &students).unwrap();
        f.load_document("B", "course42.xml", &course_xml()).unwrap();
        f.run(Q2, strategy).unwrap()
    };
    let ship = run(Strategy::DataShipping);
    let frag = run(Strategy::ByFragment);
    let proj = run(Strategy::ByProjection);
    assert_eq!(proj.result, ship.result);
    assert_eq!(frag.result, ship.result);
    assert!(
        frag.metrics.transferred_bytes() < ship.metrics.transferred_bytes(),
        "fragment {} vs shipping {}",
        frag.metrics.transferred_bytes(),
        ship.metrics.transferred_bytes()
    );
    assert!(
        proj.metrics.transferred_bytes() < frag.metrics.transferred_bytes(),
        "projection {} vs fragment {}",
        proj.metrics.transferred_bytes(),
        frag.metrics.transferred_bytes()
    );
}

#[test]
fn q2_data_shipping_fetches_documents_once() {
    let mut f = q2_federation();
    let out = f.run(Q2, Strategy::DataShipping).unwrap();
    assert_eq!(out.metrics.transfers, 2, "both documents fetched once");
    assert!(out.metrics.message_bytes == 0);
}

// ---------------------------------------------------------------------------
// class 1/2 context properties (Problem 5)
// ---------------------------------------------------------------------------

#[test]
fn class1_static_context_shipped() {
    let q = "execute at {\"p\"} params () { (static-base-uri(), current-dateTime()) }";
    let out = fed().run(q, Strategy::ByValue).unwrap();
    // defaults of the coordinator's static context travel with the request
    assert_eq!(out.result.len(), 2);
    assert_eq!(out.result[0], "atom:local:/");
}

#[test]
fn class2_base_uri_preserved_for_shipped_nodes() {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("p", "d.xml", "<r><x/></r>").unwrap();
    // the remote function returns a node of d.xml; its base-uri must
    // survive the response message under every semantics
    let q = "base-uri(execute at {\"p\"} params () { doc(\"xrpc://p/d.xml\")/r/x })";
    // the local ground truth: fetch the document, take the node's base-uri
    let local = f.run("base-uri(doc(\"xrpc://p/d.xml\")/r/x)", Strategy::DataShipping).unwrap();
    assert_eq!(local.result, vec!["atom:xrpc://p/d.xml"]);
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let mut f2 = Federation::new(NetworkModel::lan());
        f2.load_document("p", "d.xml", "<r><x/></r>").unwrap();
        let out = f2.run(q, strategy).unwrap();
        assert_eq!(out.result, local.result, "{strategy:?}");
    }
}

// ---------------------------------------------------------------------------
// atoms and error paths
// ---------------------------------------------------------------------------

#[test]
fn atomic_parameters_and_results() {
    let q = "declare function fcn($n as xs:string) as xs:boolean { $n = \"depts\" }; \
             execute at { \"p\" } { fcn(\"depts\") }";
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let out = fed().run(q, strategy).unwrap();
        assert_eq!(out.result, vec!["atom:true"], "{strategy:?}");
    }
}

#[test]
fn unknown_peer_is_an_error() {
    let q = "execute at {\"nowhere\"} params () { 1 }";
    let err = fed().run(q, Strategy::ByValue).unwrap_err();
    assert!(err.message.contains("nowhere"), "{err}");
}

#[test]
fn missing_remote_document_is_an_error() {
    let q = "doc(\"xrpc://p/missing.xml\")";
    let err = fed().run(q, Strategy::DataShipping).unwrap_err();
    assert!(err.message.contains("missing.xml"), "{err}");
}

#[test]
fn remote_execution_error_propagates() {
    let q = "execute at {\"p\"} params () { 1 div 0 }";
    let err = fed().run(q, Strategy::ByFragment).unwrap_err();
    assert!(err.message.contains("division"), "{err}");
}

// ---------------------------------------------------------------------------
// the intro example: predicate pushed into a loop (Bulk RPC end-to-end)
// ---------------------------------------------------------------------------

#[test]
fn intro_example_all_strategies_agree() {
    let employees = "<emps><emp dept=\"sales\"><n>joe</n></emp>\
                     <emp dept=\"hr\"><n>amy</n></emp>\
                     <emp dept=\"sales\"><n>bob</n></emp></emps>";
    let depts = "<depts><dept name=\"sales\"/><dept name=\"dev\"/></depts>";
    let q = "for $e in doc(\"xrpc://local/employees.xml\")//emp \
             where $e/@dept = doc(\"xrpc://example.org/depts.xml\")//dept/@name \
             return $e/n";
    let mut results = Vec::new();
    for strategy in Strategy::ALL {
        let mut f = Federation::new(NetworkModel::lan());
        f.load_document("local", "employees.xml", employees).unwrap();
        f.load_document("example.org", "depts.xml", depts).unwrap();
        let out = f.run(q, strategy).unwrap();
        results.push((strategy, out.result));
    }
    let baseline = results[0].1.clone();
    assert_eq!(baseline, vec!["<n>joe</n>", "<n>bob</n>"]);
    for (s, r) in &results {
        assert_eq!(r, &baseline, "{s:?}");
    }
}

// ---------------------------------------------------------------------------
// Multi-hop: a shipped body that itself calls another peer
// ---------------------------------------------------------------------------

#[test]
fn nested_calls_between_different_peers() {
    // the predicate over doc(B) sits INSIDE the A-class subgraph, so the
    // decomposer nests a B call inside the body shipped to A — peer A
    // becomes a caller itself
    let q = r#"
        doc("xrpc://A/a.xml")//item[@id = doc("xrpc://B/b.xml")//item/@id]/v
    "#;
    let load = || {
        let mut f = Federation::new(NetworkModel::lan());
        f.load_document(
            "A",
            "a.xml",
            "<root><item id=\"k1\"><v>10</v></item><item id=\"k2\"><v>20</v></item></root>",
        )
        .unwrap();
        f.load_document("B", "b.xml", "<root><item id=\"k2\"/></root>").unwrap();
        f
    };
    let baseline = load().run(q, Strategy::DataShipping).unwrap();
    assert_eq!(baseline.result, vec!["<v>20</v>"]);
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let out = load().run(q, strategy).unwrap();
        assert_eq!(out.result, baseline.result, "{strategy:?}");
    }
    // and the plan really nests: the A call's body mentions peer B
    let out = load().run(q, Strategy::ByFragment).unwrap();
    let a_call = out.plan.calls.iter().find(|c| c.peer == "A");
    if let Some(a_call) = a_call {
        assert!(
            a_call.body.contains("execute at { \"B\" }")
                || out.plan.calls.iter().any(|c| c.peer == "B"),
            "B participates: {:#?}",
            out.plan.calls
        );
    }
}

/// The WAN model amplifies the gap between strategies (the paper's closing
/// argument): projection's total time advantage over data shipping must be
/// larger on the slow link.
#[test]
fn wan_widens_the_gap() {
    let q = "count(doc(\"xrpc://p/d.xml\")//person[age < 40])";
    // large enough that bandwidth dominates the two extra round-trip
    // latencies of the decomposed plan
    let doc = {
        let mut s = String::from("<people>");
        for i in 0..500 {
            s.push_str(&format!(
                "<person><age>{}</age><cv>{}</cv></person>",
                20 + (i % 50),
                "x".repeat(2000)
            ));
        }
        s.push_str("</people>");
        s
    };
    let run = |model: NetworkModel, strategy| {
        let mut f = Federation::new(model);
        f.load_document("p", "d.xml", &doc).unwrap();
        let out = f.run(q, strategy).unwrap();
        out.metrics.network
    };
    let lan_ship = run(NetworkModel::lan(), Strategy::DataShipping);
    let lan_proj = run(NetworkModel::lan(), Strategy::ByProjection);
    let wan_ship = run(NetworkModel::wan(), Strategy::DataShipping);
    let wan_proj = run(NetworkModel::wan(), Strategy::ByProjection);
    let lan_gap = lan_ship.as_secs_f64() - lan_proj.as_secs_f64();
    let wan_gap = wan_ship.as_secs_f64() - wan_proj.as_secs_f64();
    assert!(wan_gap > lan_gap * 10.0, "wan gap {wan_gap} vs lan gap {lan_gap}");
}

/// A remote body may open its peer's documents by plain local name — the
/// paper's fcn1 uses `doc("depts.xml")` on example.org.
#[test]
fn plain_local_names_resolve_on_peers() {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("org", "depts.xml", "<depts><dept name=\"dev\"/></depts>").unwrap();
    let q = "execute at {\"org\"} params () { count(doc(\"depts.xml\")//dept) }";
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let mut f2 = Federation::new(NetworkModel::lan());
        f2.load_document("org", "depts.xml", "<depts><dept name=\"dev\"/></depts>").unwrap();
        let out = f2.run(q, strategy).unwrap();
        assert_eq!(out.result, vec!["atom:1"], "{strategy:?}");
    }
    // but the coordinator has no such document
    let err = f.run("doc(\"depts.xml\")", Strategy::DataShipping).unwrap_err();
    assert!(err.message.contains("depts.xml"), "{err}");
}
