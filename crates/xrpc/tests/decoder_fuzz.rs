//! Decoder robustness under hostile bytes: seeded `xqd-prng` mutations of
//! valid wire messages must make `decode_request` / `decode_response` /
//! `decode_fault` return an error (or, for semantics-preserving byte
//! flips, any non-panicking outcome) — never panic, across all three wire
//! semantics. Truncation anywhere strictly inside the message must always
//! be *detected*: the envelope's closing bytes are gone.
//!
//! The second half fuzzes the length-prefixed socket framing underneath
//! the decoders: truncated prefixes, oversized declared lengths, mid-frame
//! EOF and invalid UTF-8 must all surface as typed
//! `xrpc:transport-corrupt` — never a panic, and never an allocation
//! sized by an untrusted length field.

use xqd_prng::Rng;
use xqd_xml::Store;
use xqd_xquery::eval::{DocResolver, Evaluator, StaticContext};
use xqd_xquery::parse_query;
use xqd_xquery::value::{EvalError, EvalResult, Sequence};

/// Resolver serving only documents already shredded into the store.
struct LocalDocs;

impl DocResolver for LocalDocs {
    fn resolve(&mut self, store: &mut Store, uri: &str) -> EvalResult<xqd_xml::DocId> {
        store.doc_by_uri(uri).ok_or_else(|| EvalError::new(format!("no document {uri}")))
    }
}
use std::io::Cursor;
use std::time::Duration;

use xqd_xrpc::{
    decode_fault, decode_request, decode_response, encode_fault, encode_request, encode_response,
    read_frame, write_frame, FrameError, WireSemantics, XrpcError, MAX_FRAME_LEN,
};

const SEMANTICS: [WireSemantics; 3] =
    [WireSemantics::Value, WireSemantics::Fragment, WireSemantics::Projection];

/// A store with one document plus a node-valued parameter sequence, so the
/// encoded messages exercise node shipping (fragids, hrefs, projections).
fn fixture() -> (Store, Sequence) {
    let mut store = Store::new();
    xqd_xml::parse_document(
        &mut store,
        "<a id=\"1\"><b><c>text &amp; more</c></b><b/></a>",
        Some("xrpc://p/d.xml"),
    )
    .unwrap();
    let module = parse_query("doc(\"xrpc://p/d.xml\")//b").unwrap();
    let functions = Vec::new();
    let mut resolver = LocalDocs;
    let seq = Evaluator::new(&mut store, &functions, &mut resolver).eval(&module.body).unwrap();
    (store, seq)
}

fn valid_messages() -> Vec<String> {
    let mut messages = Vec::new();
    for semantics in SEMANTICS {
        let (store, seq) = fixture();
        let calls = vec![vec![("x".to_string(), seq.clone())]];
        let request = encode_request(
            &store,
            semantics,
            &StaticContext::default(),
            "count($x//c)",
            &calls,
            None,
            None,
        )
        .unwrap();
        let response = encode_response(&store, semantics, &[seq], None).unwrap();
        messages.push(request);
        messages.push(response);
    }
    messages.push(encode_fault(&XrpcError::TransportCorrupt {
        peer: "p".to_string(),
        detail: "detail with <angle> & \"quotes\"".to_string(),
    }));
    messages
}

fn char_floor(s: &str, pos: usize) -> usize {
    let mut p = pos.min(s.len());
    while p > 0 && !s.is_char_boundary(p) {
        p -= 1;
    }
    p
}

/// Runs every decoder over `mutant`; returns whether *any* accepted it.
/// The decoders must not panic — reaching the return is the property.
fn decode_all(mutant: &str) -> bool {
    let mut accepted = false;
    let mut store = Store::new();
    accepted |= decode_request(&mut store, mutant).is_ok();
    let mut store = Store::new();
    accepted |= decode_response(&mut store, mutant).is_ok();
    accepted |= decode_fault(mutant).is_some();
    accepted
}

#[test]
fn truncated_messages_always_decode_as_errors() {
    let mut rng = Rng::seed_from_u64(0xDEC0DE);
    for message in valid_messages() {
        for _ in 0..200 {
            let cut = char_floor(&message, rng.gen_range_usize(0..message.len()));
            let mutant = &message[..cut];
            let mut store = Store::new();
            assert!(
                decode_request(&mut store, mutant).is_err(),
                "truncated request accepted at byte {cut}: {mutant:?}"
            );
            let mut store = Store::new();
            assert!(
                decode_response(&mut store, mutant).is_err(),
                "truncated response accepted at byte {cut}: {mutant:?}"
            );
        }
    }
}

#[test]
fn truncation_errors_are_tagged_transport_corrupt() {
    let mut rng = Rng::seed_from_u64(0xBADC0DE);
    for message in valid_messages() {
        for _ in 0..50 {
            let cut = char_floor(&message, rng.gen_range_usize(0..message.len()));
            let mut store = Store::new();
            let err = decode_response(&mut store, &message[..cut]).unwrap_err();
            assert_eq!(err.code.as_deref(), Some("xrpc:transport-corrupt"), "cut={cut}");
        }
    }
}

#[test]
fn byte_flipped_messages_never_panic_the_decoders() {
    let mut rng = Rng::seed_from_u64(0xF1A5);
    // printable ASCII replacements keep the mutant valid UTF-8 (invalid
    // UTF-8 never reaches a decoder: the transport rejects it earlier)
    let replacements: Vec<u8> = (0x20u8..0x7f).collect();
    for message in valid_messages() {
        for _ in 0..300 {
            let mut bytes = message.clone().into_bytes();
            // flip 1–4 bytes, only at ASCII positions so UTF-8 stays valid
            for _ in 0..(1 + rng.gen_range_usize(0..4)) {
                let pos = rng.gen_range_usize(0..bytes.len());
                if bytes[pos].is_ascii() {
                    bytes[pos] = replacements[rng.gen_range_usize(0..replacements.len())];
                }
            }
            let mutant = String::from_utf8(bytes).unwrap();
            // must not panic; accept-or-reject are both fine for flips
            // that happen to keep the message well-formed
            decode_all(&mutant);
        }
    }
}

#[test]
fn shuffled_fragments_of_messages_never_panic_the_decoders() {
    let mut rng = Rng::seed_from_u64(0x5AFE);
    for message in valid_messages() {
        for _ in 0..100 {
            // splice two random char-aligned windows of the message
            let a = char_floor(&message, rng.gen_range_usize(0..message.len()));
            let b = char_floor(&message, rng.gen_range_usize(0..message.len()));
            let (lo, hi) = (a.min(b), a.max(b));
            let mutant = format!("{}{}", &message[hi..], &message[..lo]);
            decode_all(&mutant);
        }
    }
}

// ---------------------------------------------------------------------------
// length-prefixed framing under hostile bytes
// ---------------------------------------------------------------------------

/// Frames every valid message, then mutilates the byte stream: cut
/// anywhere (inside the 4-byte prefix or the payload), and the reader
/// must return a [`FrameError`] that lifts to `xrpc:transport-corrupt` —
/// never panic, never report a clean close when payload bytes were owed.
#[test]
fn truncated_frames_always_read_as_typed_corruption() {
    let mut rng = Rng::seed_from_u64(0xF8A3E);
    for message in valid_messages() {
        let mut framed = Vec::new();
        write_frame(&mut framed, &message).unwrap();
        for _ in 0..200 {
            // strictly inside the stream: cut after 1..len-1 bytes
            let cut = 1 + rng.gen_range_usize(0..framed.len() - 1);
            let mut cur = Cursor::new(&framed[..cut]);
            let err = read_frame(&mut cur, MAX_FRAME_LEN)
                .expect_err("truncated frame accepted")
                .into_xrpc("p", Duration::from_secs(1));
            assert_eq!(err.code(), "xrpc:transport-corrupt", "cut={cut}");
        }
    }
}

/// Random 4-byte prefixes declaring lengths above the cap are rejected
/// before any allocation — the reader must not try to reserve what the
/// prefix promises.
#[test]
fn oversized_declared_lengths_never_allocate() {
    let mut rng = Rng::seed_from_u64(0x0515E);
    for _ in 0..500 {
        let declared = 1024 + rng.gen_range_usize(0..u32::MAX as usize - 1024) as u32;
        let mut stream = declared.to_be_bytes().to_vec();
        stream.extend_from_slice(b"some bytes that are not the payload");
        let cap = 1024usize;
        let err = read_frame(&mut Cursor::new(stream), cap).expect_err("over-cap accepted");
        assert!(
            matches!(err, FrameError::Oversized { .. }),
            "declared={declared}: {err:?}"
        );
        assert_eq!(
            err.into_xrpc("p", Duration::from_secs(1)).code(),
            "xrpc:transport-corrupt"
        );
    }
}

/// A prefix that over-declares relative to the bytes that follow is
/// mid-frame EOF; an after-the-fact close between frames is clean. The
/// reader must distinguish the two exactly.
#[test]
fn mid_frame_eof_is_distinguished_from_clean_close() {
    let mut rng = Rng::seed_from_u64(0xE0F);
    for message in valid_messages() {
        let mut framed = Vec::new();
        write_frame(&mut framed, &message).unwrap();
        // whole frame then EOF: one Ok(Some), then a clean close
        let mut cur = Cursor::new(framed.clone());
        assert_eq!(read_frame(&mut cur, MAX_FRAME_LEN).unwrap().as_deref(), Some(&message[..]));
        assert!(read_frame(&mut cur, MAX_FRAME_LEN).unwrap().is_none());
        // payload cut short: MidFrameEof with honest byte counts
        for _ in 0..50 {
            let cut = 4 + rng.gen_range_usize(0..message.len());
            let err = read_frame(&mut Cursor::new(&framed[..cut]), MAX_FRAME_LEN)
                .expect_err("short payload accepted");
            match err {
                FrameError::MidFrameEof { got, declared } => {
                    assert_eq!(got, cut - 4);
                    assert_eq!(declared, message.len());
                }
                other => panic!("cut={cut}: expected MidFrameEof, got {other:?}"),
            }
        }
    }
}

/// Payload bytes mangled into invalid UTF-8 must surface as typed
/// corruption, not a panic in the string conversion.
#[test]
fn non_utf8_payloads_are_typed_corruption() {
    let mut rng = Rng::seed_from_u64(0xBEEF);
    for message in valid_messages() {
        let mut framed = Vec::new();
        write_frame(&mut framed, &message).unwrap();
        for _ in 0..100 {
            let mut stream = framed.clone();
            // continuation bytes (0x80..0xBF) are never valid standalone
            let pos = 4 + rng.gen_range_usize(0..message.len());
            stream[pos] = 0x80 + (rng.gen_range_usize(0..0x40) as u8);
            match read_frame(&mut Cursor::new(stream), MAX_FRAME_LEN) {
                Ok(Some(_)) => {} // flip landed inside a multi-byte char and stayed valid
                Ok(None) => panic!("mangled frame read as clean close"),
                Err(e) => {
                    assert_eq!(
                        e.into_xrpc("p", Duration::from_secs(1)).code(),
                        "xrpc:transport-corrupt"
                    );
                }
            }
        }
    }
}

#[test]
fn degenerate_inputs_never_panic_the_decoders() {
    for mutant in [
        "",
        "<",
        ">",
        "<env>",
        "<env></env>",
        "<env><fault></fault></env>",
        "<env><fault code=\"\"/></env>",
        "<env><response/></env>",
        "not xml at all",
        "<env><fault code=\"xrpc:timeout\" peer=\"p\"><message>m</message></fault></env> trailing",
    ] {
        decode_all(mutant);
    }
}
