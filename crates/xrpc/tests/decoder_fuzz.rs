//! Decoder robustness under hostile bytes: seeded `xqd-prng` mutations of
//! valid wire messages must make `decode_request` / `decode_response` /
//! `decode_fault` return an error (or, for semantics-preserving byte
//! flips, any non-panicking outcome) — never panic, across all three wire
//! semantics. Truncation anywhere strictly inside the message must always
//! be *detected*: the envelope's closing bytes are gone.

use xqd_prng::Rng;
use xqd_xml::Store;
use xqd_xquery::eval::{DocResolver, Evaluator, StaticContext};
use xqd_xquery::parse_query;
use xqd_xquery::value::{EvalError, EvalResult, Sequence};

/// Resolver serving only documents already shredded into the store.
struct LocalDocs;

impl DocResolver for LocalDocs {
    fn resolve(&mut self, store: &mut Store, uri: &str) -> EvalResult<xqd_xml::DocId> {
        store.doc_by_uri(uri).ok_or_else(|| EvalError::new(format!("no document {uri}")))
    }
}
use xqd_xrpc::{
    decode_fault, decode_request, decode_response, encode_fault, encode_request, encode_response,
    WireSemantics, XrpcError,
};

const SEMANTICS: [WireSemantics; 3] =
    [WireSemantics::Value, WireSemantics::Fragment, WireSemantics::Projection];

/// A store with one document plus a node-valued parameter sequence, so the
/// encoded messages exercise node shipping (fragids, hrefs, projections).
fn fixture() -> (Store, Sequence) {
    let mut store = Store::new();
    xqd_xml::parse_document(
        &mut store,
        "<a id=\"1\"><b><c>text &amp; more</c></b><b/></a>",
        Some("xrpc://p/d.xml"),
    )
    .unwrap();
    let module = parse_query("doc(\"xrpc://p/d.xml\")//b").unwrap();
    let functions = Vec::new();
    let mut resolver = LocalDocs;
    let seq = Evaluator::new(&mut store, &functions, &mut resolver).eval(&module.body).unwrap();
    (store, seq)
}

fn valid_messages() -> Vec<String> {
    let mut messages = Vec::new();
    for semantics in SEMANTICS {
        let (store, seq) = fixture();
        let calls = vec![vec![("x".to_string(), seq.clone())]];
        let request = encode_request(
            &store,
            semantics,
            &StaticContext::default(),
            "count($x//c)",
            &calls,
            None,
            None,
        )
        .unwrap();
        let response = encode_response(&store, semantics, &[seq], None).unwrap();
        messages.push(request);
        messages.push(response);
    }
    messages.push(encode_fault(&XrpcError::TransportCorrupt {
        peer: "p".to_string(),
        detail: "detail with <angle> & \"quotes\"".to_string(),
    }));
    messages
}

fn char_floor(s: &str, pos: usize) -> usize {
    let mut p = pos.min(s.len());
    while p > 0 && !s.is_char_boundary(p) {
        p -= 1;
    }
    p
}

/// Runs every decoder over `mutant`; returns whether *any* accepted it.
/// The decoders must not panic — reaching the return is the property.
fn decode_all(mutant: &str) -> bool {
    let mut accepted = false;
    let mut store = Store::new();
    accepted |= decode_request(&mut store, mutant).is_ok();
    let mut store = Store::new();
    accepted |= decode_response(&mut store, mutant).is_ok();
    accepted |= decode_fault(mutant).is_some();
    accepted
}

#[test]
fn truncated_messages_always_decode_as_errors() {
    let mut rng = Rng::seed_from_u64(0xDEC0DE);
    for message in valid_messages() {
        for _ in 0..200 {
            let cut = char_floor(&message, rng.gen_range_usize(0..message.len()));
            let mutant = &message[..cut];
            let mut store = Store::new();
            assert!(
                decode_request(&mut store, mutant).is_err(),
                "truncated request accepted at byte {cut}: {mutant:?}"
            );
            let mut store = Store::new();
            assert!(
                decode_response(&mut store, mutant).is_err(),
                "truncated response accepted at byte {cut}: {mutant:?}"
            );
        }
    }
}

#[test]
fn truncation_errors_are_tagged_transport_corrupt() {
    let mut rng = Rng::seed_from_u64(0xBADC0DE);
    for message in valid_messages() {
        for _ in 0..50 {
            let cut = char_floor(&message, rng.gen_range_usize(0..message.len()));
            let mut store = Store::new();
            let err = decode_response(&mut store, &message[..cut]).unwrap_err();
            assert_eq!(err.code.as_deref(), Some("xrpc:transport-corrupt"), "cut={cut}");
        }
    }
}

#[test]
fn byte_flipped_messages_never_panic_the_decoders() {
    let mut rng = Rng::seed_from_u64(0xF1A5);
    // printable ASCII replacements keep the mutant valid UTF-8 (invalid
    // UTF-8 never reaches a decoder: the transport rejects it earlier)
    let replacements: Vec<u8> = (0x20u8..0x7f).collect();
    for message in valid_messages() {
        for _ in 0..300 {
            let mut bytes = message.clone().into_bytes();
            // flip 1–4 bytes, only at ASCII positions so UTF-8 stays valid
            for _ in 0..(1 + rng.gen_range_usize(0..4)) {
                let pos = rng.gen_range_usize(0..bytes.len());
                if bytes[pos].is_ascii() {
                    bytes[pos] = replacements[rng.gen_range_usize(0..replacements.len())];
                }
            }
            let mutant = String::from_utf8(bytes).unwrap();
            // must not panic; accept-or-reject are both fine for flips
            // that happen to keep the message well-formed
            decode_all(&mutant);
        }
    }
}

#[test]
fn shuffled_fragments_of_messages_never_panic_the_decoders() {
    let mut rng = Rng::seed_from_u64(0x5AFE);
    for message in valid_messages() {
        for _ in 0..100 {
            // splice two random char-aligned windows of the message
            let a = char_floor(&message, rng.gen_range_usize(0..message.len()));
            let b = char_floor(&message, rng.gen_range_usize(0..message.len()));
            let (lo, hi) = (a.min(b), a.max(b));
            let mutant = format!("{}{}", &message[hi..], &message[..lo]);
            decode_all(&mutant);
        }
    }
}

#[test]
fn degenerate_inputs_never_panic_the_decoders() {
    for mutant in [
        "",
        "<",
        ">",
        "<env>",
        "<env></env>",
        "<env><fault></fault></env>",
        "<env><fault code=\"\"/></env>",
        "<env><response/></env>",
        "not xml at all",
        "<env><fault code=\"xrpc:timeout\" peer=\"p\"><message>m</message></fault></env> trailing",
    ] {
        decode_all(mutant);
    }
}
