//! Daemon-mode robustness: real TCP sockets under the [`Transport`] seam.
//!
//! Everything here runs multi-threaded but single-process — live
//! [`PeerServer`] daemons on ephemeral localhost ports, driven by
//! [`SocketFederation`] or by a raw framed socket. The multi-*process*
//! version of the same discipline (kill -9 included) lives in
//! `examples/crash_harness.rs`.
//!
//! Invariants under test:
//!
//! * the same query over TCP returns **bit-identical** canonical results
//!   to the simulated federation, across all three strategies;
//! * malformed-but-well-framed payloads get a typed fault and the
//!   connection **stays usable**; frame-level desync (mid-frame EOF,
//!   oversized declared length) gets a typed fault and then a close;
//! * admission beyond `max_inflight` sheds with `xrpc:overloaded`
//!   carrying an honest `retry-after-ms`;
//! * drain cancels in-flight work with `xrpc:timeout` inside the drain
//!   deadline, refuses new connections with a typed fault meanwhile, and
//!   always reaches a bounded clean exit;
//! * a dead (or drained) peer yields a typed error — or, with a replica
//!   registered, the identical result via failover.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xqd_core::Strategy;
use xqd_xrpc::{
    decode_doc_response, decode_fault, encode_doc_request, read_frame, write_frame, ExecOptions,
    Federation, NetworkModel, PeerServer, RetryPolicy, ServerConfig, SocketFederation,
    XrpcError, MAX_FRAME_LEN,
};

const PEOPLE: &str = r#"<people><person id="p1"><age>31</age></person><person id="p2"><age>55</age></person><person id="p3"><age>24</age></person></people>"#;
const ORDERS: &str = r#"<orders><order buyer="p1"><total>10</total></order><order buyer="p2"><total>70</total></order><order buyer="p3"><total>5</total></order><order buyer="p1"><total>3</total></order></orders>"#;

/// A federated value join across both peers — the workload the crash
/// harness also runs.
const JOIN_QUERY: &str = r#"
    let $y := doc("xrpc://P1/people.xml")//person[age < 40]
    return for $o in doc("xrpc://P2/orders.xml")//order
           return if ($o/@buyer = $y/@id) then $o/total else ()
"#;

fn daemon(name: &str, config: ServerConfig) -> PeerServer {
    let mut s = PeerServer::bind(name, "127.0.0.1:0", config).expect("bind ephemeral port");
    match name {
        "P1" => s.load_document("people.xml", PEOPLE).unwrap(),
        "P2" => s.load_document("orders.xml", ORDERS).unwrap(),
        _ => {}
    }
    s.start();
    s
}

fn socket_fed(servers: &[&PeerServer]) -> SocketFederation {
    let (mut fed, transport) = SocketFederation::over_tcp();
    for s in servers {
        transport.register(s.name(), &s.addr().to_string());
        fed.set_peer_address(s.name(), &s.addr().to_string());
    }
    fed
}

/// Sends one framed payload and reads one framed reply on a fresh
/// connection.
fn raw_exchange(stream: &mut TcpStream, payload: &str) -> Option<String> {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(stream, payload).ok()?;
    read_frame(stream, MAX_FRAME_LEN).ok().flatten()
}

// ---------------------------------------------------------------------------
// equivalence across the seam
// ---------------------------------------------------------------------------

#[test]
fn tcp_results_are_bit_identical_to_simulated() {
    let mut sim = Federation::new(NetworkModel::lan());
    sim.load_document("P1", "people.xml", PEOPLE).unwrap();
    sim.load_document("P2", "orders.xml", ORDERS).unwrap();

    let p1 = daemon("P1", ServerConfig::default());
    let p2 = daemon("P2", ServerConfig::default());
    let mut fed = socket_fed(&[&p1, &p2]);

    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let expected = sim.run(JOIN_QUERY, strategy).expect("simulated run");
        let got = fed.run(JOIN_QUERY, strategy).expect("tcp run");
        assert_eq!(
            got.result, expected.result,
            "TCP and simulated results diverge under {strategy:?}"
        );
        assert!(!got.result.is_empty(), "join produced no rows");
        assert!(
            got.remote_calls + got.doc_fetches > 0,
            "query never crossed the wire under {strategy:?}"
        );
    }
    for mut s in [p1, p2] {
        assert!(s.drain().clean, "idle daemon must drain cleanly");
    }
}

#[test]
fn doc_request_over_raw_socket_ships_the_document() {
    let p1 = daemon("P1", ServerConfig::default());
    let mut stream = TcpStream::connect(p1.addr()).unwrap();
    let reply = raw_exchange(&mut stream, &encode_doc_request("xrpc://P1/people.xml"))
        .expect("doc reply frame");
    let xml = decode_doc_response(&reply).expect("doc envelope");
    assert!(xml.contains("person"), "shipped document lost content: {xml}");
}

// ---------------------------------------------------------------------------
// malformed and desynced frames
// ---------------------------------------------------------------------------

#[test]
fn malformed_payload_gets_typed_fault_and_connection_survives() {
    let p1 = daemon("P1", ServerConfig::default());
    let mut stream = TcpStream::connect(p1.addr()).unwrap();

    // well-framed garbage: typed fault, connection stays open
    let reply = raw_exchange(&mut stream, "this is not an envelope").expect("fault frame");
    let fault = decode_fault(&reply).expect("typed fault for malformed payload");
    assert_eq!(fault.code(), "xrpc:transport-corrupt", "{fault:?}");

    // the same connection still serves a valid request afterwards
    let reply = raw_exchange(&mut stream, &encode_doc_request("xrpc://P1/people.xml"))
        .expect("connection must survive a malformed payload");
    assert!(decode_doc_response(&reply).is_some(), "second request failed: {reply}");
}

#[test]
fn mid_frame_eof_gets_typed_fault_then_close() {
    let p1 = daemon("P1", ServerConfig::default());
    let mut stream = TcpStream::connect(p1.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // declare 100 payload bytes, deliver 10, then half-close: the server
    // must answer with a typed fault before closing its side
    {
        use std::io::Write as _;
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(b"0123456789").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
    }
    let reply = read_frame(&mut stream, MAX_FRAME_LEN)
        .expect("fault frame expected")
        .expect("fault frame expected");
    let fault = decode_fault(&reply).expect("typed fault for mid-frame EOF");
    assert_eq!(fault.code(), "xrpc:transport-corrupt", "{fault:?}");
    // and then the close
    assert!(read_frame(&mut stream, MAX_FRAME_LEN).unwrap().is_none());
}

#[test]
fn oversized_declared_length_gets_typed_fault_then_close() {
    let p1 = daemon("P1", ServerConfig::default());
    let mut stream = TcpStream::connect(p1.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    {
        use std::io::Write as _;
        stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        stream.flush().unwrap();
    }
    let reply = read_frame(&mut stream, MAX_FRAME_LEN)
        .expect("fault frame expected")
        .expect("fault frame expected");
    let fault = decode_fault(&reply).expect("typed fault for oversized length");
    assert_eq!(fault.code(), "xrpc:transport-corrupt", "{fault:?}");
    assert!(read_frame(&mut stream, MAX_FRAME_LEN).unwrap().is_none());
}

// ---------------------------------------------------------------------------
// admission: bounded in-flight with honest hints
// ---------------------------------------------------------------------------

#[test]
fn overload_sheds_with_typed_fault_and_retry_after() {
    let config = ServerConfig {
        max_inflight: 1,
        request_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let p1 = daemon("P1", config);
    // hold the peer's evaluation slot so the admitted request stays in
    // flight for as long as we need it to
    let slot = p1.pause_peer().expect("peer slot");

    let addr = p1.addr();
    let blocked = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        raw_exchange(&mut stream, &encode_doc_request("xrpc://P1/people.xml"))
    });
    // deterministic wait: the request is genuinely in flight
    let t0 = Instant::now();
    while p1.inflight() == 0 {
        assert!(t0.elapsed() < Duration::from_secs(5), "request never became in-flight");
        std::thread::yield_now();
    }

    // second request: over the in-flight bound, shed with an honest hint
    let mut stream = TcpStream::connect(addr).unwrap();
    let reply = raw_exchange(&mut stream, &encode_doc_request("xrpc://P1/people.xml"))
        .expect("overload fault frame");
    let fault = decode_fault(&reply).expect("typed overload fault");
    match fault {
        XrpcError::Overloaded { retry_after_ms } => {
            assert!(retry_after_ms >= 1, "hint must be honest, got {retry_after_ms}ms");
        }
        other => panic!("expected xrpc:overloaded, got {other:?}"),
    }
    assert_eq!(p1.shed(), 1);

    // release the slot: the blocked request completes normally
    p1.resume_peer(slot);
    let reply = blocked.join().unwrap().expect("blocked request must complete");
    assert!(decode_doc_response(&reply).is_some(), "blocked request failed: {reply}");
}

// ---------------------------------------------------------------------------
// graceful drain
// ---------------------------------------------------------------------------

#[test]
fn drain_cancels_inflight_with_timeout_and_refuses_new_connections() {
    let config = ServerConfig {
        request_deadline: Duration::from_secs(30),
        drain_deadline: Duration::from_millis(600),
        ..ServerConfig::default()
    };
    let mut p1 = daemon("P1", config);
    // a request that can never finish: the evaluation slot is held
    let _slot = p1.pause_peer().expect("peer slot");
    let addr = p1.addr();
    let inflight = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        raw_exchange(&mut stream, &encode_doc_request("xrpc://P1/people.xml"))
    });
    let t0 = Instant::now();
    while p1.inflight() == 0 {
        assert!(t0.elapsed() < Duration::from_secs(5), "request never became in-flight");
        std::thread::yield_now();
    }

    // while the drain waits out its deadline, fresh connections must be
    // refused with a typed fault; the prober retries until it sees one
    let saw_refusal = Arc::new(AtomicBool::new(false));
    let prober = {
        let saw_refusal = Arc::clone(&saw_refusal);
        std::thread::spawn(move || {
            let give_up = Instant::now() + Duration::from_secs(5);
            while Instant::now() < give_up {
                let Ok(mut stream) = TcpStream::connect(addr) else { return };
                let Some(reply) =
                    raw_exchange(&mut stream, &encode_doc_request("xrpc://P1/people.xml"))
                else {
                    return; // listener gone: drain already finished
                };
                if let Some(fault) = decode_fault(&reply) {
                    if fault.code() == "xrpc:cancelled" {
                        saw_refusal.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let report = p1.drain();
    // the in-flight request was cancelled *with a typed fault* inside the
    // drain deadline — not left hanging, not force-killed
    let reply = inflight.join().unwrap().expect("cancelled request still gets a reply");
    let fault = decode_fault(&reply).expect("typed cancellation fault");
    assert_eq!(fault.code(), "xrpc:timeout", "{fault:?}");
    assert_eq!(report.cancelled_inflight, 0, "request wound down by itself");
    assert!(report.clean, "drain must be clean: {report:?}");
    assert!(
        report.elapsed < Duration::from_secs(3),
        "drain must be bounded, took {:?}",
        report.elapsed
    );
    prober.join().unwrap();
    assert!(
        saw_refusal.load(Ordering::SeqCst),
        "no connection observed the typed draining refusal"
    );
}

#[test]
fn idle_drain_is_clean_and_immediate() {
    let mut p1 = daemon("P1", ServerConfig::default());
    // serve one request so the daemon has done real work
    let mut stream = TcpStream::connect(p1.addr()).unwrap();
    let reply = raw_exchange(&mut stream, &encode_doc_request("xrpc://P1/people.xml")).unwrap();
    assert!(decode_doc_response(&reply).is_some());
    drop(stream);
    let report = p1.drain();
    assert!(report.clean, "{report:?}");
    assert_eq!(report.served, 1);
    assert!(report.elapsed < Duration::from_secs(3), "idle drain took {:?}", report.elapsed);
}

// ---------------------------------------------------------------------------
// dead peers: typed error, or the identical result via a replica
// ---------------------------------------------------------------------------

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        deadline: Duration::from_millis(500),
    }
}

#[test]
fn dead_peer_yields_typed_error_not_hang() {
    let p1 = daemon("P1", ServerConfig::default());
    // P2 is registered at an address nobody listens on
    let (mut fed, transport) = SocketFederation::over_tcp();
    transport.register("P1", &p1.addr().to_string());
    transport.register("P2", "127.0.0.1:1"); // reserved port: refused
    fed.set_retry_policy(fast_retry());
    let t0 = Instant::now();
    let err = fed.run(JOIN_QUERY, Strategy::ByFragment).expect_err("dead peer must error");
    assert!(err.code.is_some(), "error must be typed: {err:?}");
    assert!(t0.elapsed() < Duration::from_secs(5), "bounded by deadline, took {:?}", t0.elapsed());
}

#[test]
fn drained_primary_fails_over_to_replica_with_identical_result() {
    let mut sim = Federation::new(NetworkModel::lan());
    sim.load_document("P1", "people.xml", PEOPLE).unwrap();
    sim.load_document("P2", "orders.xml", ORDERS).unwrap();
    let expected = sim.run(JOIN_QUERY, Strategy::ByProjection).unwrap();

    let mut p1 = daemon("P1", ServerConfig::default());
    let p2 = daemon("P2", ServerConfig::default());
    // P3 serves a bit-identical replica of P1's document
    let mut p3 = PeerServer::bind("P3", "127.0.0.1:0", ServerConfig::default()).unwrap();
    p3.load_replica("xrpc://P1/people.xml", PEOPLE).unwrap();
    p3.start();

    let mut fed = socket_fed(&[&p1, &p2, &p3]);
    fed.register_replica("xrpc://P1/people.xml", "P3");
    fed.set_retry_policy(fast_retry());

    // healthy run first: identical to simulated
    let healthy = fed.run(JOIN_QUERY, Strategy::ByProjection).expect("healthy run");
    assert_eq!(healthy.result, expected.result);

    // drain the primary mid-federation; the ladder must reach the replica
    assert!(p1.drain().clean);
    let failed_over = fed.run(JOIN_QUERY, Strategy::ByProjection).expect("failover run");
    assert_eq!(
        failed_over.result, expected.result,
        "failover result must be bit-identical to the healthy one"
    );
    assert!(failed_over.failovers > 0, "the replica rung was never used");
}
