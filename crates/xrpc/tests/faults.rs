//! End-to-end typed failure semantics: injected faults surface as typed
//! [`XrpcError`]s (carried on `EvalError::code`), retryable failures are
//! replayed, exhausted calls degrade gracefully to data shipping, and
//! remote panics are captured without poisoning the federation.

use std::time::Duration;

use xqd_core::Strategy;
use xqd_xrpc::{ExecOptions, FaultPlan, Federation, NetworkModel, RetryPolicy};

fn fed() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("p", "d.xml", "<a><b><c/></b><b><c/></b></a>").unwrap();
    f
}

/// A plan downing the peer with probability `rate` per attempt — the only
/// fault kind, so every injected fault is retryable.
fn down_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan { p_peer_down: rate, ..FaultPlan::none(seed) }
}

/// Finds a seed whose schedule faults the first `faulted` attempts against
/// `peer` and leaves the next `clean` attempts clean.
fn seed_with_run(peer: &str, rate: f64, faulted: u64, clean: u64) -> u64 {
    (0..100_000u64)
        .find(|&seed| {
            let plan = down_plan(seed, rate);
            (0..faulted).all(|s| plan.decide(peer, s).is_some())
                && (faulted..faulted + clean).all(|s| plan.decide(peer, s).is_none())
        })
        .expect("no seed matches the requested fault run")
}

#[test]
fn unknown_peer_is_typed_and_fails_fast() {
    let mut f = fed();
    let err = f.run("execute at {\"nowhere\"} params () { 1 }", Strategy::ByValue).unwrap_err();
    assert_eq!(err.code.as_deref(), Some("xrpc:unknown-peer"));
    assert!(err.message.contains("nowhere"));
    // no amount of retrying makes an unconfigured peer appear
    assert_eq!(f.metrics().retries, 0);
}

#[test]
fn peer_down_surfaces_as_peer_busy_when_not_degradable() {
    let mut f = fed();
    f.set_fault_plan(Some(down_plan(7, 1.0)));
    // nested `execute at` makes the body ineligible for degradation
    let q = "execute at {\"p\"} params () { execute at {\"p\"} params () { 1 } }";
    let err = f.run(q, Strategy::ByValue).unwrap_err();
    assert_eq!(err.code.as_deref(), Some("xrpc:peer-busy"));
    assert!(f.metrics().retries > 0, "retryable failures are replayed first");
}

#[test]
fn remote_eval_fault_travels_as_wire_fault_under_every_semantics() {
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let mut f = fed();
        let err = f.run("execute at {\"p\"} params () { 1 div 0 }", strategy).unwrap_err();
        assert_eq!(err.code.as_deref(), Some("err:dynamic"), "{strategy:?}");
        assert!(err.message.contains("division"), "{strategy:?}: {}", err.message);
        // evaluation faults are deterministic: retrying would be futile
        assert_eq!(f.metrics().retries, 0, "{strategy:?}");
    }
}

#[test]
fn injected_panic_is_captured_and_the_peer_survives() {
    let mut f = fed();
    f.set_fault_plan(Some(FaultPlan { p_panic: 1.0, ..FaultPlan::none(3) }));
    f.set_retry_policy(RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });
    let q = "execute at {\"p\"} params () { count(doc(\"d.xml\")//c) }";
    let err = f.run(q, Strategy::ByValue).unwrap_err();
    assert_eq!(err.code.as_deref(), Some("xrpc:panic"));
    assert!(err.message.contains("injected fault"), "{}", err.message);
    // the peer slot was returned despite the panic: the same federation
    // answers normally once the plan is lifted
    f.set_fault_plan(None);
    let out = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(out.result, vec!["atom:2"]);
}

#[test]
fn transient_faults_are_retried_to_success() {
    // schedule: first attempt downed, second clean
    let seed = seed_with_run("p", 0.5, 1, 4);
    let mut f = fed();
    f.set_fault_plan(Some(down_plan(seed, 0.5)));
    let q = "execute at {\"p\"} params () { count(doc(\"d.xml\")//c) }";
    let out = f.run(q, Strategy::ByFragment).unwrap();
    assert_eq!(out.result, vec!["atom:2"]);
    assert_eq!(out.metrics.retries, 1, "exactly one replay");
    assert_eq!(out.metrics.faults_injected, 1);
    assert_eq!(out.metrics.fallbacks, 0, "no degradation needed");
}

#[test]
fn exhausted_retries_degrade_to_data_shipping_bit_for_bit() {
    // The strategies disagree on this query *by design* (the shipped copy
    // loses its parent under by-value/by-fragment, keeps it under
    // by-projection) — the fallback must reproduce each strategy's own
    // answer, which the loopback wire round-trip guarantees.
    let q = "let $b := execute at {\"p\"} params () { doc(\"d.xml\")/a/b[1] } \
             return count($b/parent::a)";
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let baseline = fed().run(q, strategy).unwrap();
        // schedule: all 3 RPC attempts downed (ladder lane 0 → ordinals
        // 0..3), then a clean window for the fallback's document fetch,
        // which draws from its own lane (1 << 16 ..)
        let seed = (0..100_000u64)
            .find(|&seed| {
                let plan = down_plan(seed, 0.9);
                (0..3).all(|s| plan.decide("p", s).is_some())
                    && (0..4).all(|s| plan.decide("p", (1 << 16) | s).is_none())
            })
            .expect("no seed matches the requested fault run");
        let mut f = fed();
        f.set_fault_plan(Some(down_plan(seed, 0.9)));
        let out = f.run(q, strategy).unwrap();
        assert_eq!(out.result, baseline.result, "{strategy:?}");
        assert_eq!(out.metrics.fallbacks, 1, "{strategy:?}");
        assert_eq!(out.metrics.retries, 2, "{strategy:?}: two replays before giving up");
        assert!(
            out.metrics.document_bytes > 0,
            "{strategy:?}: the fallback data-ships the document"
        );
    }
}

#[test]
fn hang_exhausts_the_deadline_into_a_typed_timeout() {
    let mut f = fed();
    f.set_fault_plan(Some(FaultPlan { p_hang: 1.0, ..FaultPlan::none(11) }));
    f.set_retry_policy(RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });
    let q = "execute at {\"p\"} params () { execute at {\"p\"} params () { 1 } }";
    let err = f.run(q, Strategy::ByValue).unwrap_err();
    assert_eq!(err.code.as_deref(), Some("xrpc:timeout"));
}

#[test]
fn retry_budget_exhaustion_is_a_typed_cancellation() {
    let mut f = fed();
    f.set_fault_plan(Some(down_plan(5, 1.0)));
    // backoff larger than the whole deadline: the first retry is abandoned
    f.set_retry_policy(RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_secs(2),
        max_backoff: Duration::from_secs(2),
        deadline: Duration::from_secs(1),
        ..RetryPolicy::default()
    });
    let q = "execute at {\"p\"} params () { execute at {\"p\"} params () { 1 } }";
    let err = f.run(q, Strategy::ByValue).unwrap_err();
    assert_eq!(err.code.as_deref(), Some("xrpc:cancelled"));
}

#[test]
fn corrupt_and_truncated_messages_are_typed_transport_faults() {
    for plan in [
        FaultPlan { p_corrupt_request: 1.0, ..FaultPlan::none(2) },
        FaultPlan { p_truncate_request: 1.0, ..FaultPlan::none(2) },
        FaultPlan { p_corrupt_response: 1.0, ..FaultPlan::none(2) },
        FaultPlan { p_truncate_response: 1.0, ..FaultPlan::none(2) },
    ] {
        let mut f = fed();
        f.set_fault_plan(Some(plan));
        f.set_retry_policy(RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });
        let q = "execute at {\"p\"} params () { execute at {\"p\"} params () { 1 } }";
        let err = f.run(q, Strategy::ByValue).unwrap_err();
        assert_eq!(err.code.as_deref(), Some("xrpc:transport-corrupt"));
    }
}

#[test]
fn document_fetch_failures_are_typed_too() {
    let mut f = fed();
    let err = f
        .run("count(doc(\"xrpc://p/missing.xml\")//c)", Strategy::DataShipping)
        .unwrap_err();
    assert_eq!(err.code.as_deref(), Some("xrpc:document-not-found"));
    assert!(err.message.contains("missing.xml"));
}

#[test]
fn scatter_degrades_failed_slots_individually() {
    let q = "(execute at {\"a\"} params () { count(doc(\"da.xml\")//x) }) + \
             (execute at {\"b\"} params () { count(doc(\"db.xml\")//x) })";
    let setup = || {
        let mut f = Federation::new(NetworkModel::lan());
        f.load_document("a", "da.xml", "<r><x/><x/></r>").unwrap();
        f.load_document("b", "db.xml", "<r><x/></r>").unwrap();
        f.set_exec_options(ExecOptions { parallel_scatter: true, ..ExecOptions::default() });
        f
    };
    let baseline = setup().run(q, Strategy::ByValue).unwrap();
    assert_eq!(baseline.result, vec!["atom:3"]);
    // schedule: peer "b" (scatter slot 1 → lane 1) down for 3 RPC attempts
    // then clean for its fallback fetch (which allocates lane 2); peer "a"
    // (slot 0 → lane 0) clean throughout
    let rate = 0.7;
    let seed = (0..200_000u64)
        .find(|&seed| {
            let plan = down_plan(seed, rate);
            (0..3u64).all(|s| plan.decide("b", (1 << 16) | s).is_some())
                && (0..4u64).all(|s| plan.decide("b", (2 << 16) | s).is_none())
                && (0..4u64).all(|s| plan.decide("a", s).is_none())
        })
        .expect("no seed downs b but not a");
    let mut f = setup();
    f.set_fault_plan(Some(down_plan(seed, rate)));
    let out = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(out.result, baseline.result);
    assert_eq!(out.metrics.fallbacks, 1, "only the failed slot degrades");
}
