//! Parallel scatter-gather executor tests.
//!
//! The contract under test: fanning independent `execute at` calls out
//! across scoped threads changes **when** messages cross the simulated wire
//! (overlapped instead of one-after-another) but changes *nothing
//! observable* — canonical results, message bytes, transfer and call counts
//! are bit-identical to the sequential loop, under every wire semantics.

use xqd_core::Strategy;
use xqd_xrpc::{ExecOptions, Federation, NetworkModel};

/// Three peers, each holding a differently-sized slice of the same shape.
fn fed3(model: NetworkModel) -> Federation {
    let mut f = Federation::new(model);
    for (peer, n) in [("p1", 3usize), ("p2", 5), ("p3", 2)] {
        let mut xml = String::from("<site>");
        for i in 0..n {
            xml.push_str(&format!(
                "<item id=\"{peer}-{i}\"><v>{}</v></item>",
                (i * 7 + peer.len()) % 23
            ));
        }
        xml.push_str("</site>");
        f.load_document(peer, "d.xml", &xml).unwrap();
    }
    f
}

/// A query that decomposes into one scatter round of three independent
/// calls (one per peer).
const SCATTER_Q: &str = r#"(count(doc("xrpc://p1/d.xml")//item),
                            sum(doc("xrpc://p2/d.xml")//v),
                            count(doc("xrpc://p3/d.xml")//item))"#;

fn seq_opts() -> ExecOptions {
    ExecOptions { parallel_scatter: false, bulk_workers: 1, ..ExecOptions::default() }
}

#[test]
fn plan_reports_the_scatter_round() {
    let mut f = fed3(NetworkModel::lan());
    let out = f.run(SCATTER_Q, Strategy::ByValue).unwrap();
    assert_eq!(out.plan.scatter_rounds, vec![3]);
}

#[test]
fn parallel_matches_sequential_everything_observable() {
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let mut par = fed3(NetworkModel::lan());
        let par_out = par.run(SCATTER_Q, strategy).unwrap();

        let mut seq = fed3(NetworkModel::lan());
        seq.set_exec_options(seq_opts());
        let seq_out = seq.run(SCATTER_Q, strategy).unwrap();

        assert_eq!(par_out.result, seq_out.result, "{strategy:?} results diverge");
        assert_eq!(
            par_out.metrics.message_bytes, seq_out.metrics.message_bytes,
            "{strategy:?} message bytes diverge"
        );
        assert_eq!(par_out.metrics.transfers, seq_out.metrics.transfers);
        assert_eq!(par_out.metrics.remote_calls, seq_out.metrics.remote_calls);
        // the scatter round is only counted when it actually fans out
        assert_eq!(par_out.metrics.scatter_rounds, 1, "{strategy:?}");
        assert_eq!(seq_out.metrics.scatter_rounds, 0, "{strategy:?}");
        // sequential execution never overlaps
        assert_eq!(seq_out.metrics.network_overlapped, seq_out.metrics.network);
    }
}

#[test]
fn overlapped_network_is_cheaper_under_wan() {
    let mut f = fed3(NetworkModel::wan());
    let out = f.run(SCATTER_Q, Strategy::ByValue).unwrap();
    let m = out.metrics;
    // 3 request/response pairs serialized vs the slowest single chain:
    // overlap must save at least one full round trip of latency
    assert!(
        m.network_overlapped + NetworkModel::wan().transfer_time(0) * 2 <= m.network,
        "no overlap benefit: {:?} vs {:?}",
        m.network_overlapped,
        m.network
    );
    assert!(m.wall_clock_overlapped() < m.wall_clock_serialized());
}

#[test]
fn let_chain_scatters_too() {
    // independent let-bound calls to distinct peers form a scatter round
    // even without the sequence shape
    let q = r#"let $a := count(doc("xrpc://p1/d.xml")//item)
               let $b := count(doc("xrpc://p2/d.xml")//item)
               return $a + $b"#;
    let mut f = fed3(NetworkModel::lan());
    let out = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(out.plan.scatter_rounds, vec![2]);
    assert_eq!(out.metrics.scatter_rounds, 1);
    assert_eq!(out.result, vec!["atom:8"]);

    let mut seq = fed3(NetworkModel::lan());
    seq.set_exec_options(seq_opts());
    let seq_out = seq.run(q, Strategy::ByValue).unwrap();
    assert_eq!(seq_out.result, out.result);
    assert_eq!(seq_out.metrics.message_bytes, out.metrics.message_bytes);
}

#[test]
fn dependent_let_chain_stays_sequential() {
    // $b references $a, so the calls are *not* independent — no scatter
    let q = r#"let $a := count(doc("xrpc://p1/d.xml")//item)
               let $b := execute at {"p2"} params ($n := $a)
                         { count(doc("xrpc://p2/d.xml")//item) + $n }
               return $b"#;
    let mut f = fed3(NetworkModel::lan());
    let out = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(out.metrics.scatter_rounds, 0);
    assert_eq!(out.result, vec!["atom:8"]);
}

#[test]
fn reentrant_same_peer_nested_call() {
    // p1's shipped body calls back into p1 itself: the executor must not
    // deadlock on the (already taken) peer slot, and the loopback message
    // still pays its wire bytes
    let mut f = fed3(NetworkModel::lan());
    let q = r#"execute at {"p1"} params () {
                 count(doc("d.xml")//item) +
                 (execute at {"p1"} params () { sum(doc("d.xml")//item/v) })
               }"#;
    let out = f.run(q, Strategy::ByValue).unwrap();
    // 3 items; v values for p1 (len 2): (0*7+2)%23=2, (7+2)%23=9, (14+2)%23=16 → 27
    assert_eq!(out.result, vec!["atom:30"]);
    assert_eq!(out.metrics.remote_calls, 2);
    assert_eq!(out.metrics.transfers, 4, "outer + nested request/response pairs");
    assert!(out.metrics.message_bytes > 0);
}

#[test]
fn scatter_round_including_own_peer_falls_back_to_sequential() {
    // a round where one target is the executing peer itself cannot take its
    // own slot — the executor must detect this and run the loop inline
    let mut f = fed3(NetworkModel::lan());
    let q = r#"execute at {"p3"} params () {
                 (execute at {"p1"} params () { count(doc("xrpc://p1/d.xml")//item) },
                  execute at {"p3"} params () { count(doc("d.xml")//item) })
               }"#;
    let out = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(out.result, vec!["atom:3", "atom:2"]);
}

#[test]
fn bulk_workers_preserve_results_and_bytes() {
    // Q2 shape: a Bulk RPC carrying one call per outer tuple; splitting the
    // call list across snapshot workers must be invisible
    let q = r#"for $x in doc("xrpc://p1/d.xml")//item
               where $x/v = doc("xrpc://p2/d.xml")//item/v
               return $x/@id"#;
    let mut base = fed3(NetworkModel::lan());
    base.set_exec_options(ExecOptions { parallel_scatter: true, bulk_workers: 1, ..ExecOptions::default() });
    let mut par = fed3(NetworkModel::lan());
    par.set_exec_options(ExecOptions { parallel_scatter: true, bulk_workers: 4, ..ExecOptions::default() });
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let a = base.run(q, strategy).unwrap();
        let b = par.run(q, strategy).unwrap();
        assert_eq!(a.result, b.result, "{strategy:?} results diverge");
        assert_eq!(a.metrics.message_bytes, b.metrics.message_bytes, "{strategy:?}");
        assert_eq!(a.metrics.transfers, b.metrics.transfers);
        assert_eq!(a.metrics.remote_calls, b.metrics.remote_calls);
    }
}

#[test]
fn unknown_peer_in_scatter_round_is_an_error() {
    let q = r#"(count(doc("xrpc://p1/d.xml")//item),
                count(doc("xrpc://nowhere/d.xml")//item))"#;
    let mut f = fed3(NetworkModel::lan());
    let err = f.run(q, Strategy::ByValue).unwrap_err();
    assert!(err.to_string().contains("nowhere"), "{err}");
}
