//! Deterministic distributed tracing on the **simulated clock**.
//!
//! Every federation run gets a trace: a tree of spans whose timestamps are
//! simulated-network nanoseconds (the same quantities billed to
//! [`crate::Metrics::network_overlapped`] and to the health scoreboard) and
//! whose ids are assigned in coordinator program order. Nothing in a span
//! comes from the wall clock or from unseeded randomness, so a chaos
//! schedule replayed from the same seed emits a **byte-identical** trace
//! file — the trace itself is a determinism oracle, not just a debugging
//! aid.
//!
//! Two rules make that work under the parallel scatter executor:
//!
//! 1. **Workers build, the coordinator submits.** Worker threads assemble
//!    [`SpanBuilder`] trees with *relative* offsets (rung-relative attempt
//!    starts, round-relative rung starts) and hand them back through the
//!    ladder outcome. Only the coordinator thread calls
//!    [`Tracer::submit`], in slot order at the same gather barriers where
//!    it applies health observations — so span ids and vector order are a
//!    pure function of the schedule.
//! 2. **The clock advances where the scoreboard's does.** [`Tracer`]
//!    mirrors the [`crate::Scoreboard`] discipline: simulated time moves
//!    forward only after a sequential ladder completes or a scatter round
//!    gathers, by exactly the overlapped chain charged to the metrics.
//!
//! CPU-bound front-end work (parse, decompose, compile) is recorded as
//! zero-duration marker spans: the simulated clock has no opinion about
//! coordinator CPU, and giving those spans wall-clock durations would
//! break replay. The practical consequence is that 100% of a trace's
//! simulated wall time is attributable to network-bearing spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Span id of the root span every [`Tracer`] pre-creates at construction.
pub const ROOT_SPAN: u64 = 1;

fn as_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

// ---------------------------------------------------------------------------
// spans
// ---------------------------------------------------------------------------

/// One completed span on the simulated clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique within the trace; assigned in submission (= program) order.
    pub id: u64,
    /// Parent span id; `0` only on the root span.
    pub parent: u64,
    /// Stable span kind, e.g. `"rpc.attempt"` — see DESIGN.md for the table.
    pub name: &'static str,
    /// Coarse category (`"query"`, `"rpc"`, `"doc"`, `"sched"`, …).
    pub cat: &'static str,
    /// Absolute simulated start, nanoseconds since run start.
    pub start_ns: u64,
    /// Simulated duration in nanoseconds (0 for marker events).
    pub dur_ns: u64,
    /// Deterministic key/value annotations (fault kind, breaker state, …).
    pub args: Vec<(&'static str, String)>,
}

/// A span under construction, with timestamps *relative to its parent's
/// start*. Builders are cheap to assemble on worker threads and are turned
/// into absolute [`Span`]s only when the coordinator submits them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanBuilder {
    pub name: &'static str,
    pub cat: &'static str,
    /// Start offset from the parent span's start.
    pub rel_start_ns: u64,
    pub dur_ns: u64,
    pub args: Vec<(&'static str, String)>,
    pub children: Vec<SpanBuilder>,
}

impl SpanBuilder {
    pub fn new(name: &'static str, cat: &'static str) -> SpanBuilder {
        SpanBuilder { name, cat, ..SpanBuilder::default() }
    }

    /// Sets the start offset from the parent span's start.
    pub fn at(mut self, rel_start: Duration) -> SpanBuilder {
        self.rel_start_ns = as_ns(rel_start);
        self
    }

    /// Sets the simulated duration.
    pub fn lasting(mut self, dur: Duration) -> SpanBuilder {
        self.dur_ns = as_ns(dur);
        self
    }

    /// Appends one annotation.
    pub fn arg(mut self, key: &'static str, value: impl Into<String>) -> SpanBuilder {
        self.args.push((key, value.into()));
        self
    }

    /// Appends a child builder (offsets relative to *this* span's start).
    pub fn child(mut self, child: SpanBuilder) -> SpanBuilder {
        self.children.push(child);
        self
    }

    pub fn push_child(&mut self, child: SpanBuilder) {
        self.children.push(child);
    }
}

// ---------------------------------------------------------------------------
// tracer
// ---------------------------------------------------------------------------

struct TracerInner {
    next_id: u64,
    spans: Vec<Span>,
}

/// Collects spans for one run. Created by the executor when
/// [`crate::ExecOptions::trace`] is set; see the module docs for the
/// determinism contract.
pub struct Tracer {
    trace_id: u64,
    /// Simulated clock cell, shared with the evaluator's profile hook so
    /// per-operator time attribution reads the same timeline.
    clock: Arc<AtomicU64>,
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// A fresh tracer whose root span (`id` [`ROOT_SPAN`]) starts at 0 and
    /// is closed by [`Tracer::finish`].
    pub fn new(trace_id: u64, root_name: &'static str, root_cat: &'static str) -> Tracer {
        let root = Span {
            id: ROOT_SPAN,
            parent: 0,
            name: root_name,
            cat: root_cat,
            start_ns: 0,
            dur_ns: 0,
            args: Vec::new(),
        };
        Tracer {
            trace_id,
            clock: Arc::new(AtomicU64::new(0)),
            inner: Mutex::new(TracerInner { next_id: ROOT_SPAN + 1, spans: vec![root] }),
        }
    }

    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Current simulated time in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// The shared clock cell (for the evaluator's per-operator profile).
    pub fn clock_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.clock)
    }

    /// Advances the simulated clock; returns the new time. Called exactly
    /// where the executor advances the health scoreboard.
    pub fn advance(&self, elapsed: Duration) -> u64 {
        self.clock.fetch_add(as_ns(elapsed), Ordering::SeqCst) + as_ns(elapsed)
    }

    /// Moves the clock forward to `ns` if it is behind (never rewinds).
    pub fn advance_to(&self, ns: u64) {
        self.clock.fetch_max(ns, Ordering::SeqCst);
    }

    /// Submits a builder tree anchored at absolute time `anchor_ns` under
    /// `parent`. Ids are assigned depth-first in child order; returns the
    /// tree root's id. Must be called from the coordinator thread at a
    /// deterministic point — see the module docs.
    pub fn submit(&self, anchor_ns: u64, parent: u64, builder: SpanBuilder) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let root_id = inner.next_id;
        fn push(inner: &mut TracerInner, parent: u64, abs_base: u64, b: SpanBuilder) {
            let id = inner.next_id;
            inner.next_id += 1;
            let start_ns = abs_base.saturating_add(b.rel_start_ns);
            inner.spans.push(Span {
                id,
                parent,
                name: b.name,
                cat: b.cat,
                start_ns,
                dur_ns: b.dur_ns,
                args: b.args,
            });
            for child in b.children {
                push(inner, id, start_ns, child);
            }
        }
        push(&mut inner, parent, anchor_ns, builder);
        root_id
    }

    /// Submits a zero-duration marker span at the current simulated time.
    pub fn event(
        &self,
        parent: u64,
        name: &'static str,
        cat: &'static str,
        args: Vec<(&'static str, String)>,
    ) -> u64 {
        let now = self.clock_ns();
        self.submit(now, parent, SpanBuilder { name, cat, args, ..SpanBuilder::default() })
    }

    /// Appends an annotation to the root span.
    pub fn root_arg(&self, key: &'static str, value: impl Into<String>) {
        let mut inner = self.inner.lock().unwrap();
        inner.spans[0].args.push((key, value.into()));
    }

    /// Closes the root span at the current clock and returns the trace.
    pub fn finish(&self) -> Trace {
        let total_ns = self.clock_ns();
        let mut inner = self.inner.lock().unwrap();
        inner.spans[0].dur_ns = total_ns;
        Trace { trace_id: self.trace_id, total_ns, spans: inner.spans.clone() }
    }
}

// ---------------------------------------------------------------------------
// finished traces
// ---------------------------------------------------------------------------

/// A finished trace: the root span plus everything submitted under it, in
/// deterministic submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub trace_id: u64,
    /// Total simulated time of the run (the root span's duration).
    pub total_ns: u64,
    pub spans: Vec<Span>,
}

impl Trace {
    pub fn root(&self) -> &Span {
        &self.spans[0]
    }

    /// All spans with the given name, in submission order.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Direct children of `id`, in submission order.
    pub fn children_of(&self, id: u64) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == id && s.id != id)
    }

    /// Fraction of total simulated time covered by the root's direct
    /// children (which run back-to-back in coordinator program order).
    /// `1.0` for an empty timeline.
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 1.0;
        }
        let covered: u64 = self.children_of(ROOT_SPAN).map(|s| s.dur_ns).sum();
        covered as f64 / self.total_ns as f64
    }

    /// Latency histogram over the durations of every span named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut h = Histogram::new();
        for s in self.named(name) {
            h.record_ns(s.dur_ns);
        }
        h
    }

    /// The trace as a self-describing JSON document, one span per line.
    /// All values are integers or strings — no floats — so the bytes are
    /// exactly reproducible on replay.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 160);
        out.push_str("{\n  \"trace_id\": \"");
        out.push_str(&format!("{:#018x}", self.trace_id));
        out.push_str("\",\n  \"total_sim_ns\": ");
        out.push_str(&self.total_ns.to_string());
        out.push_str(",\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str("    {\"id\": ");
            out.push_str(&s.id.to_string());
            out.push_str(", \"parent\": ");
            out.push_str(&s.parent.to_string());
            out.push_str(", \"name\": \"");
            escape_json(s.name, &mut out);
            out.push_str("\", \"cat\": \"");
            escape_json(s.cat, &mut out);
            out.push_str("\", \"start_ns\": ");
            out.push_str(&s.start_ns.to_string());
            out.push_str(", \"dur_ns\": ");
            out.push_str(&s.dur_ns.to_string());
            out.push_str(", \"args\": {");
            for (j, (k, v)) in s.args.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                escape_json(k, &mut out);
                out.push_str("\": \"");
                escape_json(v, &mut out);
                out.push('"');
            }
            out.push_str("}}");
            if i + 1 < self.spans.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The trace in Chrome `trace_event` format (the JSON Object Format
    /// with complete `"ph": "X"` events), loadable in `chrome://tracing`
    /// and Perfetto. Timestamps are microseconds with the sub-microsecond
    /// remainder rendered by integer math, so these bytes replay exactly
    /// too.
    pub fn to_chrome(&self) -> String {
        fn us(ns: u64, out: &mut String) {
            out.push_str(&(ns / 1_000).to_string());
            out.push('.');
            out.push_str(&format!("{:03}", ns % 1_000));
        }
        let mut out = String::with_capacity(256 + self.spans.len() * 200);
        out.push_str("{\"traceEvents\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str("  {\"name\": \"");
            escape_json(s.name, &mut out);
            out.push_str("\", \"cat\": \"");
            escape_json(s.cat, &mut out);
            out.push_str("\", \"ph\": \"X\", \"ts\": ");
            us(s.start_ns, &mut out);
            out.push_str(", \"dur\": ");
            us(s.dur_ns, &mut out);
            out.push_str(", \"pid\": 1, \"tid\": 1, \"args\": {\"span_id\": \"");
            out.push_str(&s.id.to_string());
            out.push_str("\", \"parent\": \"");
            out.push_str(&s.parent.to_string());
            out.push('"');
            for (k, v) in &s.args {
                out.push_str(", \"");
                escape_json(k, &mut out);
                out.push_str("\": \"");
                escape_json(v, &mut out);
                out.push('"');
            }
            out.push_str("}}");
            if i + 1 < self.spans.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("], \"displayTimeUnit\": \"ms\", \"otherData\": {\"trace_id\": \"");
        out.push_str(&format!("{:#018x}", self.trace_id));
        out.push_str("\"}}\n");
        out
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// histograms
// ---------------------------------------------------------------------------

/// Upper bounds (microseconds) of the fixed display buckets; the last
/// bucket is open-ended. Chosen to straddle the simulated LAN/WAN chain
/// range: tens of microseconds to seconds.
pub const BUCKET_BOUNDS_US: [u64; 14] =
    [10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000];

/// A latency histogram with fixed display buckets **and** exact
/// percentiles: every recorded value is retained, so `p50`/`p95`/`p99`
/// are computed by nearest-rank over the sorted values rather than
/// interpolated from bucket edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS_US.len() + 1],
    values: Vec<u64>,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn record(&mut self, d: Duration) {
        self.record_ns(as_ns(d));
    }

    pub fn record_ns(&mut self, ns: u64) {
        let us = ns / 1_000;
        let idx = BUCKET_BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[idx] += 1;
        self.values.push(ns);
    }

    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// `(upper_bound_us, count)` per display bucket; the final entry's
    /// bound is `u64::MAX` (the open-ended overflow bucket).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        BUCKET_BOUNDS_US
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Exact nearest-rank percentile (`p` in `[0, 100]`) over everything
    /// recorded. `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(Duration::from_nanos(sorted[rank.clamp(1, sorted.len()) - 1]))
    }

    pub fn p50(&self) -> Option<Duration> {
        self.percentile(50.0)
    }

    pub fn p95(&self) -> Option<Duration> {
        self.percentile(95.0)
    }

    pub fn p99(&self) -> Option<Duration> {
        self.percentile(99.0)
    }

    /// A plain-text rendering: one line per non-empty bucket plus the
    /// exact percentile summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.count().max(1);
        for (bound, count) in self.buckets() {
            if count == 0 {
                continue;
            }
            let label = if bound == u64::MAX {
                format!("{:>9}", format!(">{}us", BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]))
            } else {
                format!("{:>9}", format!("<={bound}us"))
            };
            let bar = "#".repeat(((count * 40) / total) as usize);
            out.push_str(&format!("{label} {count:>6} {bar}\n"));
        }
        if let (Some(p50), Some(p95), Some(p99)) = (self.p50(), self.p95(), self.p99()) {
            out.push_str(&format!(
                "n={} p50={:?} p95={:?} p99={:?}\n",
                self.count(),
                p50,
                p95,
                p99
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submitted_builders_resolve_relative_offsets_depth_first() {
        let t = Tracer::new(7, "query", "query");
        let rung = SpanBuilder::new("failover.rung", "rpc")
            .at(Duration::from_micros(5))
            .lasting(Duration::from_micros(20))
            .child(
                SpanBuilder::new("rpc.attempt", "rpc")
                    .at(Duration::from_micros(2))
                    .lasting(Duration::from_micros(10))
                    .arg("peer", "p1"),
            );
        let call = SpanBuilder::new("rpc.call", "rpc").lasting(Duration::from_micros(30)).child(rung);
        let id = t.submit(1_000, ROOT_SPAN, call);
        t.advance(Duration::from_micros(30));
        let trace = t.finish();

        assert_eq!(id, 2);
        let spans = &trace.spans;
        assert_eq!(spans.len(), 4);
        assert_eq!((spans[1].name, spans[1].parent, spans[1].start_ns), ("rpc.call", ROOT_SPAN, 1_000));
        assert_eq!((spans[2].name, spans[2].parent, spans[2].start_ns), ("failover.rung", 2, 6_000));
        assert_eq!((spans[3].name, spans[3].parent, spans[3].start_ns), ("rpc.attempt", 3, 8_000));
        assert_eq!(spans[3].args, vec![("peer", "p1".to_string())]);
        assert_eq!(trace.total_ns, 30_000);
        assert_eq!(trace.root().dur_ns, 30_000);
    }

    #[test]
    fn identical_submissions_yield_identical_bytes() {
        let build = || {
            let t = Tracer::new(99, "query", "query");
            t.event(ROOT_SPAN, "frontend.parse", "frontend", vec![("chars", "41".into())]);
            t.submit(
                0,
                ROOT_SPAN,
                SpanBuilder::new("rpc.call", "rpc")
                    .lasting(Duration::from_micros(123))
                    .arg("peer", "p\"1\\"),
            );
            t.advance(Duration::from_micros(123));
            t.finish()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_chrome(), b.to_chrome());
        assert!(a.to_json().contains("\\\"1\\\\"), "json escaping: {}", a.to_json());
    }

    #[test]
    fn coverage_counts_direct_children_of_root() {
        let t = Tracer::new(1, "query", "query");
        t.submit(0, ROOT_SPAN, SpanBuilder::new("a", "rpc").lasting(Duration::from_nanos(600)));
        t.advance(Duration::from_nanos(600));
        t.submit(600, ROOT_SPAN, SpanBuilder::new("b", "rpc").lasting(Duration::from_nanos(300)));
        t.advance(Duration::from_nanos(400));
        let trace = t.finish();
        assert_eq!(trace.total_ns, 1_000);
        assert!((trace.coverage() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_are_exact() {
        let mut h = Histogram::new();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), Some(Duration::from_micros(50)));
        assert_eq!(h.p95(), Some(Duration::from_micros(95)));
        assert_eq!(h.p99(), Some(Duration::from_micros(99)));
        assert_eq!(h.percentile(100.0), Some(Duration::from_micros(100)));
        let recorded: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(recorded, 100);
        assert!(Histogram::new().p50().is_none());
    }

    #[test]
    fn chrome_export_is_object_format_with_complete_events() {
        let t = Tracer::new(3, "query", "query");
        t.submit(0, ROOT_SPAN, SpanBuilder::new("x", "rpc").lasting(Duration::from_nanos(1_500)));
        t.advance(Duration::from_nanos(1_500));
        let chrome = t.finish().to_chrome();
        assert!(chrome.starts_with("{\"traceEvents\": ["));
        assert!(chrome.contains("\"ph\": \"X\""));
        assert!(chrome.contains("\"ts\": 0.000"));
        assert!(chrome.contains("\"dur\": 1.500"));
        assert!(chrome.contains("\"pid\": 1"));
    }
}
