//! Wire-level building blocks shared by the three message codecs:
//!
//! * `fragid`/`nodeid` arithmetic — the paper addresses a shipped node as
//!   `$msg//fragment[$fragid]/descendant::node()[$nodeid]`, i.e. the
//!   1-based rank among **non-attribute** nodes of the fragment (footnote 2:
//!   `descendant::node()` does not return attributes; attribute references
//!   carry the owner's `nodeid` plus the attribute name);
//! * fragment planning for pass-by-fragment — deduplicate overlapping
//!   shipped nodes into top-level subtree roots, sorted in document order;
//! * evaluation of relative projection paths (`Urel`/`Rrel`) on
//!   materialized context sequences, including the `root()` / `id()` /
//!   `idref()` markers of the Table V grammar.

use xqd_xml::axes::{axis_nodes, node_test_matches, NodeTest};
use xqd_xml::{DocId, Document, NodeId, NodeKind, Store};
use xqd_xquery::ast::{NameTest, RelPath, RelStep};

/// 1-based rank of `target` among non-attribute nodes in `[start, end]`
/// (preorder). Returns `None` when `target` is outside the range or is an
/// attribute.
pub fn nodeid_in_range(doc: &Document, start: u32, end: u32, target: u32) -> Option<u32> {
    if target >= doc.len() as u32 {
        return None;
    }
    if target < start || target > end || doc.kind(target) == NodeKind::Attribute {
        return None;
    }
    let mut rank = 0u32;
    for i in start..=target {
        if doc.kind(i) != NodeKind::Attribute {
            rank += 1;
        }
    }
    Some(rank)
}

/// Inverse of [`nodeid_in_range`]. Total for arbitrary (possibly hostile)
/// `start`/`end`/`nodeid` inputs: out-of-range references from a mangled
/// message yield `None`, never an out-of-bounds access.
pub fn node_at_nodeid(doc: &Document, start: u32, end: u32, nodeid: u32) -> Option<u32> {
    let last = (doc.len() as u32).checked_sub(1)?;
    let mut rank = 0u32;
    for i in start..=end.min(last) {
        if doc.kind(i) != NodeKind::Attribute {
            rank += 1;
            if rank == nodeid {
                return Some(i);
            }
        }
    }
    None
}

/// Fragment plan for pass-by-fragment: per source document (in `DocId`
/// order), the top-level subtree roots to serialize — overlapping shipped
/// nodes reuse their ancestor's fragment, in document order, which is
/// exactly what preserves identity, order and ancestry (Section V).
#[derive(Debug, Clone, Default)]
pub struct FragmentPlan {
    /// `(doc, root)` pairs; index + 1 = `fragid`.
    pub roots: Vec<(DocId, u32)>,
}

impl FragmentPlan {
    /// Builds the plan for a set of shipped nodes. Attribute nodes are
    /// promoted to their owner element (an attribute cannot stand alone in
    /// serialized XML; the owner's subtree covers it).
    pub fn new(store: &Store, nodes: &[NodeId]) -> FragmentPlan {
        let mut normalized: Vec<NodeId> = nodes
            .iter()
            .map(|n| {
                let doc = store.doc(n.doc);
                if doc.kind(n.idx) == NodeKind::Attribute {
                    NodeId::new(n.doc, doc.parent(n.idx).expect("attribute has owner"))
                } else {
                    *n
                }
            })
            .collect();
        normalized.sort_unstable();
        normalized.dedup();
        let mut roots: Vec<(DocId, u32)> = Vec::new();
        for n in normalized {
            let covered = roots.iter().any(|&(d, r)| {
                d == n.doc && {
                    let doc = store.doc(d);
                    r == n.idx || doc.is_ancestor(r, n.idx)
                }
            });
            if !covered {
                roots.push((n.doc, n.idx));
            }
        }
        FragmentPlan { roots }
    }

    /// Locates `node` in the plan: `(fragid, nodeid)`, both 1-based.
    /// Document-node fragments use the convention `nodeid == 0` for the
    /// document node itself. Attributes resolve to their owner's nodeid
    /// (the caller adds the attribute name).
    pub fn locate(&self, store: &Store, node: NodeId) -> Option<(u32, u32)> {
        let doc = store.doc(node.doc);
        let target = if doc.kind(node.idx) == NodeKind::Attribute {
            doc.parent(node.idx)?
        } else {
            node.idx
        };
        for (i, &(d, r)) in self.roots.iter().enumerate() {
            if d != node.doc {
                continue;
            }
            if r == target || doc.is_ancestor(r, target) {
                let fragid = i as u32 + 1;
                if doc.kind(r) == NodeKind::Document {
                    // fragment is the whole document: ranks start below it
                    if target == r {
                        return Some((fragid, 0));
                    }
                    let nodeid = nodeid_in_range(doc, r + 1, doc.subtree_end(r), target)?;
                    return Some((fragid, nodeid));
                }
                let nodeid = nodeid_in_range(doc, r, doc.subtree_end(r), target)?;
                return Some((fragid, nodeid));
            }
        }
        None
    }
}

/// Evaluates a set of relative projection paths on a materialized context
/// sequence, producing the node set (atoms in the context are skipped —
/// paths apply to nodes only).
pub fn eval_rel_paths(
    store: &Store,
    context: &[NodeId],
    paths: &[RelPath],
) -> Vec<NodeId> {
    let mut out = Vec::new();
    for path in paths {
        let mut cur: Vec<NodeId> = context.to_vec();
        for step in &path.0 {
            cur = eval_rel_step(store, &cur, step);
        }
        out.extend(cur);
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn eval_rel_step(store: &Store, context: &[NodeId], step: &RelStep) -> Vec<NodeId> {
    let mut out = Vec::new();
    match step {
        RelStep::Axis { axis, test } => {
            for n in context {
                let doc = store.doc(n.doc);
                let resolved = match test {
                    NameTest::Name(name) => store
                        .names
                        .get(name)
                        .map(NodeTest::Name)
                        .unwrap_or(NodeTest::UnknownName),
                    NameTest::Wildcard => NodeTest::Wildcard,
                    NameTest::AnyKind => NodeTest::AnyKind,
                    NameTest::Text => NodeTest::Text,
                    NameTest::Comment => NodeTest::Comment,
                };
                let mut reached = Vec::new();
                axis_nodes(doc, n.idx, *axis, &mut reached);
                for r in reached {
                    if node_test_matches(doc, r, *axis, &resolved) {
                        out.push(NodeId::new(n.doc, r));
                    }
                }
            }
        }
        RelStep::Root => {
            for n in context {
                out.push(NodeId::new(n.doc, 0));
            }
        }
        RelStep::Id => {
            // conservative (Section VI-A): every element carrying an ID
            // attribute in the context documents
            let mut docs: Vec<DocId> = context.iter().map(|n| n.doc).collect();
            docs.sort_unstable();
            docs.dedup();
            for d in docs {
                let doc = store.doc(d);
                let mut owners: Vec<u32> = doc.id_map_values();
                owners.sort_unstable();
                owners.dedup();
                out.extend(owners.into_iter().map(|i| NodeId::new(d, i)));
            }
        }
        RelStep::Idref => {
            let mut docs: Vec<DocId> = context.iter().map(|n| n.doc).collect();
            docs.sort_unstable();
            docs.dedup();
            for d in docs {
                let doc = store.doc(d);
                for (attr, _) in doc.idref_attributes(&store.names) {
                    out.push(NodeId::new(d, attr));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Serializes a relative path to its message text (`used-path` /
/// `returned-path` content) — the inverse of [`parse_rel_path`].
pub fn rel_path_text(p: &RelPath) -> String {
    p.to_string()
}

/// Parses a relative path from its message text.
pub fn parse_rel_path(s: &str) -> Option<RelPath> {
    let s = s.trim();
    if s.is_empty() || s == "self::node()" {
        return Some(RelPath(vec![]));
    }
    let mut steps = Vec::new();
    for part in s.split('/') {
        let part = part.trim();
        match part {
            "root()" => steps.push(RelStep::Root),
            "id()" => steps.push(RelStep::Id),
            "idref()" => steps.push(RelStep::Idref),
            _ => {
                let (axis_name, test_text) = part.split_once("::")?;
                let axis = xqd_xml::Axis::from_name(axis_name)?;
                let test = match test_text {
                    "*" => NameTest::Wildcard,
                    "node()" => NameTest::AnyKind,
                    "text()" => NameTest::Text,
                    "comment()" => NameTest::Comment,
                    name => NameTest::Name(name.to_string()),
                };
                steps.push(RelStep::Axis { axis, test });
            }
        }
    }
    Some(RelPath(steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqd_xml::parse_document;

    fn fixture(store: &mut Store) -> DocId {
        // <a><b id="1"><c/>t</b><d><e/></d></a>
        // 0=doc 1=a 2=b 3=@id 4=c 5=text 6=d 7=e
        parse_document(store, "<a><b id=\"1\"><c/>t</b><d><e/></d></a>", Some("f.xml")).unwrap()
    }

    #[test]
    fn nodeid_skips_attributes() {
        let mut s = Store::new();
        let d = fixture(&mut s);
        let doc = s.doc(d);
        // fragment rooted at <b> (idx 2): ranks are b=1, c=2, text=3 (@id skipped)
        assert_eq!(nodeid_in_range(doc, 2, doc.subtree_end(2), 2), Some(1));
        assert_eq!(nodeid_in_range(doc, 2, doc.subtree_end(2), 4), Some(2));
        assert_eq!(nodeid_in_range(doc, 2, doc.subtree_end(2), 5), Some(3));
        assert_eq!(nodeid_in_range(doc, 2, doc.subtree_end(2), 3), None, "attribute");
        assert_eq!(node_at_nodeid(doc, 2, doc.subtree_end(2), 2), Some(4));
        assert_eq!(node_at_nodeid(doc, 2, doc.subtree_end(2), 9), None);
    }

    #[test]
    fn fragment_plan_dedups_overlap() {
        // mirrors Example 5.1: $bc (inside) and $abc (ancestor) share one
        // fragment
        let mut s = Store::new();
        let d = fixture(&mut s);
        let bc = NodeId::new(d, 2); // <b>
        let abc = NodeId::new(d, 1); // <a>, ancestor of <b>
        let plan = FragmentPlan::new(&s, &[bc, abc]);
        assert_eq!(plan.roots, vec![(d, 1)], "one fragment: the ancestor");
        assert_eq!(plan.locate(&s, abc), Some((1, 1)));
        assert_eq!(plan.locate(&s, bc), Some((1, 2)));
    }

    #[test]
    fn fragment_plan_orders_by_document_order() {
        let mut s = Store::new();
        let d = fixture(&mut s);
        let plan = FragmentPlan::new(&s, &[NodeId::new(d, 6), NodeId::new(d, 2)]);
        assert_eq!(plan.roots, vec![(d, 2), (d, 6)]);
        assert_eq!(plan.locate(&s, NodeId::new(d, 2)), Some((1, 1)));
        assert_eq!(plan.locate(&s, NodeId::new(d, 6)), Some((2, 1)));
        assert_eq!(plan.locate(&s, NodeId::new(d, 7)), Some((2, 2)));
    }

    #[test]
    fn attribute_nodes_promote_owner() {
        let mut s = Store::new();
        let d = fixture(&mut s);
        let attr = NodeId::new(d, 3);
        let plan = FragmentPlan::new(&s, &[attr]);
        assert_eq!(plan.roots, vec![(d, 2)], "owner element shipped");
        assert_eq!(plan.locate(&s, attr), Some((1, 1)), "owner's nodeid");
    }

    #[test]
    fn document_node_fragment_uses_nodeid_zero() {
        let mut s = Store::new();
        let d = fixture(&mut s);
        let plan = FragmentPlan::new(&s, &[NodeId::new(d, 0)]);
        assert_eq!(plan.locate(&s, NodeId::new(d, 0)), Some((1, 0)));
        assert_eq!(plan.locate(&s, NodeId::new(d, 1)), Some((1, 1)));
    }

    #[test]
    fn rel_path_roundtrip() {
        for text in [
            "child::a/attribute::id",
            "descendant-or-self::text()",
            "parent::a",
            "root()/child::*",
            "id()/child::name",
            "self::node()",
        ] {
            let p = parse_rel_path(text).unwrap();
            let back = rel_path_text(&p);
            assert_eq!(parse_rel_path(&back).unwrap(), p, "{text}");
        }
        assert!(parse_rel_path("bogus").is_none());
    }

    #[test]
    fn rel_path_evaluation() {
        let mut s = Store::new();
        let d = fixture(&mut s);
        let ctx = [NodeId::new(d, 2)];
        let p = parse_rel_path("child::c").unwrap();
        assert_eq!(eval_rel_paths(&s, &ctx, &[p]), vec![NodeId::new(d, 4)]);
        let p = parse_rel_path("parent::a").unwrap();
        assert_eq!(eval_rel_paths(&s, &ctx, &[p]), vec![NodeId::new(d, 1)]);
        let p = parse_rel_path("root()").unwrap();
        assert_eq!(eval_rel_paths(&s, &ctx, &[p]), vec![NodeId::new(d, 0)]);
        let p = parse_rel_path("id()").unwrap();
        assert_eq!(eval_rel_paths(&s, &ctx, &[p]), vec![NodeId::new(d, 2)]);
    }

    #[test]
    fn multiple_paths_union_in_document_order() {
        let mut s = Store::new();
        let d = fixture(&mut s);
        let ctx = [NodeId::new(d, 1)];
        let paths = [
            parse_rel_path("child::d").unwrap(),
            parse_rel_path("child::b").unwrap(),
        ];
        assert_eq!(
            eval_rel_paths(&s, &ctx, &paths),
            vec![NodeId::new(d, 2), NodeId::new(d, 6)]
        );
    }
}
