//! Overload-robust concurrent execution: admission control, weighted fair
//! queuing and deadline propagation for multi-tenant workloads.
//!
//! The federation executes *one query* well — scatter-gather, failover,
//! plan caching. This module adds the coordinator-side concurrency layer
//! that arbitrates *many concurrent clients* over those shared peers, the
//! gap the DXQ network specification calls out: a scheduler that degrades
//! gracefully instead of collapsing when offered load exceeds capacity.
//!
//! # Execution model
//!
//! The engine is a **discrete-event simulation on the simulated clock**,
//! exactly like the network cost model: tenants fire queries with seeded
//! (`xqd-prng`) Poisson arrivals, `workers` executor slots bound the
//! concurrency, and cross-query interleaving is decided by deterministic
//! event order — so an entire multi-tenant workload replays bit-for-bit,
//! counters included, which is what lets the chaos suite pin replay
//! determinism *under contention*. Every admitted query is still executed
//! **for real** against the federation (sequentially, in dispatch order;
//! within a query the scatter threads fan out as usual), and its result is
//! compared against the fault-free serial baseline — the "completed
//! bit-identically or typed error" invariant is checked, not assumed.
//! A query's *service time* on the simulated clock is its run's overlapped
//! network bill plus a fixed deterministic CPU charge
//! ([`WorkloadConfig::service_overhead`]), keeping the schedule independent
//! of host wall-clock noise.
//!
//! # The scheduler
//!
//! * **Admission control** — each tenant has a bounded run queue
//!   ([`WorkloadConfig::queue_depth`]). An arrival that finds its queue
//!   full is shed immediately with a typed [`XrpcError::Overloaded`]
//!   carrying an honest `retry_after_ms` estimate (time until a slot and
//!   queue space free up). Nothing is dispatched for a shed query, so past
//!   saturation the goodput curve flattens instead of collapsing.
//! * **Weighted fair queuing** — queued queries carry start/finish tags in
//!   virtual time (start-time fair queuing with unit cost per query,
//!   scaled by the tenant's weight); dispatch picks the smallest finish
//!   tag, so one flooding tenant can delay the others by at most its fair
//!   share. [`WorkloadConfig::fair`]` = false` degrades to a global FIFO,
//!   which the saturation suite uses to measure the protection WFQ buys.
//! * **Deadline propagation** — every query carries
//!   `arrival + `[`WorkloadConfig::deadline`]. At dispatch time, a query
//!   that can no longer finish inside its deadline (dispatch time plus its
//!   template's baseline service estimate) is cancelled with a typed
//!   timeout *before* it consumes a worker slot — queued work that already
//!   missed its deadline never steals capacity from work that can still
//!   meet one.

use std::collections::HashMap;
use std::time::Duration;

use xqd_core::Strategy;
use xqd_prng::Rng;
use xqd_xquery::value::{EvalError, EvalResult};

use crate::exec::Federation;
use crate::net::{FaultPlan, Metrics, XrpcError};
use crate::trace::{SpanBuilder, Trace, Tracer, ROOT_SPAN};

/// One simulated tenant: a name, a fair-queuing weight, an offered arrival
/// rate and the query templates its arrivals cycle through.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub name: String,
    /// Weighted-fair-queuing weight (`0` is treated as `1`). A tenant with
    /// weight 2 is entitled to twice the dispatch share of a weight-1
    /// tenant while both are backlogged.
    pub weight: u32,
    /// Offered load in queries per second of simulated time.
    pub offered_qps: f64,
    /// Query templates; arrival `n` of this tenant runs template
    /// `n % queries.len()`.
    pub queries: Vec<String>,
}

impl TenantSpec {
    pub fn new(name: &str, weight: u32, offered_qps: f64, queries: Vec<String>) -> Self {
        TenantSpec { name: name.to_string(), weight, offered_qps, queries }
    }
}

/// Scheduler and workload-shape knobs for one engine run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    pub tenants: Vec<TenantSpec>,
    pub strategy: Strategy,
    /// Seed of every tenant's arrival process (each tenant draws from its
    /// own stream mixed from this) and of the per-query fault-plan
    /// rotation.
    pub seed: u64,
    /// Length of the arrival window on the simulated clock. Queries
    /// arriving inside the window are still driven to completion (or a
    /// typed error) after it closes.
    pub duration: Duration,
    /// Concurrent executor slots — the capacity the run queue feeds.
    pub workers: usize,
    /// Bound of each tenant's run queue; an arrival beyond it is shed with
    /// [`XrpcError::Overloaded`].
    pub queue_depth: usize,
    /// Per-query deadline, measured from arrival on the simulated clock.
    pub deadline: Duration,
    /// Weighted fair queuing across tenants; `false` = one global FIFO
    /// (the rogue-tenant comparison mode).
    pub fair: bool,
    /// Deterministic CPU charge added to each query's simulated service
    /// time on top of its overlapped network bill.
    pub service_overhead: Duration,
}

impl WorkloadConfig {
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        WorkloadConfig {
            tenants,
            strategy: Strategy::ByProjection,
            seed: 1,
            duration: Duration::from_millis(500),
            workers: 4,
            queue_depth: 16,
            deadline: Duration::from_millis(200),
            fair: true,
            service_overhead: Duration::from_micros(500),
        }
    }

    /// Total offered load across tenants, in queries per second.
    pub fn offered_qps(&self) -> f64 {
        self.tenants.iter().map(|t| t.offered_qps).sum()
    }
}

/// How one arrival ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Ran to completion; the result was compared against the serial
    /// baseline.
    Completed,
    /// Rejected at admission with [`XrpcError::Overloaded`].
    Shed,
    /// Cancelled at dispatch because its deadline was no longer reachable.
    DeadlineCancelled,
    /// Dispatched but failed with a typed execution error (fault
    /// injection, exhausted failover ladder, …).
    Errored,
}

/// The audited fate of one arrival.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub tenant: usize,
    /// Arrival time on the simulated clock.
    pub arrival: Duration,
    /// Completion (or shed/cancel decision) time on the simulated clock.
    pub finish: Duration,
    pub kind: OutcomeKind,
    /// The typed error code for every non-completed outcome (`None` only
    /// for [`OutcomeKind::Completed`]).
    pub error_code: Option<String>,
    /// For completed queries: did the result match the fault-free serial
    /// baseline bit-for-bit?
    pub matched_baseline: bool,
}

/// Per-tenant accounting of one engine run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub name: String,
    pub arrivals: u64,
    pub completed: u64,
    pub shed: u64,
    pub deadline_cancelled: u64,
    pub errored: u64,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
}

/// Everything one engine run produced.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    pub arrivals: u64,
    pub completed: u64,
    pub shed: u64,
    pub deadline_cancelled: u64,
    pub errored: u64,
    /// Simulated time from the first arrival to the last completion.
    pub sim_duration: Duration,
    /// Completed queries per second of simulated time.
    pub goodput_qps: f64,
    /// Total offered load (echoed from the config).
    pub offered_qps: f64,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub per_tenant: Vec<TenantReport>,
    /// Every completed query matched the fault-free serial baseline.
    pub results_identical: bool,
    /// Every non-completed query carries a typed error code.
    pub all_errors_typed: bool,
    /// Execution metrics summed over every dispatched query, plus the
    /// scheduler counters (`queued`, `shed`, `deadline_cancelled`,
    /// `peak_queue_depth`).
    pub metrics: Metrics,
    /// One entry per arrival, in arrival order.
    pub outcomes: Vec<QueryOutcome>,
}

impl WorkloadReport {
    /// Accounting invariant: every arrival ended in exactly one bucket.
    pub fn fully_accounted(&self) -> bool {
        self.completed + self.shed + self.deadline_cancelled + self.errored == self.arrivals
    }

    /// The deterministic fields the replay-determinism suite compares:
    /// scheduler buckets, per-query fates and the metric counters.
    pub fn replay_signature(&self) -> (u64, u64, u64, u64, [u64; 23]) {
        (
            self.completed,
            self.shed,
            self.deadline_cancelled,
            self.errored,
            self.metrics.counters(),
        )
    }
}

/// SplitMix-style mixing for per-tenant arrival streams and per-query
/// fault-plan rotation.
fn mix_seed(seed: u64, salt: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .rotate_left(17)
}

/// Exponential inter-arrival gap for a Poisson process of rate `qps`.
fn exp_gap(rng: &mut Rng, qps: f64) -> Duration {
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let secs = -(1.0 - u).ln() / qps;
    Duration::from_secs_f64(secs.clamp(0.0, 3600.0))
}

/// Percentile over a **sorted** latency list (nearest-rank on `n-1`).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One queued (or about-to-be-dispatched) query.
struct Job {
    seq: u64,
    tenant: usize,
    /// Index into the deduplicated template table.
    template: usize,
    arrival: Duration,
    deadline: Duration,
    /// WFQ start/finish tags in virtual time (unit cost over weight).
    start_tag: u128,
    finish_tag: u128,
}

/// Virtual-time unit of one query (scaled so integer division by small
/// weights keeps precision).
const WFQ_UNIT: u128 = 1 << 20;

/// The multi-tenant workload engine. See the module docs for the model.
pub struct WorkloadEngine;

impl WorkloadEngine {
    /// Runs the configured workload against `fed` and returns the audited
    /// report. The federation's exec options (including any fault plan)
    /// are restored afterwards.
    pub fn run(fed: &mut Federation, config: &WorkloadConfig) -> EvalResult<WorkloadReport> {
        let saved = fed.exec_options();
        let result = Self::run_inner(fed, config, saved.fault, None);
        fed.set_exec_options(saved);
        result
    }

    /// Like [`WorkloadEngine::run`], but also records a scheduler trace on
    /// the simulated clock: queue residency (`sched.queued`), slot
    /// occupancy (`sched.run`), admission rejections (`sched.shed`) and
    /// dispatch-time deadline cancellations (`sched.cancelled`). Spans are
    /// submitted in event-loop order and the trace id is drawn from the
    /// seeded PRNG, so a replay from the same config emits byte-identical
    /// trace files.
    pub fn run_traced(
        fed: &mut Federation,
        config: &WorkloadConfig,
    ) -> EvalResult<(WorkloadReport, Trace)> {
        let saved = fed.exec_options();
        let trace_id = Rng::seed_from_u64(mix_seed(config.seed, 0)).next_u64();
        let tracer = Tracer::new(trace_id, "workload", "sched");
        tracer.root_arg("tenants", config.tenants.len().to_string());
        tracer.root_arg("workers", config.workers.to_string());
        tracer.root_arg("fair", config.fair.to_string());
        let result = Self::run_inner(fed, config, saved.fault, Some(&tracer));
        fed.set_exec_options(saved);
        let report = result?;
        tracer.advance_to(report.sim_duration.as_nanos().min(u128::from(u64::MAX)) as u64);
        Ok((report, tracer.finish()))
    }

    /// Capacity estimate in queries per second: `workers` slots over the
    /// mean fault-free service time of the workload's templates. The bench
    /// sweep positions its offered-load points relative to this.
    pub fn capacity_qps(fed: &mut Federation, config: &WorkloadConfig) -> EvalResult<f64> {
        let saved = fed.exec_options();
        let baselines = Self::baselines(fed, config);
        fed.set_exec_options(saved);
        let baselines = baselines?;
        let mean: f64 = baselines.values().map(|(_, s)| s.as_secs_f64()).sum::<f64>()
            / baselines.len().max(1) as f64;
        if mean <= 0.0 {
            return Ok(f64::INFINITY);
        }
        Ok(config.workers as f64 / mean)
    }

    /// Fault-free serial baseline per distinct template: canonical result
    /// plus the deterministic service estimate.
    fn baselines(
        fed: &mut Federation,
        config: &WorkloadConfig,
    ) -> EvalResult<HashMap<String, (Vec<String>, Duration)>> {
        let mut options = fed.exec_options();
        options.fault = None;
        fed.set_exec_options(options);
        let mut baselines = HashMap::new();
        for tenant in &config.tenants {
            for query in &tenant.queries {
                if baselines.contains_key(query) {
                    continue;
                }
                let out = fed.run(query, config.strategy).map_err(|e| {
                    EvalError::new(format!("workload baseline failed for {query:?}: {e}"))
                })?;
                let service = out.metrics.network_overlapped + config.service_overhead;
                baselines.insert(query.clone(), (out.result, service));
            }
        }
        Ok(baselines)
    }

    fn run_inner(
        fed: &mut Federation,
        config: &WorkloadConfig,
        fault: Option<FaultPlan>,
        tracer: Option<&Tracer>,
    ) -> EvalResult<WorkloadReport> {
        let ns = |d: Duration| d.as_nanos().min(u128::from(u64::MAX)) as u64;
        if config.tenants.is_empty() || config.workers == 0 {
            return Err(EvalError::new(
                "workload needs at least one tenant and one worker".to_string(),
            ));
        }
        for t in &config.tenants {
            if t.queries.is_empty() {
                return Err(EvalError::new(format!("tenant {} has no queries", t.name)));
            }
        }

        let baselines = Self::baselines(fed, config)?;
        // intern templates so jobs carry an index, not a string
        let mut templates: Vec<String> = Vec::new();
        let mut template_idx: HashMap<&str, usize> = HashMap::new();
        for tenant in &config.tenants {
            for q in &tenant.queries {
                if !template_idx.contains_key(q.as_str()) {
                    template_idx.insert(q.as_str(), templates.len());
                    templates.push(q.clone());
                }
            }
        }
        let estimates: Vec<Duration> =
            templates.iter().map(|q| baselines[q].1).collect();
        let mean_service = {
            let sum: Duration = estimates.iter().sum();
            sum / estimates.len().max(1) as u32
        };

        // ---- seeded arrival processes, merged into one deterministic
        // ---- timeline (ties broken by tenant order, then sequence)
        struct Arrival {
            time: Duration,
            tenant: usize,
            template: usize,
        }
        let mut arrivals: Vec<Arrival> = Vec::new();
        for (ti, tenant) in config.tenants.iter().enumerate() {
            if tenant.offered_qps <= 0.0 {
                continue;
            }
            let mut rng = Rng::seed_from_u64(mix_seed(config.seed, ti as u64 + 1));
            let mut t = Duration::ZERO;
            let mut n = 0usize;
            loop {
                t += exp_gap(&mut rng, tenant.offered_qps);
                if t >= config.duration {
                    break;
                }
                arrivals.push(Arrival {
                    time: t,
                    tenant: ti,
                    template: template_idx[tenant.queries[n % tenant.queries.len()].as_str()],
                });
                n += 1;
            }
        }
        arrivals.sort_by_key(|a| (a.time, a.tenant));

        // ---- scheduler state ----
        let tenants_n = config.tenants.len();
        let mut workers: Vec<Duration> = vec![Duration::ZERO; config.workers];
        let mut pending: Vec<Job> = Vec::new();
        let mut tenant_queued: Vec<usize> = vec![0; tenants_n];
        let mut tenant_finish_tag: Vec<u128> = vec![0; tenants_n];
        let mut virtual_time: u128 = 0;
        let mut peak_depth: u64 = 0;

        let mut agg = Metrics::default();
        let mut outcomes: Vec<(u64, QueryOutcome)> = Vec::new();
        let mut latencies: Vec<Duration> = Vec::new();
        let mut tenant_lat: Vec<Vec<Duration>> = vec![Vec::new(); tenants_n];
        let mut sim_end = Duration::ZERO;
        let mut results_identical = true;
        let mut all_errors_typed = true;

        let earliest = |workers: &[Duration]| -> (usize, Duration) {
            let mut wi = 0;
            for (i, w) in workers.iter().enumerate() {
                if *w < workers[wi] {
                    wi = i;
                }
            }
            (wi, workers[wi])
        };

        // dispatch one job for real; returns (finish time, outcome row)
        let execute = |fed: &mut Federation,
                           job: &Job,
                           start: Duration,
                           agg: &mut Metrics,
                           results_identical: &mut bool,
                           all_errors_typed: &mut bool|
         -> (Duration, QueryOutcome) {
            // rotate the fault seed per query so faults vary across the
            // workload while each query's schedule stays a pure function
            // of (workload seed, job sequence)
            if let Some(plan) = fault {
                fed.set_fault_plan(Some(FaultPlan {
                    seed: mix_seed(plan.seed, job.seq + 1),
                    ..plan
                }));
            }
            let query = &templates[job.template];
            let run = fed.run(query, config.strategy);
            match run {
                Ok(out) => {
                    let service = out.metrics.network_overlapped + config.service_overhead;
                    let finish = start + service;
                    let matched = out.result == baselines[query].0;
                    if !matched {
                        *results_identical = false;
                    }
                    agg.add(&out.metrics);
                    (
                        finish,
                        QueryOutcome {
                            tenant: job.tenant,
                            arrival: job.arrival,
                            finish,
                            kind: OutcomeKind::Completed,
                            error_code: None,
                            matched_baseline: matched,
                        },
                    )
                }
                Err(e) => {
                    // the failed run still consumed the slot for its chain
                    let partial = fed.metrics();
                    let service = partial.network_overlapped + config.service_overhead;
                    let finish = start + service;
                    if e.code.is_none() {
                        *all_errors_typed = false;
                    }
                    agg.add(&partial);
                    (
                        finish,
                        QueryOutcome {
                            tenant: job.tenant,
                            arrival: job.arrival,
                            finish,
                            kind: OutcomeKind::Errored,
                            error_code: e.code.clone(),
                            matched_baseline: false,
                        },
                    )
                }
            }
        };

        // picks the next queued job: smallest WFQ finish tag (fair) or
        // smallest sequence number (global FIFO)
        let pick = |pending: &[Job], fair: bool| -> usize {
            let mut best = 0;
            for (i, job) in pending.iter().enumerate() {
                let better = if fair {
                    (job.finish_tag, job.seq) < (pending[best].finish_tag, pending[best].seq)
                } else {
                    job.seq < pending[best].seq
                };
                if better {
                    best = i;
                }
            }
            best
        };

        // drains the run queue onto workers that free up to `until`
        macro_rules! drain {
            ($until:expr) => {
                while !pending.is_empty() {
                    let (wi, free) = earliest(&workers);
                    if free > $until {
                        break;
                    }
                    let ji = pick(&pending, config.fair);
                    let job = pending.remove(ji);
                    tenant_queued[job.tenant] -= 1;
                    virtual_time = virtual_time.max(job.start_tag);
                    let start = free.max(job.arrival);
                    // deadline propagation: cancel before consuming the
                    // slot when the deadline is no longer reachable
                    if start + estimates[job.template] > job.deadline {
                        agg.deadline_cancelled += 1;
                        sim_end = sim_end.max(start);
                        if let Some(t) = tracer {
                            t.submit(
                                ns(job.arrival),
                                ROOT_SPAN,
                                SpanBuilder::new("sched.queued", "sched")
                                    .lasting(start.saturating_sub(job.arrival))
                                    .arg("tenant", config.tenants[job.tenant].name.as_str())
                                    .arg("seq", job.seq.to_string()),
                            );
                            t.submit(
                                ns(start),
                                ROOT_SPAN,
                                SpanBuilder::new("sched.cancelled", "sched")
                                    .arg("tenant", config.tenants[job.tenant].name.as_str())
                                    .arg("seq", job.seq.to_string())
                                    .arg("error", "xrpc:timeout"),
                            );
                        }
                        outcomes.push((
                            job.seq,
                            QueryOutcome {
                                tenant: job.tenant,
                                arrival: job.arrival,
                                finish: start,
                                kind: OutcomeKind::DeadlineCancelled,
                                error_code: Some("xrpc:timeout".to_string()),
                                matched_baseline: false,
                            },
                        ));
                        continue;
                    }
                    let (finish, row) = execute(
                        fed,
                        &job,
                        start,
                        &mut agg,
                        &mut results_identical,
                        &mut all_errors_typed,
                    );
                    workers[wi] = finish;
                    sim_end = sim_end.max(finish);
                    if row.kind == OutcomeKind::Completed {
                        let lat = finish.saturating_sub(job.arrival);
                        latencies.push(lat);
                        tenant_lat[job.tenant].push(lat);
                    }
                    if let Some(t) = tracer {
                        t.submit(
                            ns(job.arrival),
                            ROOT_SPAN,
                            SpanBuilder::new("sched.queued", "sched")
                                .lasting(start.saturating_sub(job.arrival))
                                .arg("tenant", config.tenants[job.tenant].name.as_str())
                                .arg("seq", job.seq.to_string()),
                        );
                        t.submit(
                            ns(start),
                            ROOT_SPAN,
                            SpanBuilder::new("sched.run", "sched")
                                .lasting(finish.saturating_sub(start))
                                .arg("tenant", config.tenants[job.tenant].name.as_str())
                                .arg("seq", job.seq.to_string())
                                .arg("worker", wi.to_string())
                                .arg(
                                    "outcome",
                                    row.error_code.clone().unwrap_or_else(|| "completed".into()),
                                ),
                        );
                    }
                    outcomes.push((job.seq, row));
                }
            };
        }

        // ---- the event loop: admit each arrival in timeline order ----
        for (seq, a) in arrivals.iter().enumerate() {
            let seq = seq as u64;
            drain!(a.time);
            let deadline = a.time + config.deadline;
            let (wi, free) = earliest(&workers);
            if pending.is_empty() && free <= a.time {
                // a slot is idle and nothing is ahead: dispatch immediately
                let job = Job {
                    seq,
                    tenant: a.tenant,
                    template: a.template,
                    arrival: a.time,
                    deadline,
                    start_tag: 0,
                    finish_tag: 0,
                };
                if a.time + estimates[a.template] > deadline {
                    agg.deadline_cancelled += 1;
                    sim_end = sim_end.max(a.time);
                    if let Some(t) = tracer {
                        t.submit(
                            ns(a.time),
                            ROOT_SPAN,
                            SpanBuilder::new("sched.cancelled", "sched")
                                .arg("tenant", config.tenants[a.tenant].name.as_str())
                                .arg("seq", seq.to_string())
                                .arg("error", "xrpc:timeout"),
                        );
                    }
                    outcomes.push((
                        seq,
                        QueryOutcome {
                            tenant: a.tenant,
                            arrival: a.time,
                            finish: a.time,
                            kind: OutcomeKind::DeadlineCancelled,
                            error_code: Some("xrpc:timeout".to_string()),
                            matched_baseline: false,
                        },
                    ));
                    continue;
                }
                let (finish, row) = execute(
                    fed,
                    &job,
                    a.time,
                    &mut agg,
                    &mut results_identical,
                    &mut all_errors_typed,
                );
                workers[wi] = finish;
                sim_end = sim_end.max(finish);
                if row.kind == OutcomeKind::Completed {
                    let lat = finish.saturating_sub(a.time);
                    latencies.push(lat);
                    tenant_lat[a.tenant].push(lat);
                }
                if let Some(t) = tracer {
                    t.submit(
                        ns(a.time),
                        ROOT_SPAN,
                        SpanBuilder::new("sched.run", "sched")
                            .lasting(finish.saturating_sub(a.time))
                            .arg("tenant", config.tenants[a.tenant].name.as_str())
                            .arg("seq", seq.to_string())
                            .arg("worker", wi.to_string())
                            .arg(
                                "outcome",
                                row.error_code.clone().unwrap_or_else(|| "completed".into()),
                            ),
                    );
                }
                outcomes.push((seq, row));
                continue;
            }
            if tenant_queued[a.tenant] >= config.queue_depth {
                // admission control: the tenant's bounded run queue is
                // full — shed with an honest resubmission estimate (time
                // until a slot frees plus the backlog's drain time)
                agg.shed += 1;
                let slot_wait = free.saturating_sub(a.time);
                let backlog = mean_service.mul_f64(
                    (pending.len() + 1) as f64 / config.workers as f64,
                );
                let hint = (slot_wait + backlog).max(Duration::from_millis(1));
                let err = XrpcError::Overloaded {
                    retry_after_ms: hint.as_millis().min(u128::from(u64::MAX)) as u64,
                };
                sim_end = sim_end.max(a.time);
                if let Some(t) = tracer {
                    t.submit(
                        ns(a.time),
                        ROOT_SPAN,
                        SpanBuilder::new("sched.shed", "sched")
                            .arg("tenant", config.tenants[a.tenant].name.as_str())
                            .arg("seq", seq.to_string())
                            .arg("retry_after_ms", hint.as_millis().to_string()),
                    );
                }
                outcomes.push((
                    seq,
                    QueryOutcome {
                        tenant: a.tenant,
                        arrival: a.time,
                        finish: a.time,
                        kind: OutcomeKind::Shed,
                        error_code: Some(err.code()),
                        matched_baseline: false,
                    },
                ));
                continue;
            }
            // enqueue under WFQ virtual time
            agg.queued += 1;
            let weight = u128::from(config.tenants[a.tenant].weight.max(1));
            let start_tag = virtual_time.max(tenant_finish_tag[a.tenant]);
            let finish_tag = start_tag + WFQ_UNIT / weight;
            tenant_finish_tag[a.tenant] = finish_tag;
            tenant_queued[a.tenant] += 1;
            pending.push(Job {
                seq,
                tenant: a.tenant,
                template: a.template,
                arrival: a.time,
                deadline,
                start_tag,
                finish_tag,
            });
            peak_depth = peak_depth.max(pending.len() as u64);
        }
        // arrival window closed: drive the backlog to completion
        drain!(Duration::MAX);

        // ---- the report ----
        outcomes.sort_by_key(|(seq, _)| *seq);
        let outcomes: Vec<QueryOutcome> = outcomes.into_iter().map(|(_, o)| o).collect();
        let arrivals_n = outcomes.len() as u64;
        let mut completed = 0u64;
        let mut errored = 0u64;
        for o in &outcomes {
            match o.kind {
                OutcomeKind::Completed => completed += 1,
                OutcomeKind::Errored => errored += 1,
                _ => {}
            }
        }
        agg.peak_queue_depth = peak_depth;
        latencies.sort();
        let sim_duration = sim_end.max(config.duration);
        let goodput_qps = completed as f64 / sim_duration.as_secs_f64().max(1e-9);
        let per_tenant = config
            .tenants
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                let mut lats = tenant_lat[ti].clone();
                lats.sort();
                let mut row = TenantReport {
                    name: t.name.clone(),
                    arrivals: 0,
                    completed: 0,
                    shed: 0,
                    deadline_cancelled: 0,
                    errored: 0,
                    p50: percentile(&lats, 0.50),
                    p95: percentile(&lats, 0.95),
                    p99: percentile(&lats, 0.99),
                };
                for o in outcomes.iter().filter(|o| o.tenant == ti) {
                    row.arrivals += 1;
                    match o.kind {
                        OutcomeKind::Completed => row.completed += 1,
                        OutcomeKind::Shed => row.shed += 1,
                        OutcomeKind::DeadlineCancelled => row.deadline_cancelled += 1,
                        OutcomeKind::Errored => row.errored += 1,
                    }
                }
                row
            })
            .collect();
        Ok(WorkloadReport {
            arrivals: arrivals_n,
            completed,
            shed: agg.shed,
            deadline_cancelled: agg.deadline_cancelled,
            errored,
            sim_duration,
            goodput_qps,
            offered_qps: config.offered_qps(),
            p50: percentile(&latencies, 0.50),
            p95: percentile(&latencies, 0.95),
            p99: percentile(&latencies, 0.99),
            per_tenant,
            results_identical,
            all_errors_typed,
            metrics: agg,
            outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkModel;

    fn federation() -> Federation {
        let mut fed = Federation::new(NetworkModel::lan());
        fed.load_document(
            "emp",
            "people.xml",
            "<people><p><name>ann</name></p><p><name>bob</name></p></people>",
        )
        .unwrap();
        fed.load_document(
            "hr",
            "depts.xml",
            "<depts><dept name=\"sales\"/><dept name=\"dev\"/></depts>",
        )
        .unwrap();
        fed
    }

    fn tenant(name: &str, weight: u32, qps: f64) -> TenantSpec {
        TenantSpec::new(
            name,
            weight,
            qps,
            vec![
                "count(doc(\"xrpc://emp/people.xml\")//name)".to_string(),
                "doc(\"xrpc://hr/depts.xml\")//dept/@name".to_string(),
            ],
        )
    }

    #[test]
    fn light_load_completes_everything_bit_identically() {
        let mut fed = federation();
        let mut config = WorkloadConfig::new(vec![tenant("a", 1, 40.0), tenant("b", 1, 40.0)]);
        config.duration = Duration::from_millis(200);
        let report = WorkloadEngine::run(&mut fed, &config).unwrap();
        assert!(report.arrivals > 0);
        assert!(report.fully_accounted(), "{report:?}");
        assert_eq!(report.shed, 0);
        assert_eq!(report.errored, 0);
        assert!(report.results_identical);
        assert!(report.all_errors_typed);
    }

    #[test]
    fn overload_sheds_with_typed_overloaded_and_flat_goodput() {
        let mut fed = federation();
        let capacity = {
            let config = WorkloadConfig::new(vec![tenant("a", 1, 1.0)]);
            WorkloadEngine::capacity_qps(&mut fed, &config).unwrap()
        };
        let mut config =
            WorkloadConfig::new(vec![tenant("a", 1, capacity * 2.0)]);
        config.duration = Duration::from_millis(150);
        config.queue_depth = 4;
        let report = WorkloadEngine::run(&mut fed, &config).unwrap();
        assert!(report.shed > 0, "2x load must trip admission control: {report:?}");
        assert!(report.fully_accounted());
        // every shed arrival carries the typed overload code
        assert!(report
            .outcomes
            .iter()
            .filter(|o| o.kind == OutcomeKind::Shed)
            .all(|o| o.error_code.as_deref() == Some("xrpc:overloaded")));
        assert!(report.results_identical);
    }

    #[test]
    fn workload_replays_bit_identically() {
        let run = || {
            let mut fed = federation();
            let mut config =
                WorkloadConfig::new(vec![tenant("a", 2, 150.0), tenant("b", 1, 300.0)]);
            config.duration = Duration::from_millis(120);
            config.queue_depth = 6;
            WorkloadEngine::run(&mut fed, &config).unwrap()
        };
        let (r1, r2) = (run(), run());
        assert_eq!(r1.replay_signature(), r2.replay_signature());
        assert_eq!(r1.p99, r2.p99);
        assert_eq!(r1.outcomes.len(), r2.outcomes.len());
        for (a, b) in r1.outcomes.iter().zip(&r2.outcomes) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.finish, b.finish);
        }
    }

    #[test]
    fn tight_deadlines_cancel_before_consuming_slots() {
        let mut fed = federation();
        let mut config = WorkloadConfig::new(vec![tenant("a", 1, 4000.0)]);
        config.duration = Duration::from_millis(50);
        config.workers = 1;
        config.deadline = Duration::from_micros(1500);
        config.queue_depth = 32;
        let report = WorkloadEngine::run(&mut fed, &config).unwrap();
        assert!(report.deadline_cancelled > 0, "{report:?}");
        assert!(report.fully_accounted());
        // cancellations carry the typed timeout code
        assert!(report
            .outcomes
            .iter()
            .filter(|o| o.kind == OutcomeKind::DeadlineCancelled)
            .all(|o| o.error_code.as_deref() == Some("xrpc:timeout")));
    }
}
