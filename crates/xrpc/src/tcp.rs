//! Real sockets under the [`Transport`] seam.
//!
//! [`TcpTransport`] dials peer daemons over localhost (or any reachable
//! address) and speaks the length-prefixed envelope framing of
//! [`crate::transport`]; [`SocketFederation`] is the coordinator that
//! drives a **multi-process** federation through it — same decomposition
//! front end, same replica failover ladder discipline, same health
//! scoreboard as the simulated [`crate::exec::Federation`], so the same
//! query returns bit-identical canonical results whichever side of the
//! seam executes it.
//!
//! Differences from the simulated side are deliberate and small:
//!
//! * time is **wall clock** — retry backoff really sleeps, deadlines
//!   really expire, and the scoreboard advances by observed elapsed time;
//! * there is no graceful-degradation rung: a coordinator that cannot
//!   reach any replica has no local copy to fall back on, so the ladder
//!   ends in a typed error instead (the crash harness asserts exactly
//!   this "typed error or identical result" dichotomy);
//! * connections are pooled per peer and rebuilt transparently — a stale
//!   pooled connection (server restarted, drained, or killed) costs one
//!   reconnect, and a refused connection surfaces as a retryable
//!   [`XrpcError::PeerBusy`] feeding the breaker like any other failure.

use std::collections::{BTreeMap, HashMap};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use xqd_core::replicas::ReplicaCatalog;
use xqd_core::Strategy;
use xqd_xml::Store;
use xqd_xquery::eval::{DocResolver, Evaluator, RemoteHandler, StaticContext};
use xqd_xquery::value::{EvalError, EvalResult, Sequence};
use xqd_xquery::{ast::ExecProjection, parse_query};

use crate::exec::{admitted_candidates, canonical_item, ExecOptions, RetryPolicy};
use crate::health::{BreakerPolicy, Observation, Scoreboard};
use crate::message::{
    decode_doc_response, decode_response, encode_doc_request, encode_request, WireSemantics,
};
use crate::net::XrpcError;
use crate::transport::{call_with_retry, read_frame, write_frame, Transport, MAX_FRAME_LEN};

/// How long a fresh connection attempt may take before it counts as a
/// failed attempt (distinct from the per-exchange budget: connecting to a
/// dead localhost port fails in microseconds, but a blackholed address
/// must not eat the whole deadline).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Retry hint attached to a refused connection: the daemon is restarting
/// or its accept queue is momentarily full — both clear quickly.
const RECONNECT_HINT: Duration = Duration::from_millis(25);

/// A client-side TCP transport: one pooled connection per peer, framed
/// envelope exchanges with per-attempt deadlines.
pub struct TcpTransport {
    addrs: Mutex<BTreeMap<String, String>>,
    pool: Mutex<HashMap<String, TcpStream>>,
    max_frame_len: usize,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl TcpTransport {
    pub fn new() -> Self {
        TcpTransport {
            addrs: Mutex::new(BTreeMap::new()),
            pool: Mutex::new(HashMap::new()),
            max_frame_len: MAX_FRAME_LEN,
        }
    }

    /// Registers (or replaces) the address `peer` answers on.
    pub fn register(&self, peer: &str, addr: &str) {
        self.addrs.lock().unwrap().insert(peer.to_string(), addr.to_string());
        // a re-registered peer may have moved: drop any pooled connection
        self.pool.lock().unwrap().remove(peer);
    }

    /// The registered address of `peer`, if any.
    pub fn address_of(&self, peer: &str) -> Option<String> {
        self.addrs.lock().unwrap().get(peer).cloned()
    }

    fn connect(&self, peer: &str) -> Result<TcpStream, XrpcError> {
        let Some(addr) = self.address_of(peer) else {
            return Err(XrpcError::UnknownPeer { peer: peer.to_string() });
        };
        let mut last: Option<std::io::Error> = None;
        let resolved = addr.to_socket_addrs().map_err(|e| XrpcError::TransportCorrupt {
            peer: peer.to_string(),
            detail: format!("unresolvable address {addr}: {e}"),
        })?;
        for sa in resolved {
            match TcpStream::connect_timeout(&sa, CONNECT_TIMEOUT) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    return Ok(s);
                }
                Err(e) => last = Some(e),
            }
        }
        // refused/unreachable is retryable: the daemon may be restarting,
        // and the breaker decides when to stop believing that
        Err(XrpcError::PeerBusy {
            peer: peer.to_string(),
            detail: match last {
                Some(e) => format!("connect {addr}: {e}"),
                None => format!("address {addr} resolved to nothing"),
            },
            retry_after: RECONNECT_HINT,
        })
    }

    fn pooled(&self, peer: &str) -> Option<TcpStream> {
        self.pool.lock().unwrap().remove(peer)
    }

    fn set_deadlines(stream: &TcpStream, remaining: Duration) {
        // zero is "no timeout" to the socket API — clamp to 1ms instead
        let t = remaining.max(Duration::from_millis(1));
        let _ = stream.set_write_timeout(Some(t));
        let _ = stream.set_read_timeout(Some(t));
    }
}

impl Transport for TcpTransport {
    fn exchange(&self, peer: &str, request: &str, budget: Duration) -> Result<String, XrpcError> {
        let started = Instant::now();
        let mut stream = match self.pooled(peer) {
            Some(s) => s,
            None => self.connect(peer)?,
        };
        TcpTransport::set_deadlines(&stream, budget);
        if let Err(first) = write_frame(&mut stream, request) {
            // the pooled connection went stale (drained / restarted peer):
            // one transparent reconnect, then the error is real
            stream = self.connect(peer)?;
            let remaining = budget.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                return Err(XrpcError::Timeout { peer: peer.to_string(), deadline: budget });
            }
            TcpTransport::set_deadlines(&stream, remaining);
            write_frame(&mut stream, request).map_err(|e| {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    XrpcError::Timeout { peer: peer.to_string(), deadline: budget }
                } else {
                    XrpcError::TransportCorrupt {
                        peer: peer.to_string(),
                        detail: format!("send failed twice ({first}; then {e})"),
                    }
                }
            })?;
        }
        let remaining = budget.saturating_sub(started.elapsed());
        TcpTransport::set_deadlines(&stream, remaining);
        match read_frame(&mut stream, self.max_frame_len) {
            Ok(Some(reply)) => {
                // healthy exchange: the connection goes back in the pool
                self.pool.lock().unwrap().insert(peer.to_string(), stream);
                Ok(reply)
            }
            Ok(None) => Err(XrpcError::TransportCorrupt {
                peer: peer.to_string(),
                detail: "connection closed before a reply frame".to_string(),
            }),
            Err(fe) => Err(fe.into_xrpc(peer, budget)),
        }
    }
}

/// Per-run outcome of a socket-mode query: canonical result items (the
/// same serialization [`crate::exec::Federation`] produces, enabling
/// byte-level diffs across the seam) plus availability counters.
#[derive(Debug)]
pub struct SocketRunOutcome {
    pub result: Vec<String>,
    pub remote_calls: u64,
    /// Whole documents data-shipped from a serving host.
    pub doc_fetches: u64,
    pub failovers: u64,
    pub retries: u64,
}

struct SockCore {
    transport: Arc<dyn Transport>,
    catalog: Mutex<ReplicaCatalog>,
    options: Mutex<ExecOptions>,
    static_ctx: Mutex<StaticContext>,
    wire: Mutex<WireSemantics>,
    /// Wall-clock health scoreboard: persists across runs so a killed peer
    /// stays distrusted (and its breaker open) from one query to the next.
    board: Mutex<Scoreboard>,
    /// Instant of the board's last advance — observations advance it by
    /// genuinely elapsed time.
    board_clock: Mutex<Instant>,
    remote_calls: AtomicU64,
    doc_fetches: AtomicU64,
    failovers: AtomicU64,
    retries: AtomicU64,
    /// Jitter stream seed, bumped per ladder so same-peer retries across a
    /// run do not share backoff phases.
    lanes: AtomicU64,
}

impl SockCore {
    fn observe(&self, host: &str, ok: bool, failed_attempts: u32, chain: Duration, probe: bool) {
        let mut board = self.board.lock().unwrap();
        let mut last = self.board_clock.lock().unwrap();
        let now = Instant::now();
        board.advance(now.duration_since(*last));
        *last = now;
        board.observe(&Observation { peer: host.to_string(), ok, failed_attempts, chain, probe });
    }

    /// The failover ladder over every host able to stand in for `primary`
    /// (healthiest first, open breakers dropped): per rung a full
    /// [`call_with_retry`] cycle, each outcome fed to the scoreboard. No
    /// degradation rung — the socket coordinator holds no local copy to
    /// fall back on, so an exhausted ladder is a typed error.
    fn call_ladder(
        &self,
        primary: &str,
        hosts: Vec<String>,
        request: &str,
        retry: &RetryPolicy,
        seed: u64,
    ) -> Result<String, XrpcError> {
        let lane = self.lanes.fetch_add(1, Ordering::Relaxed);
        let (candidates, rejected) = {
            let board = self.board.lock().unwrap();
            admitted_candidates(&board, seed, hosts)
        };
        if candidates.is_empty() {
            return Err(match rejected {
                Some((host, cooldown)) => {
                    XrpcError::BreakerOpen { peer: host, retry_after: cooldown }
                }
                None => XrpcError::UnknownPeer { peer: primary.to_string() },
            });
        }
        let mut last_err = None;
        for (rung, (host, probe)) in candidates.into_iter().enumerate() {
            if rung > 0 {
                self.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let t0 = Instant::now();
            let out = call_with_retry(
                &*self.transport,
                &host,
                request,
                retry,
                seed ^ lane.rotate_left(17) ^ (rung as u64),
            );
            let ok = out.outcome.is_ok();
            self.retries.fetch_add(
                u64::from(out.failed_attempts.saturating_sub(u32::from(!ok))),
                Ordering::Relaxed,
            );
            self.observe(&host, ok, out.failed_attempts, t0.elapsed(), probe);
            match out.outcome {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    if !e.failover_eligible() {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("non-empty candidate list"))
    }
}

/// The resolver/handler link of the socket coordinator: remote calls go
/// through the ladder over the wire; `doc()` of a foreign URI data-ships
/// the document from any host serving it.
struct SockLink {
    core: Arc<SockCore>,
}

impl DocResolver for SockLink {
    fn resolve(&mut self, store: &mut Store, uri: &str) -> EvalResult<xqd_xml::DocId> {
        if let Some(d) = store.doc_by_uri(uri) {
            return Ok(d);
        }
        if xqd_core::uris::split_xrpc_uri(uri).is_none() {
            return Err(EvalError::new(format!("document not found: {uri}")));
        }
        let (retry, seed) = {
            let o = self.core.options.lock().unwrap();
            (o.retry, o.replica_seed)
        };
        let hosts = self.core.catalog.lock().unwrap().hosts_for(uri);
        let request = encode_doc_request(uri);
        let reply = self
            .core
            .call_ladder(uri, hosts, &request, &retry, seed)
            .map_err(EvalError::from)?;
        let xml = decode_doc_response(&reply).ok_or_else(|| {
            EvalError::from(XrpcError::TransportCorrupt {
                peer: uri.to_string(),
                detail: format!("doc reply for {uri} is not a doc envelope"),
            })
        })?;
        self.core.doc_fetches.fetch_add(1, Ordering::Relaxed);
        xqd_xml::parse_document(store, &xml, Some(uri))
            .map_err(|e| EvalError::new(format!("shipped document {uri} failed to parse: {e}")))
    }
}

impl RemoteHandler for SockLink {
    fn execute(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        params: &[(String, Sequence)],
        body: &xqd_xquery::Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Sequence> {
        let one_call = vec![params.to_vec()];
        let mut results = self.execute_bulk(local, static_ctx, peer, &one_call, body, projection)?;
        Ok(results.pop().unwrap_or_default())
    }

    fn execute_bulk(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        calls: &[Vec<(String, Sequence)>],
        body: &xqd_xquery::Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Vec<Sequence>> {
        let wire = *self.core.wire.lock().unwrap();
        let body_src = body.to_string();
        let request = encode_request(
            local,
            wire,
            static_ctx,
            &body_src,
            calls,
            projection.map(|p| p.params.as_slice()),
            projection.map(|p| &p.result),
        )?;
        self.core.remote_calls.fetch_add(calls.len() as u64, Ordering::Relaxed);
        let (retry, seed) = {
            let o = self.core.options.lock().unwrap();
            (o.retry, o.replica_seed)
        };
        let hosts = self.core.catalog.lock().unwrap().hosts_serving_peer(peer);
        let response = self
            .core
            .call_ladder(peer, hosts, &request, &retry, seed)
            .map_err(EvalError::from)?;
        let sequences = decode_response(local, &response)?;
        if sequences.len() != calls.len() {
            return Err(EvalError::new(format!(
                "response carries {} sequences for {} calls",
                sequences.len(),
                calls.len()
            )));
        }
        Ok(sequences)
    }
}

/// The socket-mode coordinator: the same decomposition front end and
/// failover discipline as the simulated [`crate::exec::Federation`],
/// executing against live peer daemons through any [`Transport`].
pub struct SocketFederation {
    core: Arc<SockCore>,
}

impl SocketFederation {
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        let options = ExecOptions::default();
        SocketFederation {
            core: Arc::new(SockCore {
                transport,
                catalog: Mutex::new(ReplicaCatalog::new()),
                options: Mutex::new(options),
                static_ctx: Mutex::new(StaticContext::default()),
                wire: Mutex::new(WireSemantics::Value),
                board: Mutex::new(Scoreboard::new(options.breaker)),
                board_clock: Mutex::new(Instant::now()),
                remote_calls: AtomicU64::new(0),
                doc_fetches: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                lanes: AtomicU64::new(0),
            }),
        }
    }

    /// A federation dialing daemons over TCP; the returned transport
    /// handle registers peer addresses.
    pub fn over_tcp() -> (Self, Arc<TcpTransport>) {
        let transport = Arc::new(TcpTransport::new());
        (SocketFederation::new(Arc::<TcpTransport>::clone(&transport)), transport)
    }

    /// Records that `host` serves a bit-identical copy of `canonical_uri`
    /// (replica placement — identical meaning to the simulated catalog).
    pub fn register_replica(&mut self, canonical_uri: &str, host: &str) {
        self.core.catalog.lock().unwrap().register(canonical_uri, host);
    }

    /// Records the transport address of `peer` in the catalog (the address
    /// book the `--connect` flag populates; the TCP transport keeps its
    /// own dial map, registered separately).
    pub fn set_peer_address(&mut self, peer: &str, addr: &str) {
        self.core.catalog.lock().unwrap().set_address(peer, addr);
    }

    pub fn set_exec_options(&mut self, options: ExecOptions) {
        *self.core.options.lock().unwrap() = options;
        let mut board = self.core.board.lock().unwrap();
        board.reset(options.breaker);
    }

    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.core.options.lock().unwrap().retry = retry;
    }

    pub fn set_static_context(&mut self, ctx: StaticContext) {
        *self.core.static_ctx.lock().unwrap() = ctx;
    }

    /// Breaker state of `peer` on the persistent wall-clock scoreboard.
    pub fn breaker_state(&self, peer: &str) -> crate::health::BreakerState {
        self.core.board.lock().unwrap().state(peer)
    }

    /// Resets the health scoreboard (keeps catalog and options).
    pub fn reset_health(&mut self) {
        let policy: BreakerPolicy = self.core.options.lock().unwrap().breaker;
        self.core.board.lock().unwrap().reset(policy);
        *self.core.board_clock.lock().unwrap() = Instant::now();
    }

    /// Parses, decomposes and executes `query` under `strategy` against
    /// the live federation. Canonical result items are directly comparable
    /// with [`crate::exec::Federation::run`] output — the equivalence the
    /// daemon tests and the crash harness assert byte for byte.
    pub fn run(&mut self, query: &str, strategy: Strategy) -> EvalResult<SocketRunOutcome> {
        let module = parse_query(query).map_err(|e| EvalError::new(format!("parse error: {e}")))?;
        let options = *self.core.options.lock().unwrap();
        let dopts =
            xqd_core::DecomposeOptions { semijoin: options.semijoin, ..Default::default() };
        let mut plan = xqd_core::decompose_with(&module, strategy, dopts)?;
        {
            let catalog = self.core.catalog.lock().unwrap();
            plan.resolve_replicas(&catalog, options.replica_seed);
        }
        *self.core.wire.lock().unwrap() = match strategy {
            Strategy::ByFragment => WireSemantics::Fragment,
            Strategy::ByProjection => WireSemantics::Projection,
            _ => WireSemantics::Value,
        };
        self.core.remote_calls.store(0, Ordering::Relaxed);
        self.core.doc_fetches.store(0, Ordering::Relaxed);
        self.core.failovers.store(0, Ordering::Relaxed);
        self.core.retries.store(0, Ordering::Relaxed);
        let static_ctx = self.core.static_ctx.lock().unwrap().clone();
        let mut local = Store::new();
        let functions: Vec<xqd_xquery::FunctionDef> = Vec::new();
        let mut link = SockLink { core: Arc::clone(&self.core) };
        let mut handler = SockLink { core: Arc::clone(&self.core) };
        let mut ev = Evaluator::new(&mut local, &functions, &mut link)
            .with_remote(&mut handler)
            .with_static_context(static_ctx)
            .with_indexes(options.use_indexes);
        let result = ev.eval(&plan.rewritten)?;
        drop(ev);
        let canonical = result.iter().map(|i| canonical_item(&local, i)).collect();
        Ok(SocketRunOutcome {
            result: canonical,
            remote_calls: self.core.remote_calls.load(Ordering::Relaxed),
            doc_fetches: self.core.doc_fetches.load(Ordering::Relaxed),
            failovers: self.core.failovers.load(Ordering::Relaxed),
            retries: self.core.retries.load(Ordering::Relaxed),
        })
    }
}
