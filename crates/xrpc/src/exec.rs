//! The distributed execution fabric: simulated peers plus the
//! [`xqd_xquery::RemoteHandler`] / [`xqd_xquery::DocResolver`]
//! implementations wiring the decomposed query to the message codecs.
//!
//! A [`Federation`] owns one [`Peer`] per `xrpc://host/…` host; `run()`
//! spins up a fresh coordinator store (the query originator), decomposes the
//! query under the chosen [`Strategy`] and evaluates it. Remote `execute
//! at` calls serialize a real request message, "transfer" it under the
//! [`NetworkModel`], shred it into the target peer's store, evaluate the
//! body there with the *same* evaluator, and ship the response back the
//! same way. `fn:doc("xrpc://…")` on the coordinator performs data
//! shipping: the remote peer serializes the whole document, bytes are
//! accounted, and the coordinator shreds and caches it.
//!
//! # Parallel scatter-gather
//!
//! The federation core is thread-safe: peers live in slots behind a
//! `Mutex`+`Condvar` (a peer is *taken* for the duration of a call, and
//! waiting replaces the old hard "busy" failure), and metrics accumulate
//! into atomics. When the evaluator detects a scatter point — independent
//! `execute at` calls aimed at distinct peers — [`FedLink::execute_scatter`]
//! encodes every request up front (byte-identical to sequential execution),
//! fans the decode→evaluate→respond pipeline out across one scoped thread
//! per peer, and gathers/decodes responses in deterministic call order.
//! Serialized network cost stays the exact per-transfer sum; the overlapped
//! cost of a round is the slowest peer's chain (see
//! [`Metrics::network_overlapped`]).
//!
//! Within one Bulk RPC the remote side can also split the decoded call list
//! across workers over cloned snapshots of the post-shred store
//! ([`ExecOptions::bulk_workers`]); snapshots share the base store's
//! document ranks, so results gathered from workers are valid node ids in
//! the base store as long as the body attaches no new documents — which a
//! syntactic safety gate guarantees before the split.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xqd_core::Strategy;
use xqd_xml::{NodeId, NodeKind, Store};
use xqd_xquery::ast::ExecProjection;
use xqd_xquery::eval::{DocResolver, Evaluator, RemoteHandler, ScatterCall, StaticContext};
use xqd_xquery::value::{EvalError, EvalResult, Item, Sequence};
use xqd_xquery::{parse_query, Expr, QueryModule};

use crate::message::{
    decode_request, decode_response, encode_request, encode_response, WireSemantics,
};
use crate::net::{Metrics, NetworkModel};

/// One simulated peer: a named document store.
#[derive(Debug)]
pub struct Peer {
    pub name: String,
    pub store: Store,
}

impl Peer {
    pub fn new(name: &str) -> Self {
        Peer { name: name.to_string(), store: Store::new() }
    }

    /// Loads a document from XML text under `doc_name`. The document is
    /// registered under its canonical `xrpc://<peer>/<doc_name>` URI so
    /// `fn:base-uri` / `fn:document-uri` agree between peer-local access and
    /// data-shipped copies at the coordinator.
    pub fn load_document(&mut self, doc_name: &str, xml: &str) -> Result<(), EvalError> {
        let uri = format!("xrpc://{}/{}", self.name, doc_name);
        xqd_xml::parse_document(&mut self.store, xml, Some(&uri))
            .map_err(|e| EvalError::new(format!("loading {doc_name}: {e}")))?;
        Ok(())
    }
}

/// Execution-mode switches (see [`Federation::set_exec_options`]).
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Fan independent calls to distinct peers out across scoped threads.
    /// Off = the same calls run in a sequential loop (identical results and
    /// byte counts; `network_overlapped` then equals `network`).
    pub parallel_scatter: bool,
    /// Workers splitting the call list of one Bulk RPC on the remote side.
    /// `1` (default) keeps remote evaluation single-threaded.
    pub bulk_workers: usize,
    /// Answer eligible axis steps from per-document name indexes (staircase
    /// join) on every evaluator in the federation — coordinator and peers.
    /// Off = arena scans; results and message bytes are bit-identical either
    /// way, which the equivalence suite asserts.
    pub use_indexes: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { parallel_scatter: true, bulk_workers: 1, use_indexes: true }
    }
}

/// How long a caller waits for a busy peer slot before reporting the peer
/// unavailable. Bounds any accidental circular-wait between scatter workers.
const PEER_WAIT: Duration = Duration::from_secs(10);

/// Metric accumulators shared across worker threads. Durations are
/// nanosecond counters; [`MetricsSink::snapshot`] converts back.
#[derive(Default)]
struct MetricsSink {
    message_bytes: AtomicU64,
    document_bytes: AtomicU64,
    transfers: AtomicU64,
    remote_calls: AtomicU64,
    scatter_rounds: AtomicU64,
    shred_ns: AtomicU64,
    serialize_ns: AtomicU64,
    remote_exec_ns: AtomicU64,
    network_ns: AtomicU64,
    network_overlapped_ns: AtomicU64,
}

fn as_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

impl MetricsSink {
    fn reset(&self) {
        for cell in [
            &self.message_bytes,
            &self.document_bytes,
            &self.transfers,
            &self.remote_calls,
            &self.scatter_rounds,
            &self.shred_ns,
            &self.serialize_ns,
            &self.remote_exec_ns,
            &self.network_ns,
            &self.network_overlapped_ns,
        ] {
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Metrics {
        Metrics {
            message_bytes: self.message_bytes.load(Ordering::Relaxed),
            document_bytes: self.document_bytes.load(Ordering::Relaxed),
            transfers: self.transfers.load(Ordering::Relaxed),
            remote_calls: self.remote_calls.load(Ordering::Relaxed),
            scatter_rounds: self.scatter_rounds.load(Ordering::Relaxed),
            shred: Duration::from_nanos(self.shred_ns.load(Ordering::Relaxed)),
            serialize: Duration::from_nanos(self.serialize_ns.load(Ordering::Relaxed)),
            remote_exec: Duration::from_nanos(self.remote_exec_ns.load(Ordering::Relaxed)),
            network: Duration::from_nanos(self.network_ns.load(Ordering::Relaxed)),
            network_overlapped: Duration::from_nanos(
                self.network_overlapped_ns.load(Ordering::Relaxed),
            ),
            total: Duration::ZERO,
        }
    }

    /// Accounts one wire transfer: exact counters plus equal serialized
    /// and overlapped time (non-scatter transfers never overlap).
    fn count_transfer(&self, wire_time: Duration) {
        self.transfers.fetch_add(1, Ordering::Relaxed);
        let ns = as_ns(wire_time);
        self.network_ns.fetch_add(ns, Ordering::Relaxed);
        self.network_overlapped_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

struct FedCore {
    /// Peer slots: `None` while a peer is taken by an executing call.
    peers: Mutex<HashMap<String, Option<Peer>>>,
    /// Signalled whenever a peer is returned to its slot.
    peers_returned: Condvar,
    model: NetworkModel,
    metrics: MetricsSink,
    wire: Mutex<WireSemantics>,
    options: Mutex<ExecOptions>,
}

impl FedCore {
    fn wire(&self) -> WireSemantics {
        *self.wire.lock().unwrap()
    }

    fn options(&self) -> ExecOptions {
        *self.options.lock().unwrap()
    }

    /// Takes `name`'s peer out of its slot, waiting (bounded) while another
    /// call holds it. An unknown peer fails immediately.
    fn take_peer(&self, name: &str) -> EvalResult<Peer> {
        let mut peers = self.peers.lock().unwrap();
        let deadline = Instant::now() + PEER_WAIT;
        loop {
            match peers.get_mut(name) {
                None => return Err(EvalError::new(format!("unknown or busy peer {name}"))),
                Some(slot) => {
                    if let Some(p) = slot.take() {
                        return Ok(p);
                    }
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(EvalError::new(format!(
                    "unknown or busy peer {name}: still busy after {PEER_WAIT:?}"
                )));
            }
            let (guard, _timeout) = self.peers_returned.wait_timeout(peers, remaining).unwrap();
            peers = guard;
        }
    }

    fn put_peer(&self, peer: Peer) {
        let mut peers = self.peers.lock().unwrap();
        peers.insert(peer.name.clone(), Some(peer));
        drop(peers);
        self.peers_returned.notify_all();
    }
}

/// A federation of peers plus the coordinator.
pub struct Federation {
    core: Arc<FedCore>,
}

/// Outcome of one distributed run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The result sequence, canonically serialized item by item (attributes
    /// sorted, comments dropped) — directly comparable across strategies.
    pub result: Vec<String>,
    pub metrics: Metrics,
    /// The decomposition that was executed (for explain output).
    pub plan: xqd_core::Decomposition,
}

impl Federation {
    pub fn new(model: NetworkModel) -> Self {
        Federation {
            core: Arc::new(FedCore {
                peers: Mutex::new(HashMap::new()),
                peers_returned: Condvar::new(),
                model,
                metrics: MetricsSink::default(),
                wire: Mutex::new(WireSemantics::Value),
                options: Mutex::new(ExecOptions::default()),
            }),
        }
    }

    /// Switches execution modes (scatter parallelism, bulk workers) for
    /// subsequent runs.
    pub fn set_exec_options(&mut self, options: ExecOptions) {
        *self.core.options.lock().unwrap() = options;
    }

    pub fn exec_options(&self) -> ExecOptions {
        self.core.options()
    }

    /// Adds an empty peer.
    pub fn add_peer(&mut self, name: &str) {
        self.core
            .peers
            .lock()
            .unwrap()
            .insert(name.to_string(), Some(Peer::new(name)));
    }

    /// Loads `xml` as document `doc_name` on `peer` (added if absent).
    pub fn load_document(&mut self, peer: &str, doc_name: &str, xml: &str) -> Result<(), EvalError> {
        let mut peers = self.core.peers.lock().unwrap();
        let entry = peers
            .entry(peer.to_string())
            .or_insert_with(|| Some(Peer::new(peer)));
        entry
            .as_mut()
            .ok_or_else(|| EvalError::new(format!("peer {peer} is busy")))?
            .load_document(doc_name, xml)
    }

    /// Parses, decomposes and executes `query` under `strategy`.
    pub fn run(&mut self, query: &str, strategy: Strategy) -> EvalResult<RunOutcome> {
        self.run_with(query, strategy, xqd_core::DecomposeOptions::default())
    }

    /// Like [`Self::run`] with explicit decomposition pipeline options
    /// (used by the ablation benches).
    pub fn run_with(
        &mut self,
        query: &str,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
    ) -> EvalResult<RunOutcome> {
        let module =
            parse_query(query).map_err(|e| EvalError::new(format!("parse error: {e}")))?;
        self.run_module_with(&module, strategy, options)
    }

    /// Like [`Self::run`] for an already-parsed module.
    pub fn run_module(&mut self, module: &QueryModule, strategy: Strategy) -> EvalResult<RunOutcome> {
        self.run_module_with(module, strategy, xqd_core::DecomposeOptions::default())
    }

    /// Full-control entry point: parsed module + pipeline options.
    pub fn run_module_with(
        &mut self,
        module: &QueryModule,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
    ) -> EvalResult<RunOutcome> {
        let plan = xqd_core::decompose_with(module, strategy, options)?;
        self.core.metrics.reset();
        *self.core.wire.lock().unwrap() = match strategy {
            Strategy::ByFragment => WireSemantics::Fragment,
            Strategy::ByProjection => WireSemantics::Projection,
            _ => WireSemantics::Value,
        };
        let started = Instant::now();
        // fresh coordinator store per run
        let mut local = Store::new();
        let mut link = FedLink { core: Arc::clone(&self.core), peer: String::new() };
        let mut handler = FedLink { core: Arc::clone(&self.core), peer: String::new() };
        let functions: Vec<xqd_xquery::FunctionDef> = Vec::new();
        let use_indexes = self.core.options().use_indexes;
        let mut ev = Evaluator::new(&mut local, &functions, &mut link)
            .with_remote(&mut handler)
            .with_indexes(use_indexes);
        let result = ev.eval(&plan.rewritten)?;
        let total = started.elapsed();
        let canonical = result.iter().map(|i| canonical_item(&local, i)).collect();
        let mut metrics = self.core.metrics.snapshot();
        metrics.total = total;
        Ok(RunOutcome { result: canonical, metrics, plan })
    }

    /// Metrics of the last run (also returned in [`RunOutcome`]); `total`
    /// is only carried by the [`RunOutcome`].
    pub fn metrics(&self) -> Metrics {
        self.core.metrics.snapshot()
    }

    /// Total serialized size in bytes of every document stored on peers —
    /// the Figure 7 x-axis.
    pub fn total_document_bytes(&self) -> u64 {
        let peers = self.core.peers.lock().unwrap();
        let mut total = 0u64;
        for peer in peers.values().flatten() {
            for (_, doc) in peer.store.docs() {
                if doc.uri.is_some() {
                    total += xqd_xml::serialize_document(doc, &peer.store.names).len() as u64;
                }
            }
        }
        total
    }
}

/// The resolver/handler link of one executing peer (empty name =
/// coordinator).
struct FedLink {
    core: Arc<FedCore>,
    peer: String,
}

impl DocResolver for FedLink {
    fn resolve(&mut self, store: &mut Store, uri: &str) -> EvalResult<xqd_xml::DocId> {
        if let Some(d) = store.doc_by_uri(uri) {
            return Ok(d);
        }
        if let Some((host, name)) = xqd_core::uris::split_xrpc_uri(uri) {
            if host == self.peer {
                // our own document, referenced through its xrpc URI (the
                // canonical registration; plain names accepted as fallback)
                return store
                    .doc_by_uri(uri)
                    .or_else(|| store.doc_by_uri(name))
                    .ok_or_else(|| EvalError::new(format!("document not found on {host}: {name}")));
            }
            // data shipping: fetch the whole document
            let peer_obj = self.core.take_peer(host)?;
            let t0 = Instant::now();
            let result = peer_obj
                .store
                .doc_by_uri(uri)
                .or_else(|| peer_obj.store.doc_by_uri(name))
                .map(|d| {
                    xqd_xml::serialize_document(peer_obj.store.doc(d), &peer_obj.store.names)
                })
                .ok_or_else(|| EvalError::new(format!("document not found on {host}: {name}")));
            self.core
                .metrics
                .serialize_ns
                .fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
            self.core.put_peer(peer_obj);
            let xml = result?;
            let bytes = xml.len() as u64;
            self.core.metrics.document_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.core
                .metrics
                .count_transfer(self.core.model.transfer_time(bytes));
            let t0 = Instant::now();
            let d = xqd_xml::parse_document(store, &xml, Some(uri))
                .map_err(|e| EvalError::new(format!("shredding {uri}: {e}")))?;
            self.core
                .metrics
                .shred_ns
                .fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
            return Ok(d);
        }
        // a plain name on a peer refers to that peer's own document (the
        // paper's remote functions use local names, e.g. doc("depts.xml"))
        if !self.peer.is_empty() && !uri.contains("://") {
            let canonical = format!("xrpc://{}/{}", self.peer, uri);
            if let Some(d) = store.doc_by_uri(&canonical) {
                return Ok(d);
            }
        }
        Err(EvalError::new(format!("document not found: {uri}")))
    }
}

/// Evaluates one decoded call against `store` (binding its parameters) and
/// returns the raw result sequence.
fn eval_one_call(
    core: &Arc<FedCore>,
    peer: &str,
    store: &mut Store,
    module: &QueryModule,
    static_ctx: &StaticContext,
    params: &[(String, Sequence)],
) -> EvalResult<Sequence> {
    let mut resolver = FedLink { core: Arc::clone(core), peer: peer.to_string() };
    let mut nested = FedLink { core: Arc::clone(core), peer: peer.to_string() };
    let mut ev = Evaluator::new(store, &module.functions, &mut resolver)
        .with_remote(&mut nested)
        .with_static_context(static_ctx.clone())
        .with_indexes(core.options().use_indexes);
    for (name, value) in params {
        ev.bind(name, value.clone());
    }
    ev.eval(&module.body)
}

/// Syntactic gate for splitting a Bulk RPC call list across store
/// snapshots: the body (and every function it may call) must not attach
/// documents to the store — no constructors, no nested `execute at`, and
/// every `fn:doc` argument is a literal resolving on this peer.
fn body_snapshot_safe(module: &QueryModule, peer: &str) -> bool {
    fn expr_safe(e: &Expr, peer: &str) -> bool {
        match e {
            Expr::Execute { .. } => false,
            Expr::Construct(_) => false,
            Expr::FunCall { name, args } if name == "doc" || name == "fn:doc" => {
                match args.as_slice() {
                    [Expr::Literal(a)] => {
                        let uri = a.to_lexical();
                        !uri.contains("://")
                            || uri.strip_prefix("xrpc://").is_some_and(|rest| {
                                rest.split_once('/').is_some_and(|(host, _)| host == peer)
                            })
                    }
                    _ => false,
                }
            }
            other => {
                let mut safe = true;
                xqd_xquery::normalize::map_children_infallible(other, &mut |c| {
                    if safe && !expr_safe(c, peer) {
                        safe = false;
                    }
                    c.clone()
                });
                safe
            }
        }
    }
    expr_safe(&module.body, peer) && module.functions.iter().all(|f| expr_safe(&f.body, peer))
}

/// Remote-side handling of one request message against `store` (the target
/// peer's store): decode, evaluate every carried call, encode the response.
/// Shared by the sequential, re-entrant and scatter paths so their
/// observable behavior cannot drift apart.
fn process_request(
    core: &Arc<FedCore>,
    peer: &str,
    store: &mut Store,
    request: &str,
) -> EvalResult<String> {
    let t0 = Instant::now();
    let decoded = decode_request(store, request)?;
    core.metrics.shred_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);

    let module = parse_query(&decoded.query)
        .map_err(|e| EvalError::new(format!("remote parse error: {e}")))?;

    let options = core.options();
    let t_exec = Instant::now();
    let results = if options.bulk_workers > 1
        && decoded.calls.len() > 1
        && body_snapshot_safe(&module, peer)
    {
        eval_calls_parallel(core, peer, store, &module, &decoded.static_ctx, &decoded.calls, options.bulk_workers)?
    } else {
        let mut results = Vec::with_capacity(decoded.calls.len());
        for params in &decoded.calls {
            results.push(eval_one_call(core, peer, store, &module, &decoded.static_ctx, params)?);
        }
        results
    };
    core.metrics
        .remote_exec_ns
        .fetch_add(as_ns(t_exec.elapsed()), Ordering::Relaxed);

    let t_ser = Instant::now();
    let response = encode_response(
        store,
        decoded.semantics,
        &results,
        decoded.result_spec.as_ref(),
    )?;
    core.metrics
        .serialize_ns
        .fetch_add(as_ns(t_ser.elapsed()), Ordering::Relaxed);
    Ok(response)
}

/// Splits the call list of one Bulk RPC into contiguous chunks evaluated on
/// cloned store snapshots by scoped worker threads. Snapshots preserve the
/// base store's document ranks, so gathered node ids stay valid in the base
/// store — guarded both syntactically ([`body_snapshot_safe`]) and at
/// runtime (a worker whose snapshot grew is discarded and its chunk re-run
/// sequentially against the base store).
fn eval_calls_parallel(
    core: &Arc<FedCore>,
    peer: &str,
    store: &mut Store,
    module: &QueryModule,
    static_ctx: &StaticContext,
    calls: &[Vec<(String, Sequence)>],
    workers: usize,
) -> EvalResult<Vec<Sequence>> {
    let n = calls.len();
    let workers = workers.min(n);
    let chunk_len = n.div_ceil(workers);
    let base_docs = store.docs().count();

    let mut chunk_results: Vec<(std::ops::Range<usize>, bool, Vec<EvalResult<Sequence>>)> =
        Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let range = (w * chunk_len)..(((w + 1) * chunk_len).min(n));
            if range.is_empty() {
                continue;
            }
            let mut snapshot = store.clone();
            let core = Arc::clone(core);
            let r = range.clone();
            handles.push((
                range,
                s.spawn(move || {
                    let out: Vec<EvalResult<Sequence>> = r
                        .map(|ci| {
                            eval_one_call(&core, peer, &mut snapshot, module, static_ctx, &calls[ci])
                        })
                        .collect();
                    let clean = snapshot.docs().count() == base_docs;
                    (clean, out)
                }),
            ));
        }
        for (range, handle) in handles {
            let (clean, out) = handle.join().expect("bulk worker panicked");
            chunk_results.push((range, clean, out));
        }
    });

    let mut results: Vec<Sequence> = Vec::with_capacity(n);
    for (range, clean, out) in chunk_results {
        if clean {
            for r in out {
                results.push(r?);
            }
        } else {
            // the snapshot diverged (body attached documents despite the
            // gate): discard and recompute this chunk against the base store
            for ci in range {
                results.push(eval_one_call(core, peer, store, module, static_ctx, &calls[ci])?);
            }
        }
    }
    Ok(results)
}

impl RemoteHandler for FedLink {
    fn execute(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        params: &[(String, Sequence)],
        body: &xqd_xquery::Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Sequence> {
        let one_call = vec![params.to_vec()];
        let mut results =
            self.execute_bulk(local, static_ctx, peer, &one_call, body, projection)?;
        Ok(results.pop().unwrap_or_default())
    }

    fn execute_bulk(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        calls: &[Vec<(String, Sequence)>],
        body: &xqd_xquery::Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Vec<Sequence>> {
        let wire = self.core.wire();
        // ---- encode request (caller side) ----
        let t0 = Instant::now();
        let body_src = body.to_string();
        let request = encode_request(
            local,
            wire,
            static_ctx,
            &body_src,
            calls,
            projection.map(|p| p.params.as_slice()),
            projection.map(|p| &p.result),
        )?;
        let sink = &self.core.metrics;
        sink.serialize_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
        sink.message_bytes.fetch_add(request.len() as u64, Ordering::Relaxed);
        sink.remote_calls.fetch_add(calls.len() as u64, Ordering::Relaxed);
        sink.count_transfer(self.core.model.transfer_time(request.len() as u64));

        // ---- execute on the target peer ----
        let response = if peer == self.peer {
            // re-entrant call: the caller *is* this peer, so its store is on
            // our stack — evaluate directly instead of taking the (empty)
            // slot. The message still crosses the (loopback) wire above.
            process_request(&self.core, peer, local, &request)?
        } else {
            let mut remote = self.core.take_peer(peer)?;
            let outcome = process_request(&self.core, peer, &mut remote.store, &request);
            // put the peer back regardless of the outcome
            self.core.put_peer(remote);
            outcome?
        };

        let sink = &self.core.metrics;
        sink.message_bytes.fetch_add(response.len() as u64, Ordering::Relaxed);
        sink.count_transfer(self.core.model.transfer_time(response.len() as u64));

        // ---- decode response (caller side) ----
        let t0 = Instant::now();
        let sequences = decode_response(local, &response)?;
        sink.shred_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
        if sequences.len() != calls.len() {
            return Err(EvalError::new(format!(
                "response carries {} sequences for {} calls",
                sequences.len(),
                calls.len()
            )));
        }
        Ok(sequences)
    }

    fn execute_scatter(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        calls: &[ScatterCall<'_>],
    ) -> EvalResult<Vec<Sequence>> {
        let options = self.core.options();
        // a round targeting our own peer re-entrantly, or parallelism
        // disabled: fall back to the sequential per-call loop (identical
        // results, bytes and serialized network; no overlap credit)
        if !options.parallel_scatter || calls.iter().any(|c| c.peer == self.peer) {
            return calls
                .iter()
                .map(|c| self.execute(local, static_ctx, &c.peer, &c.params, c.body, c.projection))
                .collect();
        }

        let wire = self.core.wire();
        let sink = &self.core.metrics;

        // ---- scatter: encode every request up front, in call order ----
        // Parameters were pre-bound by the evaluator and responses only ever
        // *add* documents to the coordinator store, so these encodings are
        // byte-identical to the ones sequential execution would produce.
        let mut requests = Vec::with_capacity(calls.len());
        for c in calls {
            let t0 = Instant::now();
            let body_src = c.body.to_string();
            let one_call = vec![c.params.clone()];
            let request = encode_request(
                local,
                wire,
                static_ctx,
                &body_src,
                &one_call,
                c.projection.map(|p| p.params.as_slice()),
                c.projection.map(|p| &p.result),
            )?;
            sink.serialize_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
            sink.message_bytes.fetch_add(request.len() as u64, Ordering::Relaxed);
            sink.remote_calls.fetch_add(1, Ordering::Relaxed);
            sink.transfers.fetch_add(1, Ordering::Relaxed);
            requests.push(request);
        }

        // ---- fan out: one scoped thread per distinct peer ----
        let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
        for (i, c) in calls.iter().enumerate() {
            match groups.iter_mut().find(|(p, _)| *p == c.peer) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((&c.peer, vec![i])),
            }
        }
        let mut responses: Vec<Option<EvalResult<String>>> =
            (0..calls.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(groups.len());
            for (peer, idxs) in &groups {
                let core = Arc::clone(&self.core);
                let requests = &requests;
                handles.push(s.spawn(move || -> Vec<(usize, EvalResult<String>)> {
                    let mut peer_obj = match core.take_peer(peer) {
                        Ok(p) => p,
                        Err(e) => return idxs.iter().map(|&i| (i, Err(e.clone()))).collect(),
                    };
                    let out = idxs
                        .iter()
                        .map(|&i| {
                            (i, process_request(&core, peer, &mut peer_obj.store, &requests[i]))
                        })
                        .collect();
                    core.put_peer(peer_obj);
                    out
                }));
            }
            for handle in handles {
                for (i, r) in handle.join().expect("scatter worker panicked") {
                    responses[i] = Some(r);
                }
            }
        });

        // ---- gather: account and decode in deterministic call order ----
        let mut gathered: Vec<String> = Vec::with_capacity(calls.len());
        for r in responses {
            gathered.push(r.expect("every call belongs to exactly one peer group")?);
        }
        // serialized network: the exact sum over every transfer; overlapped:
        // the slowest peer's request→response chain dominates the round
        let mut slowest_chain = Duration::ZERO;
        for (_, idxs) in &groups {
            let mut chain = Duration::ZERO;
            for &i in idxs {
                chain += self.core.model.transfer_time(requests[i].len() as u64);
                chain += self.core.model.transfer_time(gathered[i].len() as u64);
            }
            slowest_chain = slowest_chain.max(chain);
        }
        let mut serialized_sum = Duration::ZERO;
        for (request, response) in requests.iter().zip(&gathered) {
            serialized_sum += self.core.model.transfer_time(request.len() as u64);
            serialized_sum += self.core.model.transfer_time(response.len() as u64);
        }
        sink.network_ns.fetch_add(as_ns(serialized_sum), Ordering::Relaxed);
        sink.network_overlapped_ns
            .fetch_add(as_ns(slowest_chain), Ordering::Relaxed);
        sink.scatter_rounds.fetch_add(1, Ordering::Relaxed);

        let mut results = Vec::with_capacity(calls.len());
        for (response, c) in gathered.iter().zip(calls) {
            sink.message_bytes.fetch_add(response.len() as u64, Ordering::Relaxed);
            sink.transfers.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let mut sequences = decode_response(local, response)?;
            sink.shred_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
            if sequences.len() != 1 {
                return Err(EvalError::new(format!(
                    "scatter response for peer {} carries {} sequences for 1 call",
                    c.peer,
                    sequences.len()
                )));
            }
            results.push(sequences.pop().unwrap());
        }
        Ok(results)
    }
}

/// Canonical serialization of one item: stable across stores, attribute
/// order insensitive, comment/PI free — string equality on canonical items
/// coincides with `fn:deep-equal` for comment-free data.
pub fn canonical_item(store: &Store, item: &Item) -> String {
    match item {
        Item::Atom(a) => format!("atom:{}", a.to_lexical()),
        Item::Node(n) => {
            let mut out = String::new();
            canonical_node(store, *n, &mut out);
            out
        }
    }
}

fn canonical_node(store: &Store, n: NodeId, out: &mut String) {
    let doc = store.doc(n.doc);
    match doc.kind(n.idx) {
        NodeKind::Document => {
            out.push_str("doc()[");
            for c in doc.children(n.idx) {
                canonical_node(store, NodeId::new(n.doc, c), out);
            }
            out.push(']');
        }
        NodeKind::Element => {
            out.push('<');
            out.push_str(store.names.resolve(doc.name(n.idx)));
            let mut attrs: Vec<(String, String)> = doc
                .attributes(n.idx)
                .map(|a| {
                    (
                        store.names.resolve(doc.name(a)).to_string(),
                        doc.value(a).unwrap_or("").to_string(),
                    )
                })
                .collect();
            attrs.sort();
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(&k);
                out.push_str("=\"");
                xqd_xml::serialize::escape_attr(&v, out);
                out.push('"');
            }
            out.push('>');
            for c in doc.children(n.idx) {
                canonical_node(store, NodeId::new(n.doc, c), out);
            }
            out.push_str("</");
            out.push_str(store.names.resolve(doc.name(n.idx)));
            out.push('>');
        }
        NodeKind::Attribute => {
            out.push_str("attr:");
            out.push_str(store.names.resolve(doc.name(n.idx)));
            out.push('=');
            out.push_str(doc.value(n.idx).unwrap_or(""));
        }
        NodeKind::Text => {
            xqd_xml::serialize::escape_text(doc.value(n.idx).unwrap_or(""), out)
        }
        NodeKind::Comment | NodeKind::Pi => {}
    }
}
