//! The distributed execution fabric: simulated peers plus the
//! [`xqd_xquery::RemoteHandler`] / [`xqd_xquery::DocResolver`]
//! implementations wiring the decomposed query to the message codecs.
//!
//! A [`Federation`] owns one [`Peer`] per `xrpc://host/…` host; `run()`
//! spins up a fresh coordinator store (the query originator), decomposes the
//! query under the chosen [`Strategy`] and evaluates it. Remote `execute
//! at` calls serialize a real request message, "transfer" it under the
//! [`NetworkModel`], shred it into the target peer's store, evaluate the
//! body there with the *same* evaluator, and ship the response back the
//! same way. `fn:doc("xrpc://…")` on the coordinator performs data
//! shipping: the remote peer serializes the whole document, bytes are
//! accounted, and the coordinator shreds and caches it.
//!
//! # Parallel scatter-gather
//!
//! The federation core is thread-safe: peers live in slots behind a
//! `Mutex`+`Condvar` (a peer is *taken* for the duration of a call, and
//! waiting replaces the old hard "busy" failure), and metrics accumulate
//! into atomics. When the evaluator detects a scatter point — independent
//! `execute at` calls aimed at distinct peers — [`FedLink::execute_scatter`]
//! encodes every request up front (byte-identical to sequential execution),
//! fans the decode→evaluate→respond pipeline out across one scoped thread
//! per peer, and gathers/decodes responses in deterministic call order.
//! Serialized network cost stays the exact per-transfer sum; the overlapped
//! cost of a round is the slowest peer's chain (see
//! [`Metrics::network_overlapped`]).
//!
//! Within one Bulk RPC the remote side can also split the decoded call list
//! across workers over cloned snapshots of the post-shred store
//! ([`ExecOptions::bulk_workers`]); snapshots share the base store's
//! document ranks, so results gathered from workers are valid node ids in
//! the base store as long as the body attaches no new documents — which a
//! syntactic safety gate guarantees before the split.
//!
//! # Failure semantics
//!
//! Every remote interaction — Bulk RPC, scatter rounds, document fetches —
//! flows through a fault-injecting transport under a [`RetryPolicy`]. When
//! a [`crate::FaultPlan`] is installed, each attempt may be mangled
//! (truncation/corruption), delayed, dropped or hung per the deterministic
//! schedule; failures surface as typed [`XrpcError`]s, retryable ones are
//! replayed with exponential backoff and deterministic jitter, and calls
//! whose retries exhaust degrade gracefully to data shipping (fetch the
//! documents, evaluate the body locally, round-trip the results through
//! the same wire codec) when the body is eligible. Remote evaluation
//! failures and captured worker panics travel back as wire-encoded fault
//! responses, so the error path exercises the same codecs as the data
//! path.

use std::borrow::Cow;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xqd_core::Strategy;
use xqd_xml::{NodeId, NodeKind, Store};
use xqd_xquery::ast::{Atomic, ExecProjection};
use xqd_xquery::eval::{DocResolver, Evaluator, RemoteHandler, ScatterCall, StaticContext};
use xqd_xquery::value::{EvalError, EvalResult, Item, Sequence};
use xqd_xquery::{parse_query, Expr, QueryModule};

use xqd_core::replicas::{mix_score, ReplicaCatalog};

use crate::health::{
    seeded_fraction, Admission, BreakerPolicy, BreakerState, Observation, Scoreboard,
};
use crate::message::{
    decode_doc_request, decode_fault, decode_request, decode_response, encode_doc_response,
    encode_fault, encode_request, encode_response, WireSemantics,
};
use crate::net::{Fault, FaultPlan, Metrics, NetworkModel, XrpcError};
use crate::trace::{SpanBuilder, Trace, Tracer, ROOT_SPAN};
use crate::transport::Transport;

/// One simulated peer: a named document store.
#[derive(Debug)]
pub struct Peer {
    pub name: String,
    pub store: Store,
}

impl Peer {
    pub fn new(name: &str) -> Self {
        Peer { name: name.to_string(), store: Store::new() }
    }

    /// Loads a document from XML text under `doc_name`. The document is
    /// registered under its canonical `xrpc://<peer>/<doc_name>` URI so
    /// `fn:base-uri` / `fn:document-uri` agree between peer-local access and
    /// data-shipped copies at the coordinator.
    pub fn load_document(&mut self, doc_name: &str, xml: &str) -> Result<(), EvalError> {
        let uri = format!("xrpc://{}/{}", self.name, doc_name);
        xqd_xml::parse_document(&mut self.store, xml, Some(&uri))
            .map_err(|e| EvalError::new(format!("loading {doc_name}: {e}")))?;
        Ok(())
    }
}

/// Execution-mode switches (see [`Federation::set_exec_options`]).
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Fan independent calls to distinct peers out across scoped threads.
    /// Off = the same calls run in a sequential loop (identical results and
    /// byte counts; `network_overlapped` then equals `network`).
    pub parallel_scatter: bool,
    /// Workers splitting the call list of one Bulk RPC on the remote side.
    /// `1` (default) keeps remote evaluation single-threaded.
    pub bulk_workers: usize,
    /// Answer eligible axis steps from per-document name indexes (staircase
    /// join) on every evaluator in the federation — coordinator and peers.
    /// Off = arena scans; results and message bytes are bit-identical either
    /// way, which the equivalence suite asserts.
    pub use_indexes: bool,
    /// Retry/backoff/deadline policy applied to every remote call and
    /// document fetch.
    pub retry: RetryPolicy,
    /// Deterministic fault schedule; `None` (the default) injects nothing
    /// and leaves the transport byte-for-byte identical to the fault-free
    /// model.
    pub fault: Option<FaultPlan>,
    /// Hedged requests: after this base delay (jittered deterministically
    /// per call to 50–100%), a slot whose preferred replica has not
    /// answered dispatches a secondary attempt to the next healthy replica
    /// and the first valid response wins. `None` (the default) never
    /// hedges.
    pub hedge: Option<Duration>,
    /// Circuit-breaker tuning for the peer health scoreboard.
    pub breaker: BreakerPolicy,
    /// Seed of the rendezvous replica-selection policy (see
    /// [`xqd_core::replicas::rendezvous_order`]).
    pub replica_seed: u64,
    /// Lower queries to the flat plan IR ([`xqd_xquery::Plan`]) and execute
    /// that, on the coordinator and on every peer. Off = the tree-walk
    /// interpreter runs everywhere; results and message bytes are
    /// bit-identical either way, which the plan-equivalence suite asserts.
    pub compile: bool,
    /// Capacity of the coordinator-side LRU plan cache. `0` disables
    /// caching entirely: every run pays the full front end again.
    pub plan_cache_size: usize,
    /// Join-aware decomposition: detect cross-peer equi-joins and ship the
    /// producer side's **distinct join keys** (front-coded on the wire)
    /// instead of its full node sequence, so the join predicate evaluates
    /// remotely against a compact key filter. Results are bit-identical
    /// either way — general comparison is existential, so deduplicated
    /// sorted keys decide it exactly like the raw sequence — which the
    /// join-equivalence suite asserts. Part of the plan-cache key.
    pub semijoin: bool,
    /// Bound on the number of callers allowed to wait on one peer slot's
    /// condvar at a time. A caller arriving at a busy slot whose wait queue
    /// is already full is rejected immediately with a typed
    /// [`XrpcError::PeerBusy`] carrying a retry-after hint (backpressure)
    /// instead of piling up behind the condvar. `0` disables the bound.
    pub peer_queue_depth: usize,
    /// Collect a deterministic span trace of the run on the simulated
    /// clock (see [`crate::trace`]). Off (the default) allocates nothing
    /// on the hot path; the returned [`RunOutcome::trace`] is then `None`.
    pub trace: bool,
    /// Collect a per-operator execution profile of the coordinator's
    /// compiled plan (execution counts, items produced, simulated-time
    /// attribution — the `explain --analyze` payload). Requires
    /// [`ExecOptions::compile`]; off by default.
    pub profile: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallel_scatter: true,
            bulk_workers: 1,
            use_indexes: true,
            retry: RetryPolicy::default(),
            fault: None,
            hedge: None,
            breaker: BreakerPolicy::default(),
            replica_seed: 0,
            compile: true,
            plan_cache_size: 64,
            semijoin: true,
            peer_queue_depth: 32,
            trace: false,
            profile: false,
        }
    }
}

/// Retry policy for remote calls and document fetches. XRPC calls are pure
/// and side-effect free (the paper's function-shipping model), so replaying
/// a lost or mangled call is always safe.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per logical call (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; retry `n` waits `base * 2^(n-1)`,
    /// capped at [`RetryPolicy::max_backoff`] and jittered to 50–100%.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Per-call budget. Bounds each attempt's simulated chain (transfer
    /// legs plus stalls), the condvar wait for a busy peer slot, and the
    /// total attempts-plus-backoff budget.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            deadline: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// Backoff before the attempt following `failed` failures (`failed >=
    /// 1`), with the deterministic jitter fraction in `[0, 1)` scaling the
    /// exponential wait to 50–100%.
    pub fn backoff(&self, failed: u32, jitter: f64) -> Duration {
        let shift = failed.saturating_sub(1).min(20);
        let exp = self.base_backoff.saturating_mul(1u32 << shift);
        exp.min(self.max_backoff).mul_f64(0.5 + 0.5 * jitter.clamp(0.0, 1.0))
    }

    /// Like [`RetryPolicy::backoff`], but honoring a server-supplied
    /// `retry-after-ms` hint (`PeerBusy` / `BreakerOpen` / `Overloaded`
    /// carry one). The server's estimate of when capacity frees up is
    /// never *under*cut — retrying sooner is exactly the hammering the
    /// hint exists to prevent — but it is capped by the caller's whole
    /// deadline budget: a hint the budget cannot afford waits the budget
    /// out, no longer.
    pub fn backoff_with_hint(&self, failed: u32, jitter: f64, hint: Option<Duration>) -> Duration {
        let exp = self.backoff(failed, jitter);
        match hint {
            Some(h) => exp.max(h).min(self.deadline),
            None => exp,
        }
    }
}

/// Metric accumulators shared across worker threads. Durations are
/// nanosecond counters; [`MetricsSink::snapshot`] converts back.
#[derive(Default)]
struct MetricsSink {
    message_bytes: AtomicU64,
    document_bytes: AtomicU64,
    transfers: AtomicU64,
    remote_calls: AtomicU64,
    scatter_rounds: AtomicU64,
    retries: AtomicU64,
    faults_injected: AtomicU64,
    fallbacks: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_probes: AtomicU64,
    replica_failovers: AtomicU64,
    plans_compiled: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    semijoins: AtomicU64,
    join_keys_shipped: AtomicU64,
    join_bytes_saved: AtomicU64,
    shred_ns: AtomicU64,
    serialize_ns: AtomicU64,
    remote_exec_ns: AtomicU64,
    network_ns: AtomicU64,
    network_overlapped_ns: AtomicU64,
}

fn as_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

impl MetricsSink {
    fn reset(&self) {
        for cell in [
            &self.message_bytes,
            &self.document_bytes,
            &self.transfers,
            &self.remote_calls,
            &self.scatter_rounds,
            &self.retries,
            &self.faults_injected,
            &self.fallbacks,
            &self.hedges,
            &self.hedge_wins,
            &self.breaker_trips,
            &self.breaker_probes,
            &self.replica_failovers,
            &self.plans_compiled,
            &self.plan_cache_hits,
            &self.plan_cache_misses,
            &self.semijoins,
            &self.join_keys_shipped,
            &self.join_bytes_saved,
            &self.shred_ns,
            &self.serialize_ns,
            &self.remote_exec_ns,
            &self.network_ns,
            &self.network_overlapped_ns,
        ] {
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Metrics {
        Metrics {
            message_bytes: self.message_bytes.load(Ordering::Relaxed),
            document_bytes: self.document_bytes.load(Ordering::Relaxed),
            transfers: self.transfers.load(Ordering::Relaxed),
            remote_calls: self.remote_calls.load(Ordering::Relaxed),
            scatter_rounds: self.scatter_rounds.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_probes: self.breaker_probes.load(Ordering::Relaxed),
            replica_failovers: self.replica_failovers.load(Ordering::Relaxed),
            plans_compiled: self.plans_compiled.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            semijoins: self.semijoins.load(Ordering::Relaxed),
            join_keys_shipped: self.join_keys_shipped.load(Ordering::Relaxed),
            join_bytes_saved: self.join_bytes_saved.load(Ordering::Relaxed),
            // scheduler-level counters: filled in by the workload engine's
            // deterministic accounting, never by per-call code paths (whose
            // wait events depend on thread interleaving and would break the
            // chaos suite's counter replay contract)
            queued: 0,
            shed: 0,
            deadline_cancelled: 0,
            peak_queue_depth: 0,
            shred: Duration::from_nanos(self.shred_ns.load(Ordering::Relaxed)),
            serialize: Duration::from_nanos(self.serialize_ns.load(Ordering::Relaxed)),
            remote_exec: Duration::from_nanos(self.remote_exec_ns.load(Ordering::Relaxed)),
            network: Duration::from_nanos(self.network_ns.load(Ordering::Relaxed)),
            network_overlapped: Duration::from_nanos(
                self.network_overlapped_ns.load(Ordering::Relaxed),
            ),
            total: Duration::ZERO,
        }
    }

    /// Bills one call's simulated chain (transfer legs, injected stalls,
    /// backoff waits) equally to the serialized and overlapped clocks —
    /// used outside scatter rounds, where transfers never overlap.
    fn charge_chain(&self, chain: Duration) {
        let ns = as_ns(chain);
        self.network_ns.fetch_add(ns, Ordering::Relaxed);
        self.network_overlapped_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Accounts the `<keyset>` payloads of one wire leg, mirroring the
    /// adjacent `message_bytes` charge: every (re)transmission recounts.
    fn charge_keysets(&self, message: &str) {
        if message.contains("<keyset ") {
            let (keys, saved) = crate::message::keyset_stats(message);
            self.join_keys_shipped.fetch_add(keys, Ordering::Relaxed);
            self.join_bytes_saved.fetch_add(saved, Ordering::Relaxed);
        }
    }
}

/// One peer's slot plus its bounded wait queue. The peer is `None` while
/// taken by an executing call; `waiters` counts the callers currently
/// blocked on the condvar for this slot, so arrivals beyond
/// [`ExecOptions::peer_queue_depth`] can be rejected with backpressure
/// instead of queuing without bound.
struct PeerSlot {
    peer: Option<Peer>,
    waiters: u32,
}

impl PeerSlot {
    fn ready(peer: Peer) -> Self {
        PeerSlot { peer: Some(peer), waiters: 0 }
    }
}

struct FedCore {
    /// Peer slots: see [`PeerSlot`].
    peers: Mutex<HashMap<String, PeerSlot>>,
    /// Signalled whenever a peer is returned to its slot.
    peers_returned: Condvar,
    model: NetworkModel,
    metrics: MetricsSink,
    wire: Mutex<WireSemantics>,
    options: Mutex<ExecOptions>,
    /// Lane allocator for fault-schedule streams (reset per run): each
    /// logical ladder — one Bulk RPC, one scatter slot, one document fetch —
    /// draws its ordinals from its own lane, so the schedule stays
    /// replayable under any thread interleaving even when two slots fail
    /// over to the same replica concurrently.
    lanes: AtomicU64,
    /// Peer health scoreboard: EWMA latency and circuit breakers on the
    /// simulated clock. Mutated only from coordinator call sites —
    /// sequentially between calls, or at the scatter gather in slot order —
    /// so its evolution is a pure function of the run's fault seed.
    board: Mutex<Scoreboard>,
    /// Replicated document placement (see [`ReplicaCatalog`]).
    catalog: Mutex<ReplicaCatalog>,
    /// Coordinator-side LRU cache of prepared queries (see [`PlanCache`]).
    plans: Mutex<PlanCache>,
    /// Static context applied to coordinator evaluation and compiled into
    /// cached plans; part of the plan-cache key.
    static_ctx: Mutex<StaticContext>,
    /// Topology generation: bumped whenever a peer, document or replica
    /// placement is added, so plans whose replica resolution was baked
    /// against the old topology miss the cache instead of being replayed.
    catalog_gen: AtomicU64,
    /// The active run's span collector, installed by `begin_run` when
    /// [`ExecOptions::trace`] is set and *taken* by `finish_run` — so spans
    /// from stray `prepare()` calls between runs can never leak into the
    /// next run's trace.
    tracer: Mutex<Option<Arc<Tracer>>>,
    /// The finished trace of the most recent traced run — kept here so a
    /// run that ends in a typed error (no [`RunOutcome`]) still surfaces
    /// its trace via [`Federation::take_trace`].
    last_trace: Mutex<Option<Trace>>,
}

/// One cached unit of coordinator front-end work: the decomposition (kept
/// for explain output) plus the compiled plan that executes it.
#[derive(Debug)]
pub struct PreparedQuery {
    pub decomposition: xqd_core::Decomposition,
    pub plan: xqd_xquery::Plan,
}

/// Everything a prepared query is a function of. Two runs whose keys differ
/// in any field can never share a plan — which is exactly the safety
/// argument for replaying a hit: documents are immutable once loaded (the
/// generation covers additions), and the static context, index strategy,
/// decomposition knobs and replica seed are all fingerprinted here.
#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    /// Raw query text (`run`) or the module's canonical printed form
    /// (`run_module`); equivalent spellings may occupy two entries.
    query: String,
    strategy: Strategy,
    let_motion: bool,
    code_motion: bool,
    /// The *effective* toggle (decompose-level OR exec-level): flipping
    /// `--no-semijoin` must never replay a semi-join plan from the cache.
    semijoin: bool,
    use_indexes: bool,
    replica_seed: u64,
    catalog_gen: u64,
    /// `\u{1}`-joined static-context fields.
    static_fingerprint: String,
}

/// LRU cache of prepared queries: a map plus a monotonic access tick.
/// Eviction scans for the smallest tick — O(capacity), fine for the
/// double-digit capacities a coordinator holds.
#[derive(Default)]
struct PlanCache {
    tick: u64,
    entries: HashMap<PlanKey, (u64, Arc<PreparedQuery>)>,
}

impl PlanCache {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get(&mut self, cap: usize, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        if cap == 0 {
            return None;
        }
        let tick = self.touch();
        self.entries.get_mut(key).map(|e| {
            e.0 = tick;
            Arc::clone(&e.1)
        })
    }

    fn insert(&mut self, cap: usize, key: PlanKey, prepared: Arc<PreparedQuery>) {
        if cap == 0 {
            return;
        }
        while self.entries.len() >= cap && !self.entries.contains_key(&key) {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.entries.remove(&oldest);
        }
        let tick = self.touch();
        self.entries.insert(key, (tick, prepared));
    }
}

/// Fault-schedule ordinal of one attempt: the ladder's lane, the rung
/// within the ladder, and the attempt within the rung, packed so no two
/// attempts of a run ever share a `(peer, ordinal)` stream.
fn fault_seq(lane: u64, rung: u32, attempt: u32) -> u64 {
    (lane << 16) | (u64::from(rung & 0xff) << 8) | u64::from(attempt.min(255))
}

impl FedCore {
    fn wire(&self) -> WireSemantics {
        *self.wire.lock().unwrap()
    }

    fn options(&self) -> ExecOptions {
        *self.options.lock().unwrap()
    }

    /// The active run's tracer, if tracing is on.
    fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.lock().unwrap().clone()
    }

    /// Allocates the fault-schedule lane for one ladder. Lanes are handed
    /// out in coordinator program order (scatter rounds reserve a
    /// contiguous block per slot before spawning), which keeps the mapping
    /// deterministic.
    fn next_lane(&self) -> u64 {
        self.lanes.fetch_add(1, Ordering::Relaxed)
    }

    /// Reserves `n` consecutive lanes (scatter: slot `i` uses `base + i`).
    fn reserve_lanes(&self, n: u64) -> u64 {
        self.lanes.fetch_add(n, Ordering::Relaxed)
    }

    /// An immutable copy of the health scoreboard for admission decisions
    /// inside a ladder or scatter round — workers never lock the live one.
    fn board_snapshot(&self) -> Scoreboard {
        self.board.lock().unwrap().clone()
    }

    /// Applies a ladder's (or a whole round's) health observations to the
    /// shared scoreboard after advancing the simulated clock by the wall
    /// clock the ladder occupied; breaker trips are counted as they land.
    fn apply_observations<'a>(
        &self,
        elapsed: Duration,
        observations: impl IntoIterator<Item = &'a Observation>,
    ) {
        let mut board = self.board.lock().unwrap();
        board.advance(elapsed);
        for obs in observations {
            if board.observe(obs) {
                self.metrics.breaker_trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Bills a ladder's availability counters (hedges, probes, failovers).
    fn charge_ladder_counters(&self, ladder: &LadderOutcome) {
        let sink = &self.metrics;
        sink.hedges.fetch_add(ladder.hedges, Ordering::Relaxed);
        sink.hedge_wins.fetch_add(ladder.hedge_wins, Ordering::Relaxed);
        sink.breaker_probes.fetch_add(ladder.probes, Ordering::Relaxed);
        sink.replica_failovers.fetch_add(ladder.failovers, Ordering::Relaxed);
    }

    /// An honest resubmission hint for a busy peer: its observed EWMA
    /// service latency when the scoreboard has one (roughly when the
    /// current holder should be done), else the ladder's busy-switch wait.
    fn busy_retry_hint(&self, name: &str) -> Duration {
        self.board
            .lock()
            .unwrap()
            .ewma(name)
            .filter(|d| !d.is_zero())
            .unwrap_or(BUSY_SWITCH_WAIT)
    }

    /// Takes `name`'s peer out of its slot, waiting up to `wait` — which
    /// every caller bounds by its *remaining* deadline budget — while
    /// another call holds it. The per-slot wait queue is bounded by
    /// [`ExecOptions::peer_queue_depth`]: a caller arriving beyond the
    /// bound is rejected immediately (backpressure) instead of piling up
    /// behind the condvar. Both rejection paths return a typed
    /// [`XrpcError::PeerBusy`] with an honest retry-after hint. An unknown
    /// peer fails immediately — and is distinguished from a busy one, so
    /// callers can retry the latter but not the former.
    fn take_peer(&self, name: &str, wait: Duration) -> Result<Peer, XrpcError> {
        let max_waiters = self.options().peer_queue_depth;
        let mut peers = self.peers.lock().unwrap();
        {
            let Some(slot) = peers.get_mut(name) else {
                return Err(XrpcError::UnknownPeer { peer: name.to_string() });
            };
            if let Some(p) = slot.peer.take() {
                return Ok(p);
            }
            if max_waiters > 0 && slot.waiters as usize >= max_waiters {
                let waiting = slot.waiters;
                drop(peers);
                return Err(XrpcError::PeerBusy {
                    peer: name.to_string(),
                    detail: format!(
                        "wait queue full ({waiting} callers already queued on the slot)"
                    ),
                    retry_after: self.busy_retry_hint(name),
                });
            }
            slot.waiters += 1;
        }
        let deadline = Instant::now() + wait;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                if let Some(slot) = peers.get_mut(name) {
                    slot.waiters -= 1;
                }
                drop(peers);
                return Err(XrpcError::PeerBusy {
                    peer: name.to_string(),
                    detail: format!("slot still held after {wait:?}"),
                    retry_after: self.busy_retry_hint(name),
                });
            }
            let (guard, _timeout) = self.peers_returned.wait_timeout(peers, remaining).unwrap();
            peers = guard;
            match peers.get_mut(name) {
                None => return Err(XrpcError::UnknownPeer { peer: name.to_string() }),
                Some(slot) => {
                    if let Some(p) = slot.peer.take() {
                        slot.waiters -= 1;
                        return Ok(p);
                    }
                }
            }
        }
    }

    fn put_peer(&self, peer: Peer) {
        let mut peers = self.peers.lock().unwrap();
        // preserve the slot's waiter count — only the peer comes back
        let slot = peers
            .entry(peer.name.clone())
            .or_insert_with(|| PeerSlot { peer: None, waiters: 0 });
        slot.peer = Some(peer);
        drop(peers);
        self.peers_returned.notify_all();
    }
}

/// A federation of peers plus the coordinator.
pub struct Federation {
    core: Arc<FedCore>,
}

/// Outcome of one distributed run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The result sequence, canonically serialized item by item (attributes
    /// sorted, comments dropped) — directly comparable across strategies.
    pub result: Vec<String>,
    pub metrics: Metrics,
    /// The decomposition that was executed (for explain output).
    pub plan: xqd_core::Decomposition,
    /// The run's span trace when [`ExecOptions::trace`] was set.
    pub trace: Option<Trace>,
    /// Per-operator execution profile when [`ExecOptions::profile`] was set
    /// and the run executed a compiled plan (pair it with
    /// [`RunOutcome::compiled`] for `explain --analyze` output).
    pub profile: Option<xqd_xquery::OpProfile>,
    /// The compiled plan the profile indexes into, when one executed.
    pub compiled: Option<Arc<PreparedQuery>>,
}

impl Federation {
    pub fn new(model: NetworkModel) -> Self {
        Federation {
            core: Arc::new(FedCore {
                peers: Mutex::new(HashMap::new()),
                peers_returned: Condvar::new(),
                model,
                metrics: MetricsSink::default(),
                wire: Mutex::new(WireSemantics::Value),
                options: Mutex::new(ExecOptions::default()),
                lanes: AtomicU64::new(0),
                board: Mutex::new(Scoreboard::new(BreakerPolicy::default())),
                catalog: Mutex::new(ReplicaCatalog::new()),
                plans: Mutex::new(PlanCache::default()),
                static_ctx: Mutex::new(StaticContext::default()),
                catalog_gen: AtomicU64::new(0),
                tracer: Mutex::new(None),
                last_trace: Mutex::new(None),
            }),
        }
    }

    /// Sets the static context applied to coordinator evaluation in
    /// subsequent runs. Part of the plan-cache key: runs under distinct
    /// contexts never share a plan (constants fold under the context the
    /// plan was compiled for).
    pub fn set_static_context(&mut self, ctx: StaticContext) {
        *self.core.static_ctx.lock().unwrap() = ctx;
    }

    /// Number of prepared queries currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.core.plans.lock().unwrap().entries.len()
    }

    /// Drops every cached plan (the cold-cache bench mode).
    pub fn clear_plan_cache(&mut self) {
        let mut plans = self.core.plans.lock().unwrap();
        plans.entries.clear();
        plans.tick = 0;
    }

    /// Switches execution modes (scatter parallelism, bulk workers) for
    /// subsequent runs.
    pub fn set_exec_options(&mut self, options: ExecOptions) {
        *self.core.options.lock().unwrap() = options;
    }

    /// Installs (or clears) the deterministic fault plan for subsequent
    /// runs.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.core.options.lock().unwrap().fault = plan;
    }

    /// Replaces the retry/backoff/deadline policy for subsequent runs.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.core.options.lock().unwrap().retry = retry;
    }

    /// Installs (or clears) the hedged-request delay for subsequent runs.
    pub fn set_hedge(&mut self, hedge: Option<Duration>) {
        self.core.options.lock().unwrap().hedge = hedge;
    }

    /// Replaces the circuit-breaker policy for subsequent runs
    /// (`threshold: 0` disables breakers entirely).
    pub fn set_breaker_policy(&mut self, breaker: BreakerPolicy) {
        self.core.options.lock().unwrap().breaker = breaker;
    }

    /// Seeds the rendezvous replica-selection order for subsequent runs.
    pub fn set_replica_seed(&mut self, seed: u64) {
        self.core.options.lock().unwrap().replica_seed = seed;
    }

    /// The replica catalog as currently registered.
    pub fn replica_catalog(&self) -> ReplicaCatalog {
        self.core.catalog.lock().unwrap().clone()
    }

    /// Breaker state of `peer` on the scoreboard left by the last run.
    pub fn breaker_state(&self, peer: &str) -> BreakerState {
        self.core.board.lock().unwrap().state(peer)
    }

    /// The health scoreboard left behind by the last run (EWMA latency,
    /// breaker states, final simulated clock).
    pub fn scoreboard(&self) -> Scoreboard {
        self.core.board.lock().unwrap().clone()
    }

    /// Replicates document `doc_name` of `primary` onto `replica` (added if
    /// absent). The copy is parsed from the primary's serialized form and
    /// registered under the primary's **canonical** `xrpc://` URI — it is
    /// still *the* primary's document, merely served from another host — and
    /// the placement is recorded in the replica catalog so the failover
    /// ladder and the decomposer's destination resolution can elect the new
    /// host. Replicating an already-replicated document is idempotent.
    pub fn replicate_document(
        &mut self,
        primary: &str,
        doc_name: &str,
        replica: &str,
    ) -> Result<(), EvalError> {
        let canonical = format!("xrpc://{primary}/{doc_name}");
        let mut peers = self.core.peers.lock().unwrap();
        let xml = {
            let p = peers
                .get(primary)
                .and_then(|slot| slot.peer.as_ref())
                .ok_or_else(|| EvalError::new(format!("unknown or busy peer: {primary}")))?;
            let d = p
                .store
                .doc_by_uri(&canonical)
                .or_else(|| p.store.doc_by_uri(doc_name))
                .ok_or_else(|| {
                    EvalError::new(format!("document not found on {primary}: {doc_name}"))
                })?;
            xqd_xml::serialize_document(p.store.doc(d), &p.store.names)
        };
        let entry = peers
            .entry(replica.to_string())
            .or_insert_with(|| PeerSlot::ready(Peer::new(replica)));
        let rp = entry
            .peer
            .as_mut()
            .ok_or_else(|| EvalError::new(format!("peer {replica} is busy")))?;
        if rp.store.doc_by_uri(&canonical).is_none() {
            xqd_xml::parse_document(&mut rp.store, &xml, Some(&canonical))
                .map_err(|e| EvalError::new(format!("replicating {canonical}: {e}")))?;
        }
        drop(peers);
        self.core.catalog.lock().unwrap().register(&canonical, replica);
        self.core.catalog_gen.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Replicates every canonically-registered document of `primary` onto
    /// `replica`, making it a full stand-in for shipped call bodies (the
    /// ladder only routes a *call* to hosts serving all of the primary's
    /// documents — see [`ReplicaCatalog::hosts_serving_peer`]).
    pub fn replicate_peer(&mut self, primary: &str, replica: &str) -> Result<(), EvalError> {
        let names: Vec<String> = {
            let peers = self.core.peers.lock().unwrap();
            let p = peers
                .get(primary)
                .and_then(|slot| slot.peer.as_ref())
                .ok_or_else(|| EvalError::new(format!("unknown or busy peer: {primary}")))?;
            let prefix = format!("xrpc://{primary}/");
            p.store
                .docs()
                .filter_map(|(_, doc)| Some(doc.uri.as_ref()?.strip_prefix(&prefix)?.to_string()))
                .collect()
        };
        if names.is_empty() {
            return Err(EvalError::new(format!(
                "peer {primary} has no canonical documents to replicate"
            )));
        }
        for name in names {
            self.replicate_document(primary, &name, replica)?;
        }
        Ok(())
    }

    pub fn exec_options(&self) -> ExecOptions {
        self.core.options()
    }

    /// Adds an empty peer.
    pub fn add_peer(&mut self, name: &str) {
        self.core
            .peers
            .lock()
            .unwrap()
            .insert(name.to_string(), PeerSlot::ready(Peer::new(name)));
        self.core.catalog_gen.fetch_add(1, Ordering::Relaxed);
    }

    /// Loads `xml` as document `doc_name` on `peer` (added if absent).
    pub fn load_document(&mut self, peer: &str, doc_name: &str, xml: &str) -> Result<(), EvalError> {
        let mut peers = self.core.peers.lock().unwrap();
        let entry = peers
            .entry(peer.to_string())
            .or_insert_with(|| PeerSlot::ready(Peer::new(peer)));
        entry
            .peer
            .as_mut()
            .ok_or_else(|| EvalError::new(format!("peer {peer} is busy")))?
            .load_document(doc_name, xml)?;
        drop(peers);
        self.core.catalog_gen.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Loads `xml` on `peer` under an explicit foreign **canonical** URI —
    /// a replica copy of another primary's document, arriving from outside
    /// the federation (a daemon's CLI-provided file rather than a live
    /// primary; [`Federation::replicate_document`] covers the in-process
    /// case). The placement is recorded in the catalog so plain-name and
    /// failover resolution can elect this host.
    pub fn load_replica_copy(
        &mut self,
        peer: &str,
        canonical_uri: &str,
        xml: &str,
    ) -> Result<(), EvalError> {
        let mut peers = self.core.peers.lock().unwrap();
        let entry = peers
            .entry(peer.to_string())
            .or_insert_with(|| PeerSlot::ready(Peer::new(peer)));
        let p = entry
            .peer
            .as_mut()
            .ok_or_else(|| EvalError::new(format!("peer {peer} is busy")))?;
        if p.store.doc_by_uri(canonical_uri).is_none() {
            xqd_xml::parse_document(&mut p.store, xml, Some(canonical_uri))
                .map_err(|e| EvalError::new(format!("replicating {canonical_uri}: {e}")))?;
        }
        drop(peers);
        self.core.catalog.lock().unwrap().register(canonical_uri, peer);
        self.core.catalog_gen.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Takes `name`'s peer out of its slot without waiting (`None` if
    /// absent or already held). Test scaffolding: a held slot is
    /// indistinguishable from a long-running evaluation, which is exactly
    /// what drain/overload tests need to stage deterministically.
    #[doc(hidden)]
    pub fn checkout_peer(&self, name: &str) -> Option<Peer> {
        self.core.take_peer(name, Duration::ZERO).ok()
    }

    /// Returns a peer checked out with [`Federation::checkout_peer`].
    #[doc(hidden)]
    pub fn checkin_peer(&self, peer: Peer) {
        self.core.put_peer(peer);
    }

    /// Parses, decomposes and executes `query` under `strategy`.
    pub fn run(&mut self, query: &str, strategy: Strategy) -> EvalResult<RunOutcome> {
        self.run_with(query, strategy, xqd_core::DecomposeOptions::default())
    }

    /// Like [`Self::run`] with explicit decomposition pipeline options
    /// (used by the ablation benches).
    pub fn run_with(
        &mut self,
        query: &str,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
    ) -> EvalResult<RunOutcome> {
        let (exec_options, static_ctx) = self.begin_run(strategy);
        if !exec_options.compile {
            let module =
                parse_query(query).map_err(|e| EvalError::new(format!("parse error: {e}")))?;
            self.trace_parse_event(query);
            return self.run_prepared_module(&module, strategy, options, &exec_options, &static_ctx);
        }
        // key on the raw query text: a warm cache skips the parser too
        let key = self.plan_key(query, strategy, options, &exec_options, &static_ctx);
        let prepared = match self.cache_lookup(exec_options.plan_cache_size, &key) {
            Some(p) => p,
            None => {
                let module = parse_query(query)
                    .map_err(|e| EvalError::new(format!("parse error: {e}")))?;
                self.trace_parse_event(query);
                self.compile_into_cache(key, &module, strategy, options, &exec_options, &static_ctx)?
            }
        };
        let decomposition = prepared.decomposition.clone();
        self.finish_run(Some(prepared), decomposition, &exec_options, &static_ctx)
    }

    /// Like [`Self::run`] for an already-parsed module.
    pub fn run_module(&mut self, module: &QueryModule, strategy: Strategy) -> EvalResult<RunOutcome> {
        self.run_module_with(module, strategy, xqd_core::DecomposeOptions::default())
    }

    /// Full-control entry point: parsed module + pipeline options.
    pub fn run_module_with(
        &mut self,
        module: &QueryModule,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
    ) -> EvalResult<RunOutcome> {
        let (exec_options, static_ctx) = self.begin_run(strategy);
        self.run_prepared_module(module, strategy, options, &exec_options, &static_ctx)
    }

    /// Runs (or, on a warm cache, skips) the front end for `query` — parse,
    /// decompose, replica resolution, lowering to plan IR — and returns the
    /// prepared entry. This is the per-run preamble [`Self::run`] executes;
    /// exposed so benches can measure the front-end rate on its own. Cache
    /// events count into the metric sink and are swept up by the next run's
    /// reset.
    pub fn prepare(&mut self, query: &str, strategy: Strategy) -> EvalResult<Arc<PreparedQuery>> {
        let exec_options = self.core.options();
        let static_ctx = self.core.static_ctx.lock().unwrap().clone();
        let options = xqd_core::DecomposeOptions::default();
        let key = self.plan_key(query, strategy, options, &exec_options, &static_ctx);
        match self.cache_lookup(exec_options.plan_cache_size, &key) {
            Some(p) => Ok(p),
            None => {
                let module = parse_query(query)
                    .map_err(|e| EvalError::new(format!("parse error: {e}")))?;
                self.compile_into_cache(key, &module, strategy, options, &exec_options, &static_ctx)
            }
        }
    }

    /// Zero-duration front-end marker: the query parsed.
    fn trace_parse_event(&self, query: &str) {
        if let Some(tracer) = self.core.tracer() {
            tracer.event(
                ROOT_SPAN,
                "frontend.parse",
                "frontend",
                vec![("chars", query.len().to_string())],
            );
        }
    }

    /// Per-run state reset, done before the front end so cache events land
    /// inside the run's metric snapshot.
    fn begin_run(&mut self, strategy: Strategy) -> (ExecOptions, StaticContext) {
        let exec_options = self.core.options();
        self.core.metrics.reset();
        self.core.lanes.store(0, Ordering::Relaxed);
        self.core.board.lock().unwrap().reset(exec_options.breaker);
        *self.core.tracer.lock().unwrap() = exec_options.trace.then(|| {
            // the trace id is a pure function of the run's seeds, drawn
            // through the workspace PRNG — replaying a chaos schedule
            // reproduces it bit for bit
            let fault_seed = exec_options.fault.map(|p| p.seed).unwrap_or(0);
            let mut rng = xqd_prng::Rng::seed_from_u64(
                fault_seed ^ exec_options.replica_seed.rotate_left(32),
            );
            let tracer = Tracer::new(rng.next_u64(), "query", "query");
            tracer.root_arg("strategy", format!("{strategy:?}"));
            Arc::new(tracer)
        });
        *self.core.wire.lock().unwrap() = match strategy {
            Strategy::ByFragment => WireSemantics::Fragment,
            Strategy::ByProjection => WireSemantics::Projection,
            _ => WireSemantics::Value,
        };
        let static_ctx = self.core.static_ctx.lock().unwrap().clone();
        (exec_options, static_ctx)
    }

    /// The module-level front end: cache lookup under the printed module
    /// text when compiling, plain decomposition otherwise.
    fn run_prepared_module(
        &mut self,
        module: &QueryModule,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
        exec_options: &ExecOptions,
        static_ctx: &StaticContext,
    ) -> EvalResult<RunOutcome> {
        if exec_options.compile {
            let mut text = String::new();
            xqd_xquery::ast::print_module(module, &mut text);
            let key = self.plan_key(&text, strategy, options, exec_options, static_ctx);
            let prepared = match self.cache_lookup(exec_options.plan_cache_size, &key) {
                Some(p) => p,
                None => {
                    self.compile_into_cache(key, module, strategy, options, exec_options, static_ctx)?
                }
            };
            let decomposition = prepared.decomposition.clone();
            self.finish_run(Some(prepared), decomposition, exec_options, static_ctx)
        } else {
            let plan = self.decompose_resolved(module, strategy, options, exec_options)?;
            self.finish_run(None, plan, exec_options, static_ctx)
        }
    }

    /// Decomposes `module` and annotates each remote call with its replica
    /// candidates (explain output; the executor re-derives the same order
    /// per ladder).
    fn decompose_resolved(
        &self,
        module: &QueryModule,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
        exec_options: &ExecOptions,
    ) -> EvalResult<xqd_core::Decomposition> {
        let mut options = options;
        options.semijoin = options.semijoin || exec_options.semijoin;
        let mut plan = xqd_core::decompose_with(module, strategy, options)?;
        let catalog = self.core.catalog.lock().unwrap();
        plan.resolve_replicas(&catalog, exec_options.replica_seed);
        Ok(plan)
    }

    fn plan_key(
        &self,
        query: &str,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
        exec_options: &ExecOptions,
        static_ctx: &StaticContext,
    ) -> PlanKey {
        PlanKey {
            query: query.to_string(),
            strategy,
            let_motion: options.let_motion,
            code_motion: options.code_motion,
            semijoin: options.semijoin || exec_options.semijoin,
            use_indexes: exec_options.use_indexes,
            replica_seed: exec_options.replica_seed,
            catalog_gen: self.core.catalog_gen.load(Ordering::Relaxed),
            static_fingerprint: format!(
                "{}\u{1}{}\u{1}{}",
                static_ctx.base_uri, static_ctx.default_collation, static_ctx.current_datetime
            ),
        }
    }

    fn cache_lookup(&self, cap: usize, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        let hit = self.core.plans.lock().unwrap().get(cap, key);
        let sink = &self.core.metrics;
        match &hit {
            Some(_) => sink.plan_cache_hits.fetch_add(1, Ordering::Relaxed),
            None => sink.plan_cache_misses.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(tracer) = self.core.tracer() {
            let name = if hit.is_some() { "frontend.cache-hit" } else { "frontend.cache-miss" };
            tracer.event(ROOT_SPAN, name, "frontend", Vec::new());
        }
        hit
    }

    /// The cache-miss slow path: decompose, resolve replicas, lower to plan
    /// IR (recording the routes for explain), insert under `key`.
    fn compile_into_cache(
        &self,
        key: PlanKey,
        module: &QueryModule,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
        exec_options: &ExecOptions,
        static_ctx: &StaticContext,
    ) -> EvalResult<Arc<PreparedQuery>> {
        let decomposition = self.decompose_resolved(module, strategy, options, exec_options)?;
        let routes = decomposition
            .calls
            .iter()
            .map(|c| xqd_xquery::PlanRoute { peer: c.peer.clone(), replicas: c.replicas.clone() })
            .collect();
        let semijoins = decomposition
            .semijoins
            .iter()
            .map(|e| xqd_xquery::PlanSemijoin {
                var: e.var.clone(),
                key_path: e.key_path.clone(),
                producer_peer: e.producer_peer.clone(),
                consumer_peer: e.consumer_peer.clone(),
            })
            .collect();
        // the decomposer inlined user functions; the body is the whole query
        let plan = xqd_xquery::compile_module(&[], &decomposition.rewritten, exec_options.use_indexes, static_ctx)
            .with_routes(routes)
            .with_semijoins(semijoins);
        self.core.metrics.plans_compiled.fetch_add(1, Ordering::Relaxed);
        if let Some(tracer) = self.core.tracer() {
            // zero-duration marker: decompose + lowering are coordinator
            // CPU, which the simulated clock does not bill (see trace docs)
            tracer.event(
                ROOT_SPAN,
                "frontend.compile",
                "frontend",
                vec![
                    ("remote_calls", decomposition.calls.len().to_string()),
                    ("semijoins", decomposition.semijoins.len().to_string()),
                ],
            );
        }
        let prepared = Arc::new(PreparedQuery { decomposition, plan });
        self.core.plans.lock().unwrap().insert(
            exec_options.plan_cache_size,
            key,
            Arc::clone(&prepared),
        );
        Ok(prepared)
    }

    /// The back end shared by every entry point: fresh coordinator store,
    /// evaluate (compiled plan or interpreter), canonicalize, snapshot.
    fn finish_run(
        &mut self,
        compiled: Option<Arc<PreparedQuery>>,
        plan: xqd_core::Decomposition,
        exec_options: &ExecOptions,
        static_ctx: &StaticContext,
    ) -> EvalResult<RunOutcome> {
        let started = Instant::now();
        // per-op profiling reads the tracer's simulated clock when tracing
        // is on (one shared timeline); a fresh zero cell otherwise
        let hook = match (&compiled, exec_options.profile) {
            (Some(p), true) => Some(xqd_xquery::ProfileHook {
                data: std::rc::Rc::new(std::cell::RefCell::new(xqd_xquery::OpProfile::new(
                    p.plan.ops.len(),
                ))),
                clock: self
                    .core
                    .tracer()
                    .map(|t| t.clock_handle())
                    .unwrap_or_default(),
            }),
            _ => None,
        };
        // fresh coordinator store per run
        let mut local = Store::new();
        let mut link = FedLink { core: Arc::clone(&self.core), peer: String::new() };
        let mut handler = FedLink { core: Arc::clone(&self.core), peer: String::new() };
        let functions: Vec<xqd_xquery::FunctionDef> = Vec::new();
        let mut ev = Evaluator::new(&mut local, &functions, &mut link)
            .with_remote(&mut handler)
            .with_static_context(static_ctx.clone())
            .with_indexes(exec_options.use_indexes);
        if let Some(h) = &hook {
            ev = ev.with_profile(h.clone());
        }
        let evaluated = match &compiled {
            Some(p) => p.plan.eval(&mut ev),
            None => ev.eval(&plan.rewritten),
        };
        drop(ev);
        // the tracer is *taken* even on error, so spans from one run (or
        // from stray `prepare()` calls in between) never leak into the next
        let trace = self.core.tracer.lock().unwrap().take().map(|t| {
            if let Err(e) = &evaluated {
                t.root_arg("error", e.message.clone());
            }
            t.finish()
        });
        *self.core.last_trace.lock().unwrap() = trace.clone();
        let result = evaluated?;
        let profile = hook.map(|h| h.data.borrow().clone());
        self.core
            .metrics
            .semijoins
            .fetch_add(plan.semijoins.len() as u64, Ordering::Relaxed);
        let total = started.elapsed();
        let canonical = result.iter().map(|i| canonical_item(&local, i)).collect();
        let mut metrics = self.core.metrics.snapshot();
        metrics.total = total;
        Ok(RunOutcome { result: canonical, metrics, plan, trace, profile, compiled })
    }

    /// Metrics of the last run (also returned in [`RunOutcome`]); `total`
    /// is only carried by the [`RunOutcome`].
    pub fn metrics(&self) -> Metrics {
        self.core.metrics.snapshot()
    }

    /// Takes the finished trace of the most recent traced run. This is how
    /// the trace of a run that ended in a typed error is recovered (a
    /// successful run returns it in [`RunOutcome::trace`] too); a second
    /// call returns `None`.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.core.last_trace.lock().unwrap().take()
    }

    /// An envelope-level [`Transport`] view of this federation's peers: one
    /// exchange takes a peer's slot, runs the real decode → evaluate →
    /// encode path, and returns the reply envelope. The daemon harness uses
    /// this as the in-process oracle the TCP transport is diffed against —
    /// same codecs, same fault semantics, zero sockets.
    pub fn transport(&self) -> SimTransport {
        SimTransport { core: Arc::clone(&self.core) }
    }

    /// Total serialized size in bytes of every document stored on peers —
    /// the Figure 7 x-axis.
    pub fn total_document_bytes(&self) -> u64 {
        let peers = self.core.peers.lock().unwrap();
        let mut total = 0u64;
        for peer in peers.values().filter_map(|slot| slot.peer.as_ref()) {
            for (_, doc) in peer.store.docs() {
                if doc.uri.is_some() {
                    total += xqd_xml::serialize_document(doc, &peer.store.names).len() as u64;
                }
            }
        }
        total
    }
}

/// The simulated federation seen through the [`Transport`] seam: every
/// exchange is one envelope round-trip against a real peer slot, using the
/// same codecs and the same slot discipline (bounded wait queue, typed
/// `PeerBusy`) as the in-process execution paths. No fault plan applies
/// here — the chaos oracle stays attached to the simulated *run* paths —
/// so a reply either round-trips faithfully or fails for a real reason
/// (unknown peer, slot contention within `budget`).
pub struct SimTransport {
    core: Arc<FedCore>,
}

impl Transport for SimTransport {
    fn exchange(&self, peer: &str, request: &str, budget: Duration) -> Result<String, XrpcError> {
        // Doc-request envelopes serve the data-shipping path: look the
        // document up under its canonical URI, falling back to the plain
        // name it was loaded under.
        if let Some(uri) = decode_doc_request(request) {
            let p = self.core.take_peer(peer, budget)?;
            let found = p.store.doc_by_uri(&uri).or_else(|| {
                xqd_core::uris::split_xrpc_uri(&uri)
                    .and_then(|(_, name)| p.store.doc_by_uri(name))
            });
            let reply = match found {
                Some(id) => encode_doc_response(
                    &uri,
                    &xqd_xml::serialize_document(p.store.doc(id), &p.store.names),
                ),
                None => encode_fault(&XrpcError::RemoteFault {
                    peer: peer.to_string(),
                    code: "xrpc:document-not-found".to_string(),
                    message: format!("document not found on {peer}: {uri}"),
                }),
            };
            self.core.put_peer(p);
            return Ok(reply);
        }
        let mut p = self.core.take_peer(peer, budget)?;
        let outcome = run_remote(peer, request, false, &mut |req| {
            process_request(&self.core, peer, &mut p.store, req)
        });
        self.core.put_peer(p);
        outcome
    }
}

/// The resolver/handler link of one executing peer (empty name =
/// coordinator).
struct FedLink {
    core: Arc<FedCore>,
    peer: String,
}

impl DocResolver for FedLink {
    fn resolve(&mut self, store: &mut Store, uri: &str) -> EvalResult<xqd_xml::DocId> {
        if let Some(d) = store.doc_by_uri(uri) {
            return Ok(d);
        }
        if let Some((host, name)) = xqd_core::uris::split_xrpc_uri(uri) {
            if host == self.peer {
                // our own document, referenced through its xrpc URI (the
                // canonical registration; plain names accepted as fallback)
                return store
                    .doc_by_uri(uri)
                    .or_else(|| store.doc_by_uri(name))
                    .ok_or_else(|| EvalError::new(format!("document not found on {host}: {name}")));
            }
            // data shipping: fetch the whole document — itself subject to
            // the fault plan and retry policy (fetches are pure reads, so
            // replaying one is always safe). Every host serving the URI is
            // a candidate; the ladder walks them healthiest-first.
            let options = self.core.options();
            let retry = options.retry;
            let sink = &self.core.metrics;
            let board = self.core.board_snapshot();
            let lane = self.core.next_lane();
            let hosts = self.core.catalog.lock().unwrap().hosts_for(uri);
            let (mut candidates, _) =
                admitted_candidates(&board, options.replica_seed, hosts);
            if candidates.is_empty() {
                // fetches back the degradation path — the last resort. With
                // every breaker open, force one attempt on the primary
                // rather than failing the whole query without trying.
                candidates.push((host.to_string(), false));
            }
            let trace_on = options.trace;
            let mut rungs: Vec<SpanBuilder> = Vec::new();
            let mut observations: Vec<Observation> = Vec::new();
            let mut total_chain = Duration::ZERO;
            let mut fetched: Option<Result<String, XrpcError>> = None;
            for (rung, (fhost, probe)) in candidates.iter().enumerate() {
                if *probe {
                    sink.breaker_probes.fetch_add(1, Ordering::Relaxed);
                }
                if rung > 0 {
                    sink.replica_failovers.fetch_add(1, Ordering::Relaxed);
                }
                let has_alternative =
                    candidates[rung + 1..].iter().any(|(_, p)| !*p);
                let wait = if has_alternative {
                    retry.deadline.min(BUSY_SWITCH_WAIT)
                } else {
                    retry.deadline
                };
                let w0 = total_chain;
                let (chain, failed_attempts, result, spans) =
                    fetch_document(&self.core, fhost, uri, name, lane, rung as u32, wait);
                total_chain += chain;
                if trace_on {
                    let mut sb = SpanBuilder::new("doc.rung", "doc")
                        .at(w0)
                        .lasting(chain)
                        .arg("peer", fhost.as_str())
                        .arg("rung", rung.to_string())
                        .arg("kind", if *probe { "probe" } else { "primary" })
                        .arg("breaker", board.state(fhost).name());
                    for a in spans {
                        sb.push_child(a);
                    }
                    rungs.push(sb);
                }
                observations.push(Observation {
                    peer: fhost.clone(),
                    ok: result.is_ok(),
                    failed_attempts,
                    chain,
                    probe: *probe,
                });
                match result {
                    Ok(xml) => {
                        fetched = Some(Ok(xml));
                        break;
                    }
                    Err(e) => {
                        let terminal = !e.failover_eligible();
                        fetched = Some(Err(e));
                        if terminal {
                            break;
                        }
                    }
                }
            }
            let fetched = fetched.expect("at least one fetch candidate");
            sink.charge_chain(total_chain);
            if self.peer.is_empty() {
                self.core.apply_observations(total_chain, &observations);
                if let Some(tracer) = self.core.tracer() {
                    let anchor = tracer.clock_ns();
                    let mut sb = SpanBuilder::new("doc.fetch", "doc")
                        .lasting(total_chain)
                        .arg("uri", uri)
                        .arg(
                            "outcome",
                            match &fetched {
                                Ok(_) => "ok".to_string(),
                                Err(e) => e.code().to_string(),
                            },
                        );
                    for r in rungs {
                        sb.push_child(r);
                    }
                    tracer.submit(anchor, ROOT_SPAN, sb);
                    tracer.advance(total_chain);
                }
            }
            let xml = fetched.map_err(EvalError::from)?;
            let t0 = Instant::now();
            let d = xqd_xml::parse_document(store, &xml, Some(uri))
                .map_err(|e| EvalError::new(format!("shredding {uri}: {e}")))?;
            sink.shred_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
            return Ok(d);
        }
        // a plain name on a peer refers to that peer's own document (the
        // paper's remote functions use local names, e.g. doc("depts.xml"))
        if !self.peer.is_empty() && !uri.contains("://") {
            let canonical = format!("xrpc://{}/{}", self.peer, uri);
            if let Some(d) = store.doc_by_uri(&canonical) {
                return Ok(d);
            }
            // a replica evaluating a shipped body: its copy is registered
            // under the *primary's* canonical URI, which the catalog knows
            let replicated = self.core.catalog.lock().unwrap().canonical_on(&self.peer, uri);
            if let Some(canonical) = replicated {
                if let Some(d) = store.doc_by_uri(&canonical) {
                    return Ok(d);
                }
            }
        }
        Err(EvalError::new(format!("document not found: {uri}")))
    }
}

/// One data-shipping fetch of `uri` from `fhost` under the fault plan and
/// retry policy. The whole-document payload *is* the message here, so
/// truncation or corruption of either direction mangles it. Returns the
/// simulated chain consumed, the number of failed attempts (for the health
/// scoreboard), and the document text or the typed error that ended the
/// fetch.
fn fetch_document(
    core: &FedCore,
    fhost: &str,
    uri: &str,
    name: &str,
    lane: u64,
    rung: u32,
    wait: Duration,
) -> (Duration, u32, Result<String, XrpcError>, Vec<SpanBuilder>) {
    let options = core.options();
    let retry = options.retry;
    let plan = options.fault;
    let sink = &core.metrics;
    let model = core.model;
    let trace_on = options.trace;
    let mut attempts: Vec<SpanBuilder> = Vec::new();
    let mut chain = Duration::ZERO;
    let mut failed = 0u32;
    loop {
        let attempt_start = chain;
        let seq = plan.map(|_| fault_seq(lane, rung, failed));
        let fault = match (plan, seq) {
            (Some(p), Some(s)) => p.decide(fhost, s),
            _ => None,
        };
        if fault.is_some() {
            sink.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        let budget = retry.deadline.saturating_sub(chain);
        let attempt: Result<String, XrpcError> = 'attempt: {
            match fault {
                Some(Fault::PeerDown) => {
                    chain += model.latency;
                    break 'attempt Err(XrpcError::PeerBusy {
                        peer: fhost.to_string(),
                        detail: "peer down (injected fault)".to_string(),
                        retry_after: BUSY_SWITCH_WAIT,
                    });
                }
                Some(Fault::Hang) => {
                    chain += budget;
                    break 'attempt Err(XrpcError::Timeout {
                        peer: fhost.to_string(),
                        deadline: retry.deadline,
                    });
                }
                Some(Fault::RemotePanic) => {
                    break 'attempt Err(XrpcError::RemoteFault {
                        peer: fhost.to_string(),
                        code: "xrpc:panic".to_string(),
                        message: format!("peer {fhost} crashed while serializing {name}"),
                    });
                }
                _ => {}
            }
            // the slot wait is bounded by the ladder's per-rung wait AND the
            // remaining deadline budget — a chain that already ate most of
            // the deadline must not block the full wait on a busy slot
            let peer_obj = match core.take_peer(fhost, wait.min(budget)) {
                Ok(p) => p,
                Err(e) => break 'attempt Err(e),
            };
            let t0 = Instant::now();
            let result = peer_obj
                .store
                .doc_by_uri(uri)
                .or_else(|| peer_obj.store.doc_by_uri(name))
                .map(|d| {
                    xqd_xml::serialize_document(peer_obj.store.doc(d), &peer_obj.store.names)
                })
                .ok_or_else(|| XrpcError::RemoteFault {
                    peer: fhost.to_string(),
                    code: "xrpc:document-not-found".to_string(),
                    message: format!("document not found on {fhost}: {name}"),
                });
            sink.serialize_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
            core.put_peer(peer_obj);
            let xml = match result {
                Ok(x) => x,
                Err(e) => break 'attempt Err(e),
            };
            let mut spent = Duration::ZERO;
            if let (Some(Fault::Latency), Some(p)) = (fault, plan.as_ref()) {
                spent += p.extra_latency;
            }
            match fault {
                Some(Fault::TruncateRequest | Fault::TruncateResponse) => {
                    let plan = plan.as_ref().unwrap();
                    let cut =
                        char_floor(&xml, plan.mangle_position(fhost, seq.unwrap(), xml.len()));
                    sink.document_bytes.fetch_add(cut as u64, Ordering::Relaxed);
                    sink.transfers.fetch_add(1, Ordering::Relaxed);
                    chain += spent + model.transfer_time(cut as u64);
                    break 'attempt Err(XrpcError::TransportCorrupt {
                        peer: fhost.to_string(),
                        detail: format!("document payload truncated at byte {cut}"),
                    });
                }
                Some(Fault::CorruptRequest | Fault::CorruptResponse) => {
                    let plan = plan.as_ref().unwrap();
                    let pos = plan.mangle_position(fhost, seq.unwrap(), xml.len());
                    sink.document_bytes.fetch_add(xml.len() as u64, Ordering::Relaxed);
                    sink.transfers.fetch_add(1, Ordering::Relaxed);
                    chain += spent + model.transfer_time(xml.len() as u64);
                    break 'attempt Err(XrpcError::TransportCorrupt {
                        peer: fhost.to_string(),
                        detail: format!("document payload byte {pos} is not valid UTF-8"),
                    });
                }
                _ => {}
            }
            let bytes = xml.len() as u64;
            sink.document_bytes.fetch_add(bytes, Ordering::Relaxed);
            sink.transfers.fetch_add(1, Ordering::Relaxed);
            spent += model.transfer_time(bytes);
            if spent > budget {
                chain += budget;
                break 'attempt Err(XrpcError::Timeout {
                    peer: fhost.to_string(),
                    deadline: retry.deadline,
                });
            }
            chain += spent;
            Ok(xml)
        };
        if trace_on {
            let mut sb = SpanBuilder::new("doc.attempt", "doc")
                .at(attempt_start)
                .lasting(chain.saturating_sub(attempt_start))
                .arg("peer", fhost)
                .arg("attempt", failed.to_string());
            if let Some(f) = fault {
                sb = sb.arg("fault", f.name());
            }
            sb = match &attempt {
                Ok(xml) => sb.arg("outcome", "ok").arg("bytes", xml.len().to_string()),
                Err(e) => sb.arg("outcome", e.code()),
            };
            attempts.push(sb);
        }
        match attempt {
            Ok(xml) => return (chain, failed, Ok(xml), attempts),
            Err(e) => {
                if !e.retryable() || failed + 1 >= retry.max_attempts {
                    return (chain, failed + 1, Err(e), attempts);
                }
                failed += 1;
                sink.retries.fetch_add(1, Ordering::Relaxed);
                let jitter = match (plan, seq) {
                    (Some(p), Some(s)) => p.jitter(fhost, s),
                    _ => 0.0,
                };
                let wait = retry.backoff_with_hint(failed, jitter, e.retry_after());
                if trace_on {
                    attempts.push(
                        SpanBuilder::new("doc.backoff", "doc")
                            .at(chain)
                            .lasting(wait)
                            .arg("peer", fhost),
                    );
                }
                chain += wait;
                if chain >= retry.deadline {
                    return (
                        chain,
                        failed,
                        Err(XrpcError::Cancelled {
                            peer: fhost.to_string(),
                            reason: format!(
                                "fetch retry budget exhausted after {failed} failed attempt(s)"
                            ),
                        }),
                        attempts,
                    );
                }
            }
        }
    }
}

/// Evaluates one decoded call against `store` (binding its parameters) and
/// returns the raw result sequence.
fn eval_one_call(
    core: &Arc<FedCore>,
    peer: &str,
    store: &mut Store,
    module: &QueryModule,
    plan: Option<&xqd_xquery::Plan>,
    static_ctx: &StaticContext,
    params: &[(String, Sequence)],
) -> EvalResult<Sequence> {
    let mut resolver = FedLink { core: Arc::clone(core), peer: peer.to_string() };
    let mut nested = FedLink { core: Arc::clone(core), peer: peer.to_string() };
    let mut ev = Evaluator::new(store, &module.functions, &mut resolver)
        .with_remote(&mut nested)
        .with_static_context(static_ctx.clone())
        .with_indexes(core.options().use_indexes);
    for (name, value) in params {
        ev.bind(name, value.clone());
    }
    match plan {
        Some(p) => p.eval(&mut ev),
        None => ev.eval(&module.body),
    }
}

/// Syntactic gate for splitting a Bulk RPC call list across store
/// snapshots: the body (and every function it may call) must not attach
/// documents to the store — no constructors, no nested `execute at`, and
/// every `fn:doc` argument is a literal resolving on this peer.
fn body_snapshot_safe(module: &QueryModule, peer: &str) -> bool {
    fn expr_safe(e: &Expr, peer: &str) -> bool {
        match e {
            Expr::Execute { .. } => false,
            Expr::Construct(_) => false,
            Expr::FunCall { name, args } if name == "doc" || name == "fn:doc" => {
                match args.as_slice() {
                    [Expr::Literal(a)] => {
                        let uri = a.to_lexical();
                        !uri.contains("://")
                            || uri.strip_prefix("xrpc://").is_some_and(|rest| {
                                rest.split_once('/').is_some_and(|(host, _)| host == peer)
                            })
                    }
                    _ => false,
                }
            }
            other => {
                let mut safe = true;
                xqd_xquery::normalize::map_children_infallible(other, &mut |c| {
                    if safe && !expr_safe(c, peer) {
                        safe = false;
                    }
                    c.clone()
                });
                safe
            }
        }
    }
    expr_safe(&module.body, peer) && module.functions.iter().all(|f| expr_safe(&f.body, peer))
}

/// Remote-side handling of one request message against `store` (the target
/// peer's store): decode, evaluate every carried call, encode the response.
/// Shared by the sequential, re-entrant and scatter paths so their
/// observable behavior cannot drift apart.
fn process_request(
    core: &Arc<FedCore>,
    peer: &str,
    store: &mut Store,
    request: &str,
) -> EvalResult<String> {
    let t0 = Instant::now();
    let decoded = decode_request(store, request)?;
    core.metrics.shred_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);

    let module = parse_query(&decoded.query)
        .map_err(|e| EvalError::new(format!("remote parse error: {e}")))?;

    let options = core.options();
    // Peers compile per request — the request is the unit of determinism
    // under concurrent scatter/hedged delivery, so peer-side compiles are
    // kept off the plan counters and out of the coordinator's cache.
    let plan = options.compile.then(|| {
        xqd_xquery::compile_module(
            &module.functions,
            &module.body,
            options.use_indexes,
            &decoded.static_ctx,
        )
    });
    let t_exec = Instant::now();
    let results = if options.bulk_workers > 1
        && decoded.calls.len() > 1
        && body_snapshot_safe(&module, peer)
    {
        eval_calls_parallel(core, peer, store, &module, plan.as_ref(), &decoded.static_ctx, &decoded.calls, options.bulk_workers)?
    } else {
        let mut results = Vec::with_capacity(decoded.calls.len());
        for params in &decoded.calls {
            results.push(eval_one_call(core, peer, store, &module, plan.as_ref(), &decoded.static_ctx, params)?);
        }
        results
    };
    core.metrics
        .remote_exec_ns
        .fetch_add(as_ns(t_exec.elapsed()), Ordering::Relaxed);

    let t_ser = Instant::now();
    let response = encode_response(
        store,
        decoded.semantics,
        &results,
        decoded.result_spec.as_ref(),
    )?;
    core.metrics
        .serialize_ns
        .fetch_add(as_ns(t_ser.elapsed()), Ordering::Relaxed);
    Ok(response)
}

/// Splits the call list of one Bulk RPC into contiguous chunks evaluated on
/// cloned store snapshots by scoped worker threads. Snapshots preserve the
/// base store's document ranks, so gathered node ids stay valid in the base
/// store — guarded both syntactically ([`body_snapshot_safe`]) and at
/// runtime (a worker whose snapshot grew is discarded and its chunk re-run
/// sequentially against the base store).
#[allow(clippy::too_many_arguments)]
fn eval_calls_parallel(
    core: &Arc<FedCore>,
    peer: &str,
    store: &mut Store,
    module: &QueryModule,
    plan: Option<&xqd_xquery::Plan>,
    static_ctx: &StaticContext,
    calls: &[Vec<(String, Sequence)>],
    workers: usize,
) -> EvalResult<Vec<Sequence>> {
    let n = calls.len();
    let workers = workers.min(n);
    let chunk_len = n.div_ceil(workers);
    let base_docs = store.docs().count();

    let mut chunk_results: Vec<(std::ops::Range<usize>, bool, Vec<EvalResult<Sequence>>)> =
        Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let range = (w * chunk_len)..(((w + 1) * chunk_len).min(n));
            if range.is_empty() {
                continue;
            }
            let mut snapshot = store.clone();
            let core = Arc::clone(core);
            let r = range.clone();
            handles.push((
                range,
                s.spawn(move || {
                    let out: Vec<EvalResult<Sequence>> = r
                        .map(|ci| {
                            eval_one_call(&core, peer, &mut snapshot, module, plan, static_ctx, &calls[ci])
                        })
                        .collect();
                    let clean = snapshot.docs().count() == base_docs;
                    (clean, out)
                }),
            ));
        }
        for (range, handle) in handles {
            match handle.join() {
                Ok((clean, out)) => chunk_results.push((range, clean, out)),
                Err(payload) => {
                    // a poisoned bulk worker fails its calls with a typed
                    // remote fault instead of killing the peer; marked
                    // clean so the panicking chunk is NOT re-run against
                    // the base store on this thread
                    let err = EvalError::from(XrpcError::RemoteFault {
                        peer: peer.to_string(),
                        code: "xrpc:panic".to_string(),
                        message: format!(
                            "bulk worker panicked: {}",
                            panic_message(payload.as_ref())
                        ),
                    });
                    let out = range.clone().map(|_| Err(err.clone())).collect();
                    chunk_results.push((range, true, out));
                }
            }
        }
    });

    let mut results: Vec<Sequence> = Vec::with_capacity(n);
    for (range, clean, out) in chunk_results {
        if clean {
            for r in out {
                results.push(r?);
            }
        } else {
            // the snapshot diverged (body attached documents despite the
            // gate): discard and recompute this chunk against the base store
            for ci in range {
                results.push(eval_one_call(core, peer, store, module, plan, static_ctx, &calls[ci])?);
            }
        }
    }
    Ok(results)
}

/// Largest index `<= pos` that is a char boundary of `s`, so truncation
/// always yields valid UTF-8 (the mangled message still fails to *decode*:
/// any cut strictly before the end loses the closing `>` of the envelope).
fn char_floor(s: &str, pos: usize) -> usize {
    let mut p = pos.min(s.len());
    while p > 0 && !s.is_char_boundary(p) {
        p -= 1;
    }
    p
}

/// Human-readable form of a captured panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Runs the remote side of one delivery with panic capture. Remote
/// evaluation failures and panics become wire-encoded fault responses (they
/// travel back through the real codec); caller-side slot failures
/// (unknown/busy peer) stay local and typed — no message ever crossed the
/// wire for them.
fn run_remote(
    peer: &str,
    request: &str,
    inject_panic: bool,
    process: &mut dyn FnMut(&str) -> EvalResult<String>,
) -> Result<String, XrpcError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected fault: remote worker panic on peer {peer}");
        }
        process(request)
    }));
    match outcome {
        Ok(Ok(response)) => Ok(response),
        Ok(Err(e)) => match XrpcError::from_eval(peer, &e) {
            slot @ (XrpcError::UnknownPeer { .. } | XrpcError::PeerBusy { .. }) => Err(slot),
            remote => Ok(encode_fault(&remote)),
        },
        Err(payload) => Ok(encode_fault(&XrpcError::RemoteFault {
            peer: peer.to_string(),
            code: "xrpc:panic".to_string(),
            message: panic_message(payload.as_ref()),
        })),
    }
}

/// Drives one logical RPC across the simulated wire under the installed
/// fault plan and retry policy: mangles/drops/stalls messages per the
/// deterministic schedule, replays retryable failures with exponential
/// backoff and deterministic jitter, and accounts bytes and transfers for
/// every attempt (failed attempts moved real bytes too).
///
/// Returns the total simulated chain consumed by the call — transfer legs,
/// injected stalls and backoff waits — plus the number of failed attempts
/// (for the health scoreboard) and the response or the typed error that
/// ended it. The caller bills the chain to the serialized / overlapped
/// clocks as appropriate for its execution mode. Fault ordinals are drawn
/// from the caller's `(lane, rung)` stream, never from shared state.
fn transport_call(
    core: &FedCore,
    peer: &str,
    lane: u64,
    rung: u32,
    request: &str,
    process: &mut dyn FnMut(&str, Duration) -> EvalResult<String>,
) -> (Duration, u32, Result<String, XrpcError>, Vec<SpanBuilder>) {
    let options = core.options();
    let retry = options.retry;
    let plan = options.fault;
    let sink = &core.metrics;
    let model = core.model;
    let trace_on = options.trace;
    // span builders with rung-relative offsets; empty (no allocation
    // beyond the Vec header) when tracing is off
    let mut attempts: Vec<SpanBuilder> = Vec::new();
    let mut chain = Duration::ZERO;
    let mut failed = 0u32;
    loop {
        let attempt_start = chain;
        let seq = plan.map(|_| fault_seq(lane, rung, failed));
        let fault = match (plan, seq) {
            (Some(p), Some(s)) => p.decide(peer, s),
            _ => None,
        };
        if fault.is_some() {
            sink.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        let budget = retry.deadline.saturating_sub(chain);

        let outcome: Result<String, XrpcError> = 'attempt: {
            let mut spent = Duration::ZERO;
            // ---- request leg (possibly mangled or lost in flight) ----
            let delivered: Cow<'_, str> = match fault {
                Some(Fault::TruncateRequest) => {
                    let plan = plan.as_ref().unwrap();
                    let cut = char_floor(
                        request,
                        plan.mangle_position(peer, seq.unwrap(), request.len()),
                    );
                    Cow::Borrowed(&request[..cut])
                }
                _ => Cow::Borrowed(request),
            };
            sink.message_bytes.fetch_add(delivered.len() as u64, Ordering::Relaxed);
            sink.transfers.fetch_add(1, Ordering::Relaxed);
            sink.charge_keysets(&delivered);
            spent += model.transfer_time(delivered.len() as u64);
            match fault {
                Some(Fault::PeerDown) => {
                    chain += spent;
                    break 'attempt Err(XrpcError::PeerBusy {
                        peer: peer.to_string(),
                        detail: "peer down (injected fault)".to_string(),
                        retry_after: BUSY_SWITCH_WAIT,
                    });
                }
                Some(Fault::Hang) => {
                    // the caller's clock runs until it gives up at the
                    // deadline (simulated — no real wait)
                    chain += budget;
                    break 'attempt Err(XrpcError::Timeout {
                        peer: peer.to_string(),
                        deadline: retry.deadline,
                    });
                }
                Some(Fault::Latency) => spent += plan.as_ref().unwrap().extra_latency,
                _ => {}
            }

            // ---- remote side ----
            // A corrupted request is not even valid UTF-8: the peer's XRPC
            // layer rejects it outright with a transport fault. Truncated
            // requests go through the real decode path and fail there.
            let remote_outcome = match fault {
                Some(Fault::CorruptRequest) => {
                    let plan = plan.as_ref().unwrap();
                    let pos = plan.mangle_position(peer, seq.unwrap(), request.len());
                    Ok(encode_fault(&XrpcError::TransportCorrupt {
                        peer: peer.to_string(),
                        detail: format!("request byte {pos} is not valid UTF-8"),
                    }))
                }
                _ => {
                    // whatever the request leg consumed comes out of the
                    // budget the remote side (and its slot wait) may spend
                    let attempt_budget = budget.saturating_sub(spent);
                    let mut bounded = |req: &str| process(req, attempt_budget);
                    run_remote(
                        peer,
                        &delivered,
                        matches!(fault, Some(Fault::RemotePanic)),
                        &mut bounded,
                    )
                }
            };
            let response = match remote_outcome {
                Ok(r) => r,
                Err(e) => {
                    chain += spent;
                    break 'attempt Err(e);
                }
            };

            // ---- response leg (possibly mangled in flight) ----
            match fault {
                Some(Fault::TruncateResponse) => {
                    let plan = plan.as_ref().unwrap();
                    let cut = char_floor(
                        &response,
                        plan.mangle_position(peer, seq.unwrap(), response.len()),
                    );
                    sink.message_bytes.fetch_add(cut as u64, Ordering::Relaxed);
                    sink.transfers.fetch_add(1, Ordering::Relaxed);
                    sink.charge_keysets(&response[..cut]);
                    chain += spent + model.transfer_time(cut as u64);
                    break 'attempt Err(XrpcError::TransportCorrupt {
                        peer: peer.to_string(),
                        detail: format!("response truncated at byte {cut}"),
                    });
                }
                Some(Fault::CorruptResponse) => {
                    let plan = plan.as_ref().unwrap();
                    let pos = plan.mangle_position(peer, seq.unwrap(), response.len());
                    sink.message_bytes.fetch_add(response.len() as u64, Ordering::Relaxed);
                    sink.transfers.fetch_add(1, Ordering::Relaxed);
                    sink.charge_keysets(&response);
                    chain += spent + model.transfer_time(response.len() as u64);
                    break 'attempt Err(XrpcError::TransportCorrupt {
                        peer: peer.to_string(),
                        detail: format!("response byte {pos} is not valid UTF-8"),
                    });
                }
                _ => {}
            }
            sink.message_bytes.fetch_add(response.len() as u64, Ordering::Relaxed);
            sink.transfers.fetch_add(1, Ordering::Relaxed);
            sink.charge_keysets(&response);
            spent += model.transfer_time(response.len() as u64);

            if spent > budget {
                chain += budget;
                break 'attempt Err(XrpcError::Timeout {
                    peer: peer.to_string(),
                    deadline: retry.deadline,
                });
            }
            chain += spent;

            // a wire-encoded fault response decodes back into its typed
            // error (normal responses have an env/response child, never
            // env/fault, so this cannot misfire on result data)
            if response.contains("<fault ") {
                if let Some(e) = decode_fault(&response) {
                    break 'attempt Err(e);
                }
            }
            Ok(response)
        };

        if trace_on {
            let mut sb = SpanBuilder::new("rpc.attempt", "rpc")
                .at(attempt_start)
                .lasting(chain.saturating_sub(attempt_start))
                .arg("peer", peer)
                .arg("attempt", failed.to_string());
            if let Some(f) = fault {
                sb = sb.arg("fault", f.name());
            }
            sb = match &outcome {
                Ok(r) => sb.arg("outcome", "ok").arg("payload", crate::message::payload_kind(r)),
                Err(e) => sb.arg("outcome", e.code()),
            };
            attempts.push(sb);
        }

        match outcome {
            Ok(response) => return (chain, failed, Ok(response), attempts),
            Err(e) => {
                if !e.retryable() || failed + 1 >= retry.max_attempts {
                    return (chain, failed + 1, Err(e), attempts);
                }
                failed += 1;
                sink.retries.fetch_add(1, Ordering::Relaxed);
                let jitter = match (plan, seq) {
                    (Some(p), Some(s)) => p.jitter(peer, s),
                    _ => 0.0,
                };
                let wait = retry.backoff_with_hint(failed, jitter, e.retry_after());
                if trace_on {
                    attempts.push(
                        SpanBuilder::new("rpc.backoff", "rpc")
                            .at(chain)
                            .lasting(wait)
                            .arg("peer", peer),
                    );
                }
                chain += wait;
                if chain >= retry.deadline {
                    return (
                        chain,
                        failed,
                        Err(XrpcError::Cancelled {
                            peer: peer.to_string(),
                            reason: format!(
                                "retry budget exhausted after {failed} failed attempt(s)"
                            ),
                        }),
                        attempts,
                    );
                }
            }
        }
    }
}

/// Condvar wait for a busy peer slot when the ladder still has an
/// alternative healthy replica to try: prefer switching hosts over
/// blocking on the slot.
const BUSY_SWITCH_WAIT: Duration = Duration::from_millis(250);

/// Ranks a candidate host set for one ladder: healthiest tier first
/// (closed breakers before half-open probes), rendezvous score under the
/// replica seed breaking ties within a tier, names as the final tie-break.
/// Hosts behind an open breaker are dropped from the admitted list; the
/// first of them is reported so an all-rejected ladder can fail fast with
/// a typed [`XrpcError::BreakerOpen`].
/// `(host, probe)` pairs a ladder may dial, in preference order.
pub(crate) type Candidates = Vec<(String, bool)>;
/// The first open-breaker host and its remaining cooldown, if any.
pub(crate) type RejectedHost = Option<(String, Duration)>;

pub(crate) fn admitted_candidates(
    board: &Scoreboard,
    seed: u64,
    mut hosts: Vec<String>,
) -> (Candidates, RejectedHost) {
    hosts.sort_by(|a, b| {
        board
            .health_rank(a)
            .cmp(&board.health_rank(b))
            .then_with(|| mix_score(seed, b, 0).cmp(&mix_score(seed, a, 0)))
            .then_with(|| a.cmp(b))
    });
    hosts.dedup();
    let mut admitted = Vec::with_capacity(hosts.len());
    let mut rejected = None;
    for host in hosts {
        match board.admission(&host) {
            Admission::Allow { probe } => admitted.push((host, probe)),
            Admission::Reject { retry_after } => {
                if rejected.is_none() {
                    rejected = Some((host, retry_after));
                }
            }
        }
    }
    (admitted, rejected)
}

/// What one failover ladder did: its accounting, health observations and
/// final outcome. Observations are applied to the live scoreboard by the
/// *caller* (sequentially, or at the scatter gather in slot order) so the
/// board's evolution never depends on thread interleaving.
struct LadderOutcome {
    /// Sum of every attempt chain — the serialized network bill (a hedge's
    /// losing attempt really moved bytes, so it bills here too).
    serialized: Duration,
    /// Wall clock the ladder occupied: per rung the attempt chain, except a
    /// hedged pair which ends when the winning response lands — the loser
    /// is cancelled and costs no further wall clock.
    window: Duration,
    observations: Vec<Observation>,
    hedges: u64,
    hedge_wins: u64,
    probes: u64,
    failovers: u64,
    outcome: Result<String, XrpcError>,
    /// The ladder's span tree (rung and attempt children with
    /// ladder-relative offsets), built on whichever thread ran the ladder
    /// and submitted by the coordinator at its gather point. `None` when
    /// tracing is off.
    trace: Option<SpanBuilder>,
}

impl LadderOutcome {
    /// A ladder that never dispatched (fast-fail or a poisoned worker).
    fn failed(err: XrpcError) -> Self {
        LadderOutcome {
            serialized: Duration::ZERO,
            window: Duration::ZERO,
            observations: Vec::new(),
            hedges: 0,
            hedge_wins: 0,
            probes: 0,
            failovers: 0,
            outcome: Err(err),
            trace: None,
        }
    }
}

/// The unified failover ladder of one logical call: same-peer retries (in
/// [`transport_call`]) → next replica → hedged secondary → caller-side
/// degradation (the caller's move, on a degradable final error).
///
/// Candidates are every catalog host able to stand in for `primary`,
/// healthiest first; hosts behind an open breaker are skipped entirely, a
/// half-open host is admitted as a single probe. Each rung gets a fresh
/// deadline budget (a hung primary must not starve the replica's chance to
/// answer). The ladder stops early on errors that would reproduce anywhere
/// — evaluation faults are deterministic, so no replica can do better —
/// and otherwise walks on while [`XrpcError::failover_eligible`] holds.
///
/// When hedging is enabled and the preferred host has not answered within
/// the (deterministically jittered) hedge delay, the next healthy
/// candidate is dispatched as a secondary attempt and the first valid
/// response wins; both attempts bill the serialized clock, the window only
/// runs to the winner.
fn call_with_failover(
    core: &FedCore,
    board: &Scoreboard,
    primary: &str,
    lane: u64,
    request: &str,
    process: &mut dyn FnMut(&str, &str, Duration) -> EvalResult<String>,
) -> LadderOutcome {
    let mut rungs = Vec::new();
    let mut out = ladder_rungs(core, board, primary, lane, request, process, &mut rungs);
    if core.options().trace {
        let mut sb = SpanBuilder::new("rpc.ladder", "rpc")
            .lasting(out.window)
            .arg("peer", primary)
            .arg(
                "outcome",
                match &out.outcome {
                    Ok(_) => "ok".to_string(),
                    Err(e) => e.code().to_string(),
                },
            );
        for r in rungs {
            sb.push_child(r);
        }
        out.trace = Some(sb);
    }
    out
}

/// The rung walk of [`call_with_failover`]; `rungs` collects one
/// ladder-relative span per dialed rung when tracing is on.
fn ladder_rungs(
    core: &FedCore,
    board: &Scoreboard,
    primary: &str,
    lane: u64,
    request: &str,
    process: &mut dyn FnMut(&str, &str, Duration) -> EvalResult<String>,
    rungs: &mut Vec<SpanBuilder>,
) -> LadderOutcome {
    let options = core.options();
    let trace_on = options.trace;
    let deadline = options.retry.deadline;
    let seed = options.replica_seed;
    let hosts = core.catalog.lock().unwrap().hosts_serving_peer(primary);
    let (candidates, rejected) = admitted_candidates(board, seed, hosts);
    if candidates.is_empty() {
        // every breaker open: fail fast — a tripped peer is never re-dialed
        let (host, retry_after) =
            rejected.unwrap_or_else(|| (primary.to_string(), Duration::ZERO));
        return LadderOutcome::failed(XrpcError::BreakerOpen { peer: host, retry_after });
    }
    let mut out = LadderOutcome::failed(XrpcError::UnknownPeer { peer: primary.to_string() });
    let mut rung: u32 = 0;
    let mut i = 0;
    while i < candidates.len() {
        let (host, probe) = &candidates[i];
        if *probe {
            out.probes += 1;
        }
        if rung > 0 {
            out.failovers += 1;
        }
        let has_alternative = candidates[i + 1..].iter().any(|(_, p)| !*p);
        let wait = if has_alternative { deadline.min(BUSY_SWITCH_WAIT) } else { deadline };
        // hedge armed on the preferred (non-probe) rung only, when the very
        // next candidate is healthy
        let hedge = if rung == 0 && !probe {
            options.hedge.and_then(|base| match candidates.get(i + 1) {
                Some((h2, false)) => {
                    let delay = base.mul_f64(0.5 + 0.5 * seeded_fraction(seed, host, lane));
                    Some((h2.clone(), delay))
                }
                _ => None,
            })
        } else {
            None
        };

        // the slot wait passed down is the rung's switch policy bounded by
        // the attempt's remaining deadline budget (satellite of the
        // unbounded busy-wait fix: no path may out-wait its own deadline)
        let w0 = out.window;
        let rung_idx = rung;
        let mut rung_process =
            |req: &str, remaining: Duration| process(host, req, wait.min(remaining));
        let (chain_p, failed_p, res_p, spans_p) =
            transport_call(core, host, lane, rung, request, &mut rung_process);
        rung += 1;
        if trace_on {
            let mut sb = SpanBuilder::new("rpc.rung", "rpc")
                .at(w0)
                .lasting(chain_p)
                .arg("peer", host.as_str())
                .arg("rung", rung_idx.to_string())
                .arg("kind", if *probe { "probe" } else { "primary" })
                .arg("breaker", board.state(host).name());
            for a in spans_p {
                sb.push_child(a);
            }
            rungs.push(sb);
        }
        out.observations.push(Observation {
            peer: host.clone(),
            ok: res_p.is_ok(),
            failed_attempts: failed_p,
            chain: chain_p,
            probe: *probe,
        });

        // the hedge timer fired before the preferred host answered
        let hedge = hedge.filter(|(_, delay)| chain_p > *delay);
        if let Some((host2, delay)) = hedge {
            out.hedges += 1;
            let wait2 = deadline.min(BUSY_SWITCH_WAIT);
            let mut hedge_process =
                |req: &str, remaining: Duration| process(&host2, req, wait2.min(remaining));
            let (chain_h, failed_h, res_h, spans_h) =
                transport_call(core, &host2, lane, rung, request, &mut hedge_process);
            rung += 1;
            if trace_on {
                let mut sb = SpanBuilder::new("rpc.rung", "rpc")
                    .at(w0 + delay)
                    .lasting(chain_h)
                    .arg("peer", host2.as_str())
                    .arg("rung", rung_idx.saturating_add(1).to_string())
                    .arg("kind", "hedge")
                    .arg("breaker", board.state(&host2).name());
                for a in spans_h {
                    sb.push_child(a);
                }
                rungs.push(sb);
            }
            out.observations.push(Observation {
                peer: host2.clone(),
                ok: res_h.is_ok(),
                failed_attempts: failed_h,
                chain: chain_h,
                probe: false,
            });
            let t_p = chain_p;
            let t_h = delay + chain_h;
            out.serialized += chain_p + chain_h;
            match (res_p, res_h) {
                (Ok(rp), Ok(rh)) => {
                    // responses are bit-identical (content-based codecs);
                    // the strictly earlier one wins, primary on a tie
                    if t_h < t_p {
                        out.hedge_wins += 1;
                        out.window += t_h;
                        out.outcome = Ok(rh);
                    } else {
                        out.window += t_p;
                        out.outcome = Ok(rp);
                    }
                    return out;
                }
                (Ok(rp), Err(_)) => {
                    out.window += t_p;
                    out.outcome = Ok(rp);
                    return out;
                }
                (Err(_), Ok(rh)) => {
                    out.hedge_wins += 1;
                    out.window += t_h;
                    out.outcome = Ok(rh);
                    return out;
                }
                (Err(ep), Err(eh)) => {
                    out.window += t_p.max(t_h);
                    if !ep.failover_eligible() {
                        out.outcome = Err(ep);
                        return out;
                    }
                    if !eh.failover_eligible() {
                        out.outcome = Err(eh);
                        return out;
                    }
                    // both the preferred host and the hedge target failed:
                    // resume the ladder past the pair
                    out.outcome = Err(eh);
                    i += 2;
                    continue;
                }
            }
        }

        out.serialized += chain_p;
        out.window += chain_p;
        match res_p {
            Ok(r) => {
                out.outcome = Ok(r);
                return out;
            }
            Err(e) => {
                let terminal = !e.failover_eligible();
                out.outcome = Err(e);
                if terminal {
                    return out;
                }
                i += 1;
            }
        }
    }
    out
}

/// Rewrites a call body for coordinator-side evaluation: every literal
/// plain-name `fn:doc` argument becomes the canonical `xrpc://<peer>/<name>`
/// URI so the coordinator's resolver data-ships it. Returns `None` when
/// the body is ineligible for degradation — nested `execute at`, computed
/// document URIs, or URIs on foreign schemes.
fn degrade_module(module: &QueryModule, peer: &str) -> Option<QueryModule> {
    fn rewrite(e: &Expr, peer: &str, ok: &mut bool) -> Expr {
        match e {
            Expr::Execute { .. } => {
                *ok = false;
                e.clone()
            }
            Expr::FunCall { name, args } if name == "doc" || name == "fn:doc" => {
                match args.as_slice() {
                    [Expr::Literal(a)] => {
                        let uri = a.to_lexical();
                        if uri.starts_with("xrpc://") {
                            e.clone()
                        } else if !uri.contains("://") {
                            Expr::FunCall {
                                name: name.clone(),
                                args: vec![Expr::Literal(Atomic::Str(format!(
                                    "xrpc://{peer}/{uri}"
                                )))],
                            }
                        } else {
                            *ok = false;
                            e.clone()
                        }
                    }
                    _ => {
                        *ok = false;
                        e.clone()
                    }
                }
            }
            other => {
                xqd_xquery::normalize::map_children_infallible(other, &mut |c| {
                    rewrite(c, peer, ok)
                })
            }
        }
    }
    let mut ok = true;
    let body = rewrite(&module.body, peer, &mut ok);
    let functions = module
        .functions
        .iter()
        .map(|f| {
            let mut nf = f.clone();
            nf.body = rewrite(&f.body, peer, &mut ok);
            nf
        })
        .collect();
    if ok {
        Some(QueryModule { functions, body })
    } else {
        None
    }
}

/// Graceful degradation: when a peer cannot *answer* (down, corrupt link,
/// deadline exhausted), fetch the documents the body needs (data shipping —
/// itself fault-injected and retried), evaluate the body locally, then
/// round-trip the results through the same wire codec a remote answer
/// would have used. The loopback round-trip is what makes the fallback
/// semantics-preserving bit-for-bit: by-value copies still lose ancestry,
/// fragments still gain it, projections still prune — exactly as if the
/// peer had answered.
///
/// Returns `Ok(None)` when the body is ineligible (see [`degrade_module`]);
/// the caller then surfaces the typed transport error instead.
#[allow(clippy::too_many_arguments)]
fn fallback_local(
    core: &Arc<FedCore>,
    local: &mut Store,
    static_ctx: &StaticContext,
    peer: &str,
    body_src: &str,
    calls: &[Vec<(String, Sequence)>],
    projection: Option<&ExecProjection>,
    wire: WireSemantics,
) -> EvalResult<Option<Vec<Sequence>>> {
    let Ok(module) = parse_query(body_src) else { return Ok(None) };
    let Some(module) = degrade_module(&module, peer) else { return Ok(None) };
    let use_indexes = core.options().use_indexes;
    let mut results = Vec::with_capacity(calls.len());
    for params in calls {
        let mut resolver = FedLink { core: Arc::clone(core), peer: String::new() };
        let mut nested = FedLink { core: Arc::clone(core), peer: String::new() };
        let mut ev = Evaluator::new(local, &module.functions, &mut resolver)
            .with_remote(&mut nested)
            .with_static_context(static_ctx.clone())
            .with_indexes(use_indexes);
        for (name, value) in params {
            ev.bind(name, value.clone());
        }
        let seq = ev.eval(&module.body).map_err(|e| {
            if e.code.is_some() {
                e
            } else {
                // keep the "typed error or correct answer" invariant: a
                // dynamic error during degraded evaluation is the same
                // fault the peer would have reported
                EvalError::from(XrpcError::RemoteFault {
                    peer: peer.to_string(),
                    code: "err:dynamic".to_string(),
                    message: e.message,
                })
            }
        })?;
        results.push(seq);
    }
    let response = encode_response(local, wire, &results, projection.map(|p| &p.result))?;
    let decoded = decode_response(local, &response)?;
    core.metrics.fallbacks.fetch_add(1, Ordering::Relaxed);
    Ok(Some(decoded))
}

impl RemoteHandler for FedLink {
    fn execute(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        params: &[(String, Sequence)],
        body: &xqd_xquery::Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Sequence> {
        let one_call = vec![params.to_vec()];
        let mut results =
            self.execute_bulk(local, static_ctx, peer, &one_call, body, projection)?;
        Ok(results.pop().unwrap_or_default())
    }

    fn execute_bulk(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        calls: &[Vec<(String, Sequence)>],
        body: &xqd_xquery::Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Vec<Sequence>> {
        let wire = self.core.wire();
        // ---- encode request (caller side) ----
        let t0 = Instant::now();
        let body_src = body.to_string();
        let request = encode_request(
            local,
            wire,
            static_ctx,
            &body_src,
            calls,
            projection.map(|p| p.params.as_slice()),
            projection.map(|p| &p.result),
        )?;
        let sink = &self.core.metrics;
        sink.serialize_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
        sink.remote_calls.fetch_add(calls.len() as u64, Ordering::Relaxed);

        // ---- deliver through the failover ladder over the replica set ----
        let core = Arc::clone(&self.core);
        let own = self.peer.clone();
        let board = self.core.board_snapshot();
        let lane = self.core.next_lane();
        let mut process = |host: &str, req: &str, wait: Duration| -> EvalResult<String> {
            if host == own {
                // re-entrant call: the caller *is* this peer, so its store
                // is on our stack — evaluate directly instead of taking the
                // (empty) slot. The message still crossed the loopback wire.
                process_request(&core, host, local, req)
            } else {
                let mut remote = core.take_peer(host, wait).map_err(EvalError::from)?;
                let outcome = process_request(&core, host, &mut remote.store, req);
                // put the peer back regardless of the outcome
                core.put_peer(remote);
                outcome
            }
        };
        let mut ladder = call_with_failover(&self.core, &board, peer, lane, &request, &mut process);
        let sink = &self.core.metrics;
        sink.network_ns.fetch_add(as_ns(ladder.serialized), Ordering::Relaxed);
        sink.network_overlapped_ns.fetch_add(as_ns(ladder.window), Ordering::Relaxed);
        self.core.charge_ladder_counters(&ladder);
        if self.peer.is_empty() {
            self.core.apply_observations(ladder.window, &ladder.observations);
            // submit the ladder's span tree and advance the trace clock by
            // exactly the wall clock the scoreboard just advanced by
            if let Some(tracer) = self.core.tracer() {
                if let Some(tb) = ladder.trace.take() {
                    let anchor = tracer.clock_ns();
                    tracer.submit(anchor, ROOT_SPAN, tb.arg("calls", calls.len().to_string()));
                    tracer.advance(ladder.window);
                }
            }
        }

        let response = match ladder.outcome {
            Ok(r) => r,
            Err(e) => {
                if e.degradable() {
                    if let Some(sequences) = fallback_local(
                        &self.core,
                        local,
                        static_ctx,
                        peer,
                        &body_src,
                        calls,
                        projection,
                        wire,
                    )? {
                        if self.peer.is_empty() {
                            if let Some(tracer) = self.core.tracer() {
                                tracer.event(
                                    ROOT_SPAN,
                                    "rpc.degrade",
                                    "rpc",
                                    vec![
                                        ("peer", peer.to_string()),
                                        ("error", e.code().to_string()),
                                    ],
                                );
                            }
                        }
                        return Ok(sequences);
                    }
                }
                return Err(e.into());
            }
        };

        // ---- decode response (caller side) ----
        let sink = &self.core.metrics;
        let t0 = Instant::now();
        let sequences = decode_response(local, &response)?;
        sink.shred_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
        if sequences.len() != calls.len() {
            return Err(EvalError::new(format!(
                "response carries {} sequences for {} calls",
                sequences.len(),
                calls.len()
            )));
        }
        Ok(sequences)
    }

    fn execute_scatter(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        calls: &[ScatterCall<'_>],
    ) -> EvalResult<Vec<Sequence>> {
        let options = self.core.options();
        // a round targeting our own peer re-entrantly, or parallelism
        // disabled: fall back to the sequential per-call loop (identical
        // results, bytes and serialized network; no overlap credit)
        if !options.parallel_scatter || calls.iter().any(|c| c.peer == self.peer) {
            return calls
                .iter()
                .map(|c| self.execute(local, static_ctx, &c.peer, &c.params, c.body, c.projection))
                .collect();
        }

        let wire = self.core.wire();
        let sink = &self.core.metrics;

        // ---- scatter: encode every request up front, in call order ----
        // Parameters were pre-bound by the evaluator and responses only ever
        // *add* documents to the coordinator store, so these encodings are
        // byte-identical to the ones sequential execution would produce.
        let mut requests = Vec::with_capacity(calls.len());
        for c in calls {
            let t0 = Instant::now();
            let body_src = c.body.to_string();
            let one_call = vec![c.params.clone()];
            let request = encode_request(
                local,
                wire,
                static_ctx,
                &body_src,
                &one_call,
                c.projection.map(|p| p.params.as_slice()),
                c.projection.map(|p| &p.result),
            )?;
            sink.serialize_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
            sink.remote_calls.fetch_add(1, Ordering::Relaxed);
            requests.push(request);
        }

        // ---- fan out: one scoped thread per distinct destination ----
        // Each worker drives its calls through the same failover ladder as
        // sequential execution, over a shared scoreboard snapshot. Fault
        // ordinals come from per-slot lanes reserved before the spawn, so
        // the schedule is independent of thread interleaving even when two
        // slots fail over to the same replica; health observations are
        // collected per slot and applied at the gather, in slot order.
        let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
        for (i, c) in calls.iter().enumerate() {
            match groups.iter_mut().find(|(p, _)| *p == c.peer) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((&c.peer, vec![i])),
            }
        }
        let board = self.core.board_snapshot();
        let lane_base = self.core.reserve_lanes(calls.len() as u64);
        let mut slots: Vec<Option<LadderOutcome>> = (0..calls.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(groups.len());
            for (gi, group) in groups.iter().enumerate() {
                let (peer, idxs) = (group.0, &group.1);
                let core = Arc::clone(&self.core);
                let requests = &requests;
                let board = &board;
                handles.push((
                    gi,
                    s.spawn(move || -> Vec<(usize, LadderOutcome)> {
                        idxs.iter()
                            .map(|&i| {
                                let mut process =
                                    |host: &str, req: &str, wait: Duration| -> EvalResult<String> {
                                        let mut remote = core
                                            .take_peer(host, wait)
                                            .map_err(EvalError::from)?;
                                        let outcome = process_request(
                                            &core,
                                            host,
                                            &mut remote.store,
                                            req,
                                        );
                                        core.put_peer(remote);
                                        outcome
                                    };
                                let ladder = call_with_failover(
                                    &core,
                                    board,
                                    peer,
                                    lane_base + i as u64,
                                    &requests[i],
                                    &mut process,
                                );
                                (i, ladder)
                            })
                            .collect()
                    }),
                ));
            }
            for (gi, handle) in handles {
                match handle.join() {
                    Ok(rows) => {
                        for (i, ladder) in rows {
                            slots[i] = Some(ladder);
                        }
                    }
                    Err(payload) => {
                        // a poisoned worker must not kill the federation:
                        // its calls fail with a typed remote fault instead
                        let err = XrpcError::RemoteFault {
                            peer: groups[gi].0.to_string(),
                            code: "xrpc:panic".to_string(),
                            message: format!(
                                "scatter worker panicked: {}",
                                panic_message(payload.as_ref())
                            ),
                        };
                        for &i in &groups[gi].1 {
                            slots[i] = Some(LadderOutcome::failed(err.clone()));
                        }
                    }
                }
            }
        });
        let mut rows: Vec<LadderOutcome> = slots
            .into_iter()
            .map(|r| r.expect("every call belongs to exactly one peer group"))
            .collect();

        // ---- account the round ----
        // serialized network: the exact sum over every attempt chain
        // (transfer legs, stalls, backoff waits — hedged losers included);
        // overlapped: the slowest destination's wall clock dominates the
        // round
        let mut serialized_sum = Duration::ZERO;
        let mut slowest_chain = Duration::ZERO;
        for (_, idxs) in &groups {
            let serialized: Duration = idxs.iter().map(|&i| rows[i].serialized).sum();
            let window: Duration = idxs.iter().map(|&i| rows[i].window).sum();
            serialized_sum += serialized;
            slowest_chain = slowest_chain.max(window);
        }
        sink.network_ns.fetch_add(as_ns(serialized_sum), Ordering::Relaxed);
        sink.network_overlapped_ns
            .fetch_add(as_ns(slowest_chain), Ordering::Relaxed);
        sink.scatter_rounds.fetch_add(1, Ordering::Relaxed);
        for row in &rows {
            self.core.charge_ladder_counters(row);
        }
        if self.peer.is_empty() {
            // one clock advance for the whole round, then every slot's
            // observations in slot order — deterministic by construction
            self.core.apply_observations(
                slowest_chain,
                rows.iter().flat_map(|r| &r.observations),
            );
            // slot ladders all anchor at the round start (they genuinely
            // overlap); ids are assigned in slot order at this gather
            if let Some(tracer) = self.core.tracer() {
                let anchor = tracer.clock_ns();
                let mut round = SpanBuilder::new("scatter.round", "rpc")
                    .lasting(slowest_chain)
                    .arg("slots", rows.len().to_string());
                for (i, row) in rows.iter_mut().enumerate() {
                    if let Some(tb) = row.trace.take() {
                        round.push_child(tb.arg("slot", i.to_string()));
                    }
                }
                tracer.submit(anchor, ROOT_SPAN, round);
                tracer.advance(slowest_chain);
            }
        }

        // ---- gather: decode or degrade per slot, in call order ----
        let mut results = Vec::with_capacity(calls.len());
        for (row, c) in rows.into_iter().zip(calls) {
            match row.outcome {
                Ok(response) => {
                    let t0 = Instant::now();
                    let mut sequences = decode_response(local, &response)?;
                    sink.shred_ns.fetch_add(as_ns(t0.elapsed()), Ordering::Relaxed);
                    if sequences.len() != 1 {
                        return Err(EvalError::new(format!(
                            "scatter response for peer {} carries {} sequences for 1 call",
                            c.peer,
                            sequences.len()
                        )));
                    }
                    results.push(sequences.pop().unwrap());
                }
                Err(e) => {
                    if e.degradable() {
                        let body_src = c.body.to_string();
                        let one_call = vec![c.params.clone()];
                        if let Some(mut sequences) = fallback_local(
                            &self.core,
                            local,
                            static_ctx,
                            &c.peer,
                            &body_src,
                            &one_call,
                            c.projection,
                            wire,
                        )? {
                            if let Some(tracer) = self.core.tracer() {
                                tracer.event(
                                    ROOT_SPAN,
                                    "rpc.degrade",
                                    "rpc",
                                    vec![
                                        ("peer", c.peer.to_string()),
                                        ("error", e.code().to_string()),
                                    ],
                                );
                            }
                            results.push(sequences.pop().unwrap_or_default());
                            continue;
                        }
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(results)
    }
}

/// Canonical serialization of one item: stable across stores, attribute
/// order insensitive, comment/PI free — string equality on canonical items
/// coincides with `fn:deep-equal` for comment-free data.
pub fn canonical_item(store: &Store, item: &Item) -> String {
    match item {
        Item::Atom(a) => format!("atom:{}", a.to_lexical()),
        Item::Node(n) => {
            let mut out = String::new();
            canonical_node(store, *n, &mut out);
            out
        }
    }
}

fn canonical_node(store: &Store, n: NodeId, out: &mut String) {
    let doc = store.doc(n.doc);
    match doc.kind(n.idx) {
        NodeKind::Document => {
            out.push_str("doc()[");
            for c in doc.children(n.idx) {
                canonical_node(store, NodeId::new(n.doc, c), out);
            }
            out.push(']');
        }
        NodeKind::Element => {
            out.push('<');
            out.push_str(store.names.resolve(doc.name(n.idx)));
            let mut attrs: Vec<(String, String)> = doc
                .attributes(n.idx)
                .map(|a| {
                    (
                        store.names.resolve(doc.name(a)).to_string(),
                        doc.value(a).unwrap_or("").to_string(),
                    )
                })
                .collect();
            attrs.sort();
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(&k);
                out.push_str("=\"");
                xqd_xml::serialize::escape_attr(&v, out);
                out.push('"');
            }
            out.push('>');
            for c in doc.children(n.idx) {
                canonical_node(store, NodeId::new(n.doc, c), out);
            }
            out.push_str("</");
            out.push_str(store.names.resolve(doc.name(n.idx)));
            out.push('>');
        }
        NodeKind::Attribute => {
            out.push_str("attr:");
            out.push_str(store.names.resolve(doc.name(n.idx)));
            out.push('=');
            out.push_str(doc.value(n.idx).unwrap_or(""));
        }
        NodeKind::Text => {
            xqd_xml::serialize::escape_text(doc.value(n.idx).unwrap_or(""), out)
        }
        NodeKind::Comment | NodeKind::Pi => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn federation() -> Federation {
        let mut f = Federation::new(NetworkModel::lan());
        f.load_document("p", "d.xml", "<a><b/></a>").unwrap();
        f
    }

    #[test]
    fn backoff_hint_is_never_undercut_and_never_exceeds_the_deadline() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            deadline: Duration::from_millis(200),
        };
        // no hint: plain exponential backoff, bit for bit
        for failed in 1..5 {
            assert_eq!(
                policy.backoff_with_hint(failed, 0.5, None),
                policy.backoff(failed, 0.5)
            );
        }
        // a hint above the exponential wait wins: the server's estimate
        // of when capacity frees is never undercut
        let hint = Duration::from_millis(120);
        assert_eq!(policy.backoff_with_hint(1, 0.0, Some(hint)), hint);
        // a hint below the exponential wait changes nothing
        let tiny = Duration::from_millis(1);
        assert_eq!(
            policy.backoff_with_hint(4, 1.0, Some(tiny)),
            policy.backoff(4, 1.0)
        );
        // a hint the deadline budget cannot afford is capped by it
        let huge = Duration::from_secs(60);
        assert_eq!(policy.backoff_with_hint(1, 0.0, Some(huge)), policy.deadline);
    }

    #[test]
    fn take_peer_wait_is_bounded_by_the_caller_budget() {
        let f = federation();
        let held = f.core.take_peer("p", Duration::from_millis(5)).unwrap();
        let budget = Duration::from_millis(20);
        let t = Instant::now();
        let err = f.core.take_peer("p", budget).unwrap_err();
        let waited = t.elapsed();
        assert_eq!(err.code(), "xrpc:peer-busy");
        assert!(
            err.retry_after().unwrap() > Duration::ZERO,
            "busy rejection must carry a retry hint: {err}"
        );
        assert!(waited >= budget, "returned before the budget elapsed: {waited:?}");
        assert!(
            waited < Duration::from_secs(5),
            "wait was not bounded by the caller's budget: {waited:?}"
        );
        f.core.put_peer(held);
    }

    #[test]
    fn full_wait_queue_is_rejected_immediately_with_backpressure() {
        let f = federation();
        let mut options = f.exec_options();
        options.peer_queue_depth = 1;
        *f.core.options.lock().unwrap() = options;
        let held = f.core.take_peer("p", Duration::from_millis(5)).unwrap();
        // fill the single waiter seat from another thread
        let core = Arc::clone(&f.core);
        let waiter =
            std::thread::spawn(move || core.take_peer("p", Duration::from_millis(300)));
        while f.core.peers.lock().unwrap()["p"].waiters == 0 {
            std::thread::yield_now();
        }
        // the next caller must bounce instantly instead of queueing
        let t = Instant::now();
        let err = f.core.take_peer("p", Duration::from_secs(30)).unwrap_err();
        assert!(t.elapsed() < Duration::from_millis(250), "rejection was not immediate");
        assert_eq!(err.code(), "xrpc:peer-busy");
        assert!(format!("{err}").contains("wait queue full"), "{err}");
        assert!(err.retry_after().unwrap() > Duration::ZERO);
        // returning the peer hands it to the queued waiter
        f.core.put_peer(held);
        let woken = waiter.join().unwrap().expect("queued waiter should get the slot");
        f.core.put_peer(woken);
    }

    #[test]
    fn depth_zero_disables_the_waiter_bound() {
        let f = federation();
        let mut options = f.exec_options();
        options.peer_queue_depth = 0;
        *f.core.options.lock().unwrap() = options;
        let held = f.core.take_peer("p", Duration::from_millis(5)).unwrap();
        // with the bound off, an extra caller queues (and times out) rather
        // than being rejected up front
        let err = f.core.take_peer("p", Duration::from_millis(10)).unwrap_err();
        assert!(format!("{err}").contains("slot still held"), "{err}");
        f.core.put_peer(held);
    }
}
