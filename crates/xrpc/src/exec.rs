//! The distributed execution fabric: simulated peers plus the
//! [`xqd_xquery::RemoteHandler`] / [`xqd_xquery::DocResolver`]
//! implementations wiring the decomposed query to the message codecs.
//!
//! A [`Federation`] owns one [`Peer`] per `xrpc://host/…` host; `run()`
//! spins up a fresh coordinator store (the query originator), decomposes the
//! query under the chosen [`Strategy`] and evaluates it. Remote `execute
//! at` calls serialize a real request message, "transfer" it under the
//! [`NetworkModel`], shred it into the target peer's store, evaluate the
//! body there with the *same* evaluator, and ship the response back the
//! same way. `fn:doc("xrpc://…")` on the coordinator performs data
//! shipping: the remote peer serializes the whole document, bytes are
//! accounted, and the coordinator shreds and caches it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use xqd_core::Strategy;
use xqd_xml::{NodeId, NodeKind, Store};
use xqd_xquery::ast::ExecProjection;
use xqd_xquery::eval::{DocResolver, Evaluator, RemoteHandler, StaticContext};
use xqd_xquery::value::{EvalError, EvalResult, Item, Sequence};
use xqd_xquery::{parse_query, QueryModule};

use crate::message::{
    decode_request, decode_response, encode_request, encode_response, WireSemantics,
};
use crate::net::{Metrics, NetworkModel};

/// One simulated peer: a named document store.
#[derive(Debug)]
pub struct Peer {
    pub name: String,
    pub store: Store,
}

impl Peer {
    pub fn new(name: &str) -> Self {
        Peer { name: name.to_string(), store: Store::new() }
    }

    /// Loads a document from XML text under `doc_name`. The document is
    /// registered under its canonical `xrpc://<peer>/<doc_name>` URI so
    /// `fn:base-uri` / `fn:document-uri` agree between peer-local access and
    /// data-shipped copies at the coordinator.
    pub fn load_document(&mut self, doc_name: &str, xml: &str) -> Result<(), EvalError> {
        let uri = format!("xrpc://{}/{}", self.name, doc_name);
        xqd_xml::parse_document(&mut self.store, xml, Some(&uri))
            .map_err(|e| EvalError::new(format!("loading {doc_name}: {e}")))?;
        Ok(())
    }
}

struct FedCore {
    peers: HashMap<String, Option<Peer>>,
    model: NetworkModel,
    metrics: Metrics,
    wire: WireSemantics,
}

/// A federation of peers plus the coordinator.
pub struct Federation {
    core: Rc<RefCell<FedCore>>,
}

/// Outcome of one distributed run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The result sequence, canonically serialized item by item (attributes
    /// sorted, comments dropped) — directly comparable across strategies.
    pub result: Vec<String>,
    pub metrics: Metrics,
    /// The decomposition that was executed (for explain output).
    pub plan: xqd_core::Decomposition,
}

impl Federation {
    pub fn new(model: NetworkModel) -> Self {
        Federation {
            core: Rc::new(RefCell::new(FedCore {
                peers: HashMap::new(),
                model,
                metrics: Metrics::default(),
                wire: WireSemantics::Value,
            })),
        }
    }

    /// Adds an empty peer.
    pub fn add_peer(&mut self, name: &str) {
        self.core
            .borrow_mut()
            .peers
            .insert(name.to_string(), Some(Peer::new(name)));
    }

    /// Loads `xml` as document `doc_name` on `peer` (added if absent).
    pub fn load_document(&mut self, peer: &str, doc_name: &str, xml: &str) -> Result<(), EvalError> {
        let mut core = self.core.borrow_mut();
        let entry = core
            .peers
            .entry(peer.to_string())
            .or_insert_with(|| Some(Peer::new(peer)));
        entry
            .as_mut()
            .ok_or_else(|| EvalError::new(format!("peer {peer} is busy")))?
            .load_document(doc_name, xml)
    }

    /// Parses, decomposes and executes `query` under `strategy`.
    pub fn run(&mut self, query: &str, strategy: Strategy) -> EvalResult<RunOutcome> {
        self.run_with(query, strategy, xqd_core::DecomposeOptions::default())
    }

    /// Like [`Self::run`] with explicit decomposition pipeline options
    /// (used by the ablation benches).
    pub fn run_with(
        &mut self,
        query: &str,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
    ) -> EvalResult<RunOutcome> {
        let module =
            parse_query(query).map_err(|e| EvalError::new(format!("parse error: {e}")))?;
        self.run_module_with(&module, strategy, options)
    }

    /// Like [`Self::run`] for an already-parsed module.
    pub fn run_module(&mut self, module: &QueryModule, strategy: Strategy) -> EvalResult<RunOutcome> {
        self.run_module_with(module, strategy, xqd_core::DecomposeOptions::default())
    }

    /// Full-control entry point: parsed module + pipeline options.
    pub fn run_module_with(
        &mut self,
        module: &QueryModule,
        strategy: Strategy,
        options: xqd_core::DecomposeOptions,
    ) -> EvalResult<RunOutcome> {
        let plan = xqd_core::decompose_with(module, strategy, options)?;
        {
            let mut core = self.core.borrow_mut();
            core.metrics = Metrics::default();
            core.wire = match strategy {
                Strategy::ByFragment => WireSemantics::Fragment,
                Strategy::ByProjection => WireSemantics::Projection,
                _ => WireSemantics::Value,
            };
        }
        let started = Instant::now();
        // fresh coordinator store per run
        let mut local = Store::new();
        let mut link = FedLink { core: Rc::clone(&self.core), peer: String::new() };
        let mut handler = FedLink { core: Rc::clone(&self.core), peer: String::new() };
        let functions: Vec<xqd_xquery::FunctionDef> = Vec::new();
        let mut ev = Evaluator::new(&mut local, &functions, &mut link).with_remote(&mut handler);
        let result = ev.eval(&plan.rewritten)?;
        let total = started.elapsed();
        let canonical = result.iter().map(|i| canonical_item(&local, i)).collect();
        let mut metrics = self.core.borrow().metrics;
        metrics.total = total;
        Ok(RunOutcome { result: canonical, metrics, plan })
    }

    /// Metrics of the last run (also returned in [`RunOutcome`]).
    pub fn metrics(&self) -> Metrics {
        self.core.borrow().metrics
    }

    /// Total serialized size in bytes of every document stored on peers —
    /// the Figure 7 x-axis.
    pub fn total_document_bytes(&self) -> u64 {
        let core = self.core.borrow();
        let mut total = 0u64;
        for peer in core.peers.values().flatten() {
            for (_, doc) in peer.store.docs() {
                if doc.uri.is_some() {
                    total += xqd_xml::serialize_document(doc, &peer.store.names).len() as u64;
                }
            }
        }
        total
    }
}

/// The resolver/handler link of one executing peer (empty name =
/// coordinator).
struct FedLink {
    core: Rc<RefCell<FedCore>>,
    peer: String,
}

impl DocResolver for FedLink {
    fn resolve(&mut self, store: &mut Store, uri: &str) -> EvalResult<xqd_xml::DocId> {
        if let Some(d) = store.doc_by_uri(uri) {
            return Ok(d);
        }
        if let Some((host, name)) = xqd_core::uris::split_xrpc_uri(uri) {
            if host == self.peer {
                // our own document, referenced through its xrpc URI (the
                // canonical registration; plain names accepted as fallback)
                return store
                    .doc_by_uri(uri)
                    .or_else(|| store.doc_by_uri(name))
                    .ok_or_else(|| EvalError::new(format!("document not found on {host}: {name}")));
            }
            // data shipping: fetch the whole document
            let xml = {
                let mut core = self.core.borrow_mut();
                let peer_obj = core
                    .peers
                    .get_mut(host)
                    .and_then(Option::take)
                    .ok_or_else(|| EvalError::new(format!("unknown or busy peer {host}")))?;
                let t0 = Instant::now();
                let result = peer_obj
                    .store
                    .doc_by_uri(uri)
                    .or_else(|| peer_obj.store.doc_by_uri(name))
                    .map(|d| xqd_xml::serialize_document(peer_obj.store.doc(d), &peer_obj.store.names))
                    .ok_or_else(|| EvalError::new(format!("document not found on {host}: {name}")));
                core.metrics.serialize += t0.elapsed();
                core.peers.insert(host.to_string(), Some(peer_obj));
                let xml = result?;
                let bytes = xml.len() as u64;
                core.metrics.document_bytes += bytes;
                core.metrics.transfers += 1;
                let wire = core.model.transfer_time(bytes);
                core.metrics.network += wire;
                xml
            };
            let t0 = Instant::now();
            let d = xqd_xml::parse_document(store, &xml, Some(uri))
                .map_err(|e| EvalError::new(format!("shredding {uri}: {e}")))?;
            self.core.borrow_mut().metrics.shred += t0.elapsed();
            return Ok(d);
        }
        // a plain name on a peer refers to that peer's own document (the
        // paper's remote functions use local names, e.g. doc("depts.xml"))
        if !self.peer.is_empty() && !uri.contains("://") {
            let canonical = format!("xrpc://{}/{}", self.peer, uri);
            if let Some(d) = store.doc_by_uri(&canonical) {
                return Ok(d);
            }
        }
        Err(EvalError::new(format!("document not found: {uri}")))
    }
}

impl RemoteHandler for FedLink {
    fn execute(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        params: &[(String, Sequence)],
        body: &xqd_xquery::Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Sequence> {
        let one_call = vec![params.to_vec()];
        let mut results =
            self.execute_bulk(local, static_ctx, peer, &one_call, body, projection)?;
        Ok(results.pop().unwrap_or_default())
    }

    fn execute_bulk(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        calls: &[Vec<(String, Sequence)>],
        body: &xqd_xquery::Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Vec<Sequence>> {
        let wire = self.core.borrow().wire;
        // ---- encode request (caller side) ----
        let t0 = Instant::now();
        let body_src = body.to_string();
        let request = encode_request(
            local,
            wire,
            static_ctx,
            &body_src,
            calls,
            projection.map(|p| p.params.as_slice()),
            projection.map(|p| &p.result),
        )?;
        {
            let mut core = self.core.borrow_mut();
            core.metrics.serialize += t0.elapsed();
            core.metrics.message_bytes += request.len() as u64;
            core.metrics.transfers += 1;
            core.metrics.remote_calls += calls.len() as u64;
            let wire_time = core.model.transfer_time(request.len() as u64);
            core.metrics.network += wire_time;
        }

        // ---- take the remote peer out and execute there ----
        let mut remote = {
            let mut core = self.core.borrow_mut();
            core.peers
                .get_mut(peer)
                .and_then(Option::take)
                .ok_or_else(|| EvalError::new(format!("unknown or busy peer {peer}")))?
        };
        let outcome = (|| -> EvalResult<String> {
            let t0 = Instant::now();
            let decoded = decode_request(&mut remote.store, &request)?;
            self.core.borrow_mut().metrics.shred += t0.elapsed();

            let remote_module = parse_query(&decoded.query)
                .map_err(|e| EvalError::new(format!("remote parse error: {e}")))?;
            let mut results = Vec::with_capacity(decoded.calls.len());
            let t_exec = Instant::now();
            for call_params in decoded.calls {
                let mut resolver = FedLink { core: Rc::clone(&self.core), peer: peer.to_string() };
                let mut nested = FedLink { core: Rc::clone(&self.core), peer: peer.to_string() };
                let mut ev = Evaluator::new(&mut remote.store, &remote_module.functions, &mut resolver)
                    .with_remote(&mut nested)
                    .with_static_context(decoded.static_ctx.clone());
                for (name, value) in call_params {
                    ev.bind(&name, value);
                }
                results.push(ev.eval(&remote_module.body)?);
            }
            self.core.borrow_mut().metrics.remote_exec += t_exec.elapsed();

            let t_ser = Instant::now();
            let response = encode_response(
                &remote.store,
                decoded.semantics,
                &results,
                decoded.result_spec.as_ref(),
            )?;
            self.core.borrow_mut().metrics.serialize += t_ser.elapsed();
            Ok(response)
        })();
        // put the peer back regardless of the outcome
        self.core.borrow_mut().peers.insert(peer.to_string(), Some(remote));
        let response = outcome?;

        {
            let mut core = self.core.borrow_mut();
            core.metrics.message_bytes += response.len() as u64;
            core.metrics.transfers += 1;
            let wire_time = core.model.transfer_time(response.len() as u64);
            core.metrics.network += wire_time;
        }

        // ---- decode response (caller side) ----
        let t0 = Instant::now();
        let sequences = decode_response(local, &response)?;
        self.core.borrow_mut().metrics.shred += t0.elapsed();
        if sequences.len() != calls.len() {
            return Err(EvalError::new(format!(
                "response carries {} sequences for {} calls",
                sequences.len(),
                calls.len()
            )));
        }
        Ok(sequences)
    }
}

/// Canonical serialization of one item: stable across stores, attribute
/// order insensitive, comment/PI free — string equality on canonical items
/// coincides with `fn:deep-equal` for comment-free data.
pub fn canonical_item(store: &Store, item: &Item) -> String {
    match item {
        Item::Atom(a) => format!("atom:{}", a.to_lexical()),
        Item::Node(n) => {
            let mut out = String::new();
            canonical_node(store, *n, &mut out);
            out
        }
    }
}

fn canonical_node(store: &Store, n: NodeId, out: &mut String) {
    let doc = store.doc(n.doc);
    match doc.kind(n.idx) {
        NodeKind::Document => {
            out.push_str("doc()[");
            for c in doc.children(n.idx) {
                canonical_node(store, NodeId::new(n.doc, c), out);
            }
            out.push(']');
        }
        NodeKind::Element => {
            out.push('<');
            out.push_str(store.names.resolve(doc.name(n.idx)));
            let mut attrs: Vec<(String, String)> = doc
                .attributes(n.idx)
                .map(|a| {
                    (
                        store.names.resolve(doc.name(a)).to_string(),
                        doc.value(a).unwrap_or("").to_string(),
                    )
                })
                .collect();
            attrs.sort();
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(&k);
                out.push_str("=\"");
                xqd_xml::serialize::escape_attr(&v, out);
                out.push('"');
            }
            out.push('>');
            for c in doc.children(n.idx) {
                canonical_node(store, NodeId::new(n.doc, c), out);
            }
            out.push_str("</");
            out.push_str(store.names.resolve(doc.name(n.idx)));
            out.push('>');
        }
        NodeKind::Attribute => {
            out.push_str("attr:");
            out.push_str(store.names.resolve(doc.name(n.idx)));
            out.push('=');
            out.push_str(doc.value(n.idx).unwrap_or(""));
        }
        NodeKind::Text => {
            xqd_xml::serialize::escape_text(doc.value(n.idx).unwrap_or(""), out)
        }
        NodeKind::Comment | NodeKind::Pi => {}
    }
}
