//! XRPC message codecs: pass-by-value, pass-by-fragment and
//! pass-by-projection request/response encoding (Figures 1, 4 and 5).
//!
//! Messages are **real XML bytes**: the sender serializes into the SOAP-like
//! vocabulary below and the receiver re-parses ("shreds") it, so every
//! semantic property the paper derives from copying — lost parents under
//! by-value, preserved ancestry under by-fragment, projected context under
//! by-projection — emerges from the data representation, not from special
//! cases in the engine.
//!
//! ```text
//! <env><request semantics=".." static-base-uri=".." default-collation=".."
//!               current-dateTime="..">
//!   <query>…XQuery source…</query>
//!   <response-paths><used-path>…</used-path><returned-path>…</returned-path></response-paths>?
//!   <fragments><fragment uri=".." base-uri="..">…</fragment>*</fragments>?
//!   <call><param name="..."><sequence>…items…</sequence></param>*</call>+   (Bulk RPC: one <call> per iteration)
//! </request></env>
//!
//! items: <atom type="…">lexical</atom>
//!      | <copy kind="element|document|attribute|text|comment|pi" name=".."
//!              base-uri=".." document-uri="..">content</copy>     (by-value)
//!      | <element fragid=".." nodeid=".."/>                       (by-fragment/-projection)
//!      | <attribute fragid=".." nodeid=".." name=".."/>
//! ```

use xqd_xml::project::{compute_projection, build_projected, Projection, ProjectionInput};
use xqd_xml::serialize::{escape_attr, escape_text, serialize_node_into};
use xqd_xml::{DocBuilder, DocId, NodeId, NodeKind, NodeMeta, Store};
use xqd_xquery::ast::{Atomic, PathSpec};
use xqd_xquery::eval::StaticContext;
use xqd_xquery::value::{EvalError, EvalResult, Item, Sequence};

use crate::net::XrpcError;
use crate::wire::{eval_rel_paths, node_at_nodeid, parse_rel_path, FragmentPlan};

/// Message-level passing semantics (the codec in use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSemantics {
    Value,
    Fragment,
    Projection,
}

impl WireSemantics {
    fn tag(self) -> &'static str {
        match self {
            WireSemantics::Value => "value",
            WireSemantics::Fragment => "fragment",
            WireSemantics::Projection => "projection",
        }
    }

    fn from_tag(s: &str) -> Option<Self> {
        Some(match s {
            "value" => WireSemantics::Value,
            "fragment" => WireSemantics::Fragment,
            "projection" => WireSemantics::Projection,
            _ => return None,
        })
    }
}

/// How a message carries its node-valued items.
enum NodeCodec {
    Value,
    /// Shared fragments preamble over the original documents.
    Fragment(FragmentPlan),
    /// Per-document runtime projections: `(source doc, projected doc
    /// serialization, projection)` in fragid order.
    Projected(Vec<ProjectedFragment>),
}

struct ProjectedFragment {
    source: DocId,
    serialized: String,
    uri: Option<String>,
    base_uri: Option<String>,
    projection: Projection,
}

/// All node items of a set of sequences.
fn collect_nodes(seqs: &[&Sequence]) -> Vec<NodeId> {
    let mut out = Vec::new();
    for seq in seqs {
        for item in seq.iter() {
            if let Item::Node(n) = item {
                out.push(*n);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds the projection-based codec: per document, run Algorithm 1 on the
/// union of used/returned node sets derived from the per-sequence path
/// specs, then serialize the projected document as the fragment.
fn build_projected_codec(
    store: &Store,
    groups: &[(&Sequence, Option<&PathSpec>)],
) -> NodeCodec {
    use std::collections::BTreeMap;
    // per-doc used/returned sets
    let mut used: BTreeMap<DocId, Vec<u32>> = BTreeMap::new();
    let mut returned: BTreeMap<DocId, Vec<u32>> = BTreeMap::new();
    for (seq, spec) in groups {
        let nodes: Vec<NodeId> = seq
            .iter()
            .filter_map(|i| match i {
                Item::Node(n) => Some(*n),
                Item::Atom(_) => None,
            })
            .collect();
        match spec {
            Some(spec) if !spec.returned.iter().any(|r| r.0.is_empty()) => {
                // the items themselves are always referenced → used
                for n in &nodes {
                    used.entry(n.doc).or_default().push(n.idx);
                }
                for n in eval_rel_paths(store, &nodes, &spec.used) {
                    used.entry(n.doc).or_default().push(n.idx);
                }
                for n in eval_rel_paths(store, &nodes, &spec.returned) {
                    returned.entry(n.doc).or_default().push(n.idx);
                }
            }
            _ => {
                // no spec (or whole-value spec): ship full subtrees
                for n in &nodes {
                    returned.entry(n.doc).or_default().push(n.idx);
                }
            }
        }
    }
    let mut docs: Vec<DocId> = used.keys().chain(returned.keys()).copied().collect();
    docs.sort_unstable();
    docs.dedup();
    let mut frags = Vec::new();
    for d in docs {
        let doc = store.doc(d);
        let input = ProjectionInput::new(
            used.remove(&d).unwrap_or_default(),
            returned.remove(&d).unwrap_or_default(),
        );
        let projection = compute_projection(doc, &input);
        let builder = build_projected(doc, &store.names, &projection, None);
        // serialize via a scratch store (the builder is standalone)
        let mut scratch = Store::new();
        let pd = scratch.attach(builder);
        let serialized = xqd_xml::serialize_document(scratch.doc(pd), &scratch.names);
        frags.push(ProjectedFragment {
            source: d,
            serialized,
            uri: doc.uri.clone(),
            base_uri: doc.base_uri.clone(),
            projection,
        });
    }
    NodeCodec::Projected(frags)
}

fn write_fragments(store: &Store, codec: &NodeCodec, out: &mut String) {
    match codec {
        NodeCodec::Value => {}
        NodeCodec::Fragment(plan) => {
            if plan.roots.is_empty() {
                return;
            }
            out.push_str("<fragments>");
            for &(d, r) in &plan.roots {
                let doc = store.doc(d);
                out.push_str("<fragment");
                if let Some(u) = &doc.uri {
                    out.push_str(" uri=\"");
                    escape_attr(u, out);
                    out.push('"');
                }
                if let Some(b) = &doc.base_uri {
                    out.push_str(" base-uri=\"");
                    escape_attr(b, out);
                    out.push('"');
                }
                out.push('>');
                if doc.kind(r) == NodeKind::Document {
                    for c in doc.children(r) {
                        serialize_node_into(doc, &store.names, c, out);
                    }
                } else {
                    serialize_node_into(doc, &store.names, r, out);
                }
                out.push_str("</fragment>");
            }
            out.push_str("</fragments>");
        }
        NodeCodec::Projected(frags) => {
            if frags.is_empty() {
                return;
            }
            out.push_str("<fragments>");
            for f in frags {
                out.push_str("<fragment");
                if let Some(u) = &f.uri {
                    out.push_str(" uri=\"");
                    escape_attr(u, out);
                    out.push('"');
                }
                if let Some(b) = &f.base_uri {
                    out.push_str(" base-uri=\"");
                    escape_attr(b, out);
                    out.push('"');
                }
                out.push('>');
                out.push_str(&f.serialized);
                out.push_str("</fragment>");
            }
            out.push_str("</fragments>");
        }
    }
}

/// Locates a node under the projected codec: `(fragid, nodeid)`.
fn locate_projected(
    store: &Store,
    frags: &[ProjectedFragment],
    node: NodeId,
) -> Option<(u32, u32, Option<String>)> {
    let doc = store.doc(node.doc);
    let (target, attr_name) = if doc.kind(node.idx) == NodeKind::Attribute {
        (
            doc.parent(node.idx)?,
            Some(store.names.resolve(doc.name(node.idx)).to_string()),
        )
    } else {
        (node.idx, None)
    };
    for (i, f) in frags.iter().enumerate() {
        if f.source != node.doc {
            continue;
        }
        if doc.kind(target) == NodeKind::Document {
            // the projected output's own document node stands in for the
            // source document node (`nodeid 0` convention)
            return Some((i as u32 + 1, 0, attr_name));
        }
        let dst = f.projection.projected_index(target)?;
        // nodeid relative to the projected document's content: we compute it
        // on the projected doc via a scratch parse-free rank over kept nodes
        let nodeid = projected_nodeid(store, f, dst)?;
        return Some((i as u32 + 1, nodeid, attr_name));
    }
    None
}

/// 1-based rank among non-attribute nodes of the projected document for
/// projected index `dst` (index 0 is the projected document node).
fn projected_nodeid(store: &Store, f: &ProjectedFragment, dst: u32) -> Option<u32> {
    // kept[i] ↦ projected index i+1; rank = count of non-attribute kept
    // nodes with projected index <= dst
    let src_doc = store.doc(f.source);
    let mut rank = 0u32;
    for (i, &src) in f.projection.kept.iter().enumerate() {
        if src_doc.kind(src) != NodeKind::Attribute {
            rank += 1;
        }
        if (i as u32 + 1) == dst {
            if src_doc.kind(src) == NodeKind::Attribute {
                return None;
            }
            return Some(rank);
        }
    }
    None
}

fn atom_type_tag(a: &Atomic) -> &'static str {
    match a {
        Atomic::Str(_) => "string",
        Atomic::Int(_) => "integer",
        Atomic::Dbl(_) => "double",
        Atomic::Bool(_) => "boolean",
        Atomic::Untyped(_) => "untyped",
    }
}

fn write_atom(a: &Atomic, out: &mut String) {
    out.push_str("<atom type=\"");
    out.push_str(atom_type_tag(a));
    out.push_str("\">");
    escape_text(&a.to_lexical(), out);
    out.push_str("</atom>");
}

/// Minimum run length of same-typed atoms before [`write_sequence`] switches
/// from per-item `<atom>` elements to one front-coded `<keyset>` block.
/// Short sequences keep the verbose form: the block header would cost more
/// than it saves, and small fixtures stay byte-readable.
pub const KEYSET_MIN_RUN: usize = 8;

/// Emits a run of same-typed atoms as one front-coded key-set block:
///
/// ```text
/// <keyset type="string" n="3">0:7:person16:1:07:2:11</keyset>
/// ```
///
/// Each key is `P:S:suffix` — `P` characters shared with the previous key,
/// then the `S`-character suffix (`person1`, `person10`, `person11` above).
/// The payload is lossless and deterministic: decoding reproduces the exact
/// atom sequence, so the block is a drop-in replacement for the per-item
/// form. Join key sets produced by `xqd:distinct-keys` arrive sorted, which
/// is what makes front coding compact; the codec itself is content-driven
/// and applies to any long same-typed atom run.
fn write_keyset(run: &[&Atomic], out: &mut String) {
    out.push_str("<keyset type=\"");
    out.push_str(atom_type_tag(run[0]));
    out.push_str("\" n=\"");
    out.push_str(&run.len().to_string());
    out.push_str("\">");
    let mut payload = String::new();
    let mut prev: Vec<char> = Vec::new();
    for a in run {
        let lex: Vec<char> = a.to_lexical().chars().collect();
        let shared = prev.iter().zip(lex.iter()).take_while(|(a, b)| a == b).count();
        payload.push_str(&shared.to_string());
        payload.push(':');
        payload.push_str(&(lex.len() - shared).to_string());
        payload.push(':');
        payload.extend(&lex[shared..]);
        prev = lex;
    }
    escape_text(&payload, out);
    out.push_str("</keyset>");
}

fn atom_from_lexical(ty: &str, lex: String) -> EvalResult<Atomic> {
    Ok(match ty {
        "integer" => Atomic::Int(
            lex.parse().map_err(|_| EvalError::new(format!("bad integer atom {lex:?}")))?,
        ),
        "double" => Atomic::Dbl(
            lex.parse().map_err(|_| EvalError::new(format!("bad double atom {lex:?}")))?,
        ),
        "boolean" => Atomic::Bool(lex == "true"),
        "untyped" => Atomic::Untyped(lex),
        _ => Atomic::Str(lex),
    })
}

/// Parses a front-coded `<keyset>` payload back into its lexical keys.
fn parse_keyset_payload(payload: &str, n: usize) -> EvalResult<Vec<String>> {
    let chars: Vec<char> = payload.chars().collect();
    let mut pos = 0usize;
    let mut prev: Vec<char> = Vec::new();
    let mut keys = Vec::with_capacity(n);
    let read_count = |pos: &mut usize| -> EvalResult<usize> {
        let start = *pos;
        while *pos < chars.len() && chars[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if start == *pos || *pos >= chars.len() || chars[*pos] != ':' {
            return Err(EvalError::new("malformed keyset payload"));
        }
        let v: usize = chars[start..*pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|_| EvalError::new("malformed keyset payload"))?;
        *pos += 1; // skip ':'
        Ok(v)
    };
    while pos < chars.len() {
        let shared = read_count(&mut pos)?;
        let suffix = read_count(&mut pos)?;
        if shared > prev.len() || pos + suffix > chars.len() {
            return Err(EvalError::new("malformed keyset payload"));
        }
        let mut key: Vec<char> = prev[..shared].to_vec();
        key.extend(&chars[pos..pos + suffix]);
        pos += suffix;
        keys.push(key.iter().collect());
        prev = key;
    }
    if keys.len() != n {
        return Err(EvalError::new(format!(
            "keyset count mismatch: header says {n}, payload holds {}",
            keys.len()
        )));
    }
    Ok(keys)
}

/// Undoes [`escape_text`]'s three entities (the only ones the codec emits).
fn unescape_text(s: &str) -> String {
    s.replace("&lt;", "\u{0}lt")
        .replace("&gt;", "\u{0}gt")
        .replace("&amp;", "&")
        .replace("\u{0}lt", "<")
        .replace("\u{0}gt", ">")
}

/// Wire-level accounting for the `<keyset>` blocks of an encoded message:
/// `(keys, bytes_saved)` where `keys` counts the atoms carried in key-set
/// form and `bytes_saved` is the exact byte difference against the per-item
/// `<atom>` encoding of the same keys. Feeds the `join_keys_shipped` /
/// `join_bytes_saved` metrics; a message without key sets reports `(0, 0)`.
/// Coarse classification of a wire message by its envelope prefix — used
/// as a deterministic trace-span annotation (`"request"` / `"response"` /
/// `"fault"`), with `"data"` covering raw document payloads from the
/// data-shipping path and anything mangled in flight.
pub fn payload_kind(message: &str) -> &'static str {
    if message.starts_with("<env><request") {
        "request"
    } else if message.starts_with("<env><response") {
        "response"
    } else if message.starts_with("<env><fault") {
        "fault"
    } else {
        "data"
    }
}

pub fn keyset_stats(message: &str) -> (u64, u64) {
    let mut keys = 0u64;
    let mut saved = 0u64;
    let mut rest = message;
    while let Some(start) = rest.find("<keyset ") {
        let block = &rest[start..];
        let Some(hdr_end) = block.find('>') else { break };
        let Some(body_end) = block.find("</keyset>") else { break };
        let header = &block[..hdr_end];
        let block_len = body_end + "</keyset>".len();
        let grab = |attr: &str| -> Option<&str> {
            let at = header.find(&format!("{attr}=\""))? + attr.len() + 2;
            let end = header[at..].find('"')? + at;
            Some(&header[at..end])
        };
        let ty = grab("type").unwrap_or("string");
        let n: usize = grab("n").and_then(|v| v.parse().ok()).unwrap_or(0);
        let payload = unescape_text(&block[hdr_end + 1..body_end]);
        if let Ok(lexicals) = parse_keyset_payload(&payload, n) {
            let mut as_atoms = 0usize;
            for lex in &lexicals {
                let mut escaped = String::new();
                escape_text(lex, &mut escaped);
                // `<atom type="TY">` + escaped lexical + `</atom>`
                as_atoms += 13 + ty.len() + escaped.len() + 7;
            }
            keys += n as u64;
            saved += (as_atoms as u64).saturating_sub(block_len as u64);
        }
        rest = &rest[start + block_len..];
    }
    (keys, saved)
}

fn write_item(store: &Store, codec: &NodeCodec, item: &Item, out: &mut String) -> EvalResult<()> {
    match item {
        Item::Atom(a) => {
            write_atom(a, out);
            Ok(())
        }
        Item::Node(n) => {
            let doc = store.doc(n.doc);
            match codec {
                NodeCodec::Value => {
                    let kind = match doc.kind(n.idx) {
                        NodeKind::Document => "document",
                        NodeKind::Element => "element",
                        NodeKind::Attribute => "attribute",
                        NodeKind::Text => "text",
                        NodeKind::Comment => "comment",
                        NodeKind::Pi => "pi",
                    };
                    out.push_str("<copy kind=\"");
                    out.push_str(kind);
                    out.push('"');
                    if matches!(doc.kind(n.idx), NodeKind::Attribute | NodeKind::Pi) {
                        out.push_str(" name=\"");
                        escape_attr(store.names.resolve(doc.name(n.idx)), out);
                        out.push('"');
                    }
                    // class-2 context properties (Problem 5)
                    let base = doc
                        .meta
                        .get(&n.idx)
                        .and_then(|m| m.base_uri.clone())
                        .or_else(|| doc.base_uri.clone());
                    if let Some(b) = base {
                        out.push_str(" base-uri=\"");
                        escape_attr(&b, out);
                        out.push('"');
                    }
                    if let Some(u) = &doc.uri {
                        out.push_str(" document-uri=\"");
                        escape_attr(u, out);
                        out.push('"');
                    }
                    out.push('>');
                    match doc.kind(n.idx) {
                        NodeKind::Document => {
                            for c in doc.children(n.idx) {
                                serialize_node_into(doc, &store.names, c, out);
                            }
                        }
                        NodeKind::Element => serialize_node_into(doc, &store.names, n.idx, out),
                        _ => escape_text(doc.value(n.idx).unwrap_or(""), out),
                    }
                    out.push_str("</copy>");
                    Ok(())
                }
                NodeCodec::Fragment(plan) => {
                    let (fragid, nodeid) = plan.locate(store, *n).ok_or_else(|| {
                        EvalError::new("internal: shipped node missing from fragment plan")
                    })?;
                    if doc.kind(n.idx) == NodeKind::Attribute {
                        out.push_str(&format!(
                            "<attribute fragid=\"{fragid}\" nodeid=\"{nodeid}\" name=\"{}\"/>",
                            store.names.resolve(doc.name(n.idx))
                        ));
                    } else {
                        out.push_str(&format!(
                            "<element fragid=\"{fragid}\" nodeid=\"{nodeid}\"/>"
                        ));
                    }
                    Ok(())
                }
                NodeCodec::Projected(frags) => {
                    let (fragid, nodeid, attr) =
                        locate_projected(store, frags, *n).ok_or_else(|| {
                            EvalError::new("internal: shipped node missing from projection")
                        })?;
                    match attr {
                        Some(name) => out.push_str(&format!(
                            "<attribute fragid=\"{fragid}\" nodeid=\"{nodeid}\" name=\"{name}\"/>"
                        )),
                        None => out.push_str(&format!(
                            "<element fragid=\"{fragid}\" nodeid=\"{nodeid}\"/>"
                        )),
                    }
                    Ok(())
                }
            }
        }
    }
}

fn write_sequence(
    store: &Store,
    codec: &NodeCodec,
    seq: &Sequence,
    out: &mut String,
) -> EvalResult<()> {
    out.push_str("<sequence>");
    let items: Vec<&Item> = seq.iter().collect();
    let mut i = 0usize;
    while i < items.len() {
        // a run of same-typed atoms long enough to front-code?
        if let Item::Atom(first) = items[i] {
            let ty = atom_type_tag(first);
            let mut j = i + 1;
            while j < items.len() {
                match items[j] {
                    Item::Atom(a) if atom_type_tag(a) == ty => j += 1,
                    _ => break,
                }
            }
            if j - i >= KEYSET_MIN_RUN {
                let run: Vec<&Atomic> = items[i..j]
                    .iter()
                    .map(|it| match it {
                        Item::Atom(a) => a,
                        Item::Node(_) => unreachable!("run holds atoms only"),
                    })
                    .collect();
                write_keyset(&run, out);
                i = j;
                continue;
            }
        }
        write_item(store, codec, items[i], out)?;
        i += 1;
    }
    out.push_str("</sequence>");
    Ok(())
}

/// Encodes a request message.
///
/// `calls` is one entry per Bulk-RPC iteration, each a parameter list in
/// declaration order; `param_specs` (pass-by-projection only) are aligned
/// with the parameter list; `result_spec` is shipped as `response-paths`.
pub fn encode_request(
    store: &Store,
    semantics: WireSemantics,
    static_ctx: &StaticContext,
    body_src: &str,
    calls: &[Vec<(String, Sequence)>],
    param_specs: Option<&[PathSpec]>,
    result_spec: Option<&PathSpec>,
) -> EvalResult<String> {
    let codec = match semantics {
        WireSemantics::Value => NodeCodec::Value,
        WireSemantics::Fragment => {
            let seqs: Vec<&Sequence> =
                calls.iter().flat_map(|c| c.iter().map(|(_, s)| s)).collect();
            NodeCodec::Fragment(FragmentPlan::new(store, &collect_nodes(&seqs)))
        }
        WireSemantics::Projection => {
            let groups: Vec<(&Sequence, Option<&PathSpec>)> = calls
                .iter()
                .flat_map(|c| {
                    c.iter()
                        .enumerate()
                        .map(|(j, (_, s))| (s, param_specs.and_then(|ps| ps.get(j))))
                })
                .collect();
            build_projected_codec(store, &groups)
        }
    };
    let mut out = String::with_capacity(1024);
    out.push_str("<env><request semantics=\"");
    out.push_str(semantics.tag());
    out.push_str("\" static-base-uri=\"");
    escape_attr(&static_ctx.base_uri, &mut out);
    out.push_str("\" default-collation=\"");
    escape_attr(&static_ctx.default_collation, &mut out);
    out.push_str("\" current-dateTime=\"");
    escape_attr(&static_ctx.current_datetime, &mut out);
    out.push_str("\"><query>");
    escape_text(body_src, &mut out);
    out.push_str("</query>");
    if let Some(spec) = result_spec {
        out.push_str("<response-paths>");
        for p in &spec.used {
            out.push_str("<used-path>");
            escape_text(&p.to_string(), &mut out);
            out.push_str("</used-path>");
        }
        for p in &spec.returned {
            out.push_str("<returned-path>");
            escape_text(&p.to_string(), &mut out);
            out.push_str("</returned-path>");
        }
        out.push_str("</response-paths>");
    }
    write_fragments(store, &codec, &mut out);
    for call in calls {
        out.push_str("<call>");
        for (name, seq) in call {
            out.push_str("<param name=\"");
            escape_attr(name, &mut out);
            out.push_str("\">");
            write_sequence(store, &codec, seq, &mut out)?;
            out.push_str("</param>");
        }
        out.push_str("</call>");
    }
    out.push_str("</request></env>");
    Ok(out)
}

/// Encodes a response message carrying one result sequence per call.
pub fn encode_response(
    store: &Store,
    semantics: WireSemantics,
    results: &[Sequence],
    result_spec: Option<&PathSpec>,
) -> EvalResult<String> {
    let codec = match semantics {
        WireSemantics::Value => NodeCodec::Value,
        WireSemantics::Fragment => {
            let seqs: Vec<&Sequence> = results.iter().collect();
            NodeCodec::Fragment(FragmentPlan::new(store, &collect_nodes(&seqs)))
        }
        WireSemantics::Projection => {
            let groups: Vec<(&Sequence, Option<&PathSpec>)> =
                results.iter().map(|s| (s, result_spec)).collect();
            build_projected_codec(store, &groups)
        }
    };
    let mut out = String::with_capacity(1024);
    out.push_str("<env><response semantics=\"");
    out.push_str(semantics.tag());
    out.push_str("\">");
    write_fragments(store, &codec, &mut out);
    for seq in results {
        out.push_str("<call-result>");
        write_sequence(store, &codec, seq, &mut out)?;
        out.push_str("</call-result>");
    }
    out.push_str("</response></env>");
    Ok(out)
}

/// Encodes a typed failure as an XRPC fault response (SOAP-fault style):
///
/// ```text
/// <env><fault code=".." peer=".."><message>…</message></fault></env>
/// ```
///
/// Fault responses are real wire messages: a remote evaluation error or
/// transport-level rejection crosses the simulated network as these bytes
/// and is decoded back into an [`XrpcError`] on the caller side, exactly
/// like any other message.
pub fn encode_fault(err: &XrpcError) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("<env><fault code=\"");
    escape_attr(&err.code(), &mut out);
    out.push_str("\" peer=\"");
    escape_attr(err.peer(), &mut out);
    let retry_after_ms = match err {
        XrpcError::BreakerOpen { retry_after, .. }
        | XrpcError::PeerBusy { retry_after, .. } => Some(retry_after.as_millis()),
        XrpcError::Overloaded { retry_after_ms } => Some(u128::from(*retry_after_ms)),
        _ => None,
    };
    if let Some(ms) = retry_after_ms {
        out.push_str("\" retry-after-ms=\"");
        out.push_str(&ms.to_string());
    }
    out.push_str("\"><message>");
    escape_text(&err.to_string(), &mut out);
    out.push_str("</message></fault></env>");
    out
}

/// Decodes a fault response, if `message` is one. Returns `None` for
/// non-fault messages *and* for byte streams too mangled to parse — the
/// caller treats those as transport corruption.
pub fn decode_fault(message: &str) -> Option<XrpcError> {
    let mut scratch = Store::new();
    let doc = xqd_xml::parse_document(&mut scratch, message, None).ok()?;
    let fault = find_child(&scratch, NodeId::new(doc, 0), "env")
        .and_then(|env| find_child(&scratch, env, "fault"))?;
    let code = attr(&scratch, fault, "code")?;
    let peer = attr(&scratch, fault, "peer").unwrap_or_default();
    let msg = find_child(&scratch, fault, "message")
        .map(|m| scratch.doc(m.doc).string_value(m.idx))
        .unwrap_or_default();
    let mut err = XrpcError::from_code(&code, &peer, &msg);
    // retry-after hints ride along as an optional attribute
    if let Some(ms) = attr(&scratch, fault, "retry-after-ms").and_then(|v| v.parse::<u64>().ok()) {
        match &mut err {
            XrpcError::BreakerOpen { retry_after, .. }
            | XrpcError::PeerBusy { retry_after, .. } => {
                *retry_after = std::time::Duration::from_millis(ms);
            }
            XrpcError::Overloaded { retry_after_ms } => *retry_after_ms = ms,
            _ => {}
        }
    }
    Some(err)
}

/// Encodes a whole-document fetch request (the data-shipping path over a
/// real transport; the simulated transport serializes the peer's store
/// directly and never needs one of these on the wire).
pub fn encode_doc_request(uri: &str) -> String {
    let mut out = String::with_capacity(64 + uri.len());
    out.push_str("<env><doc-request uri=\"");
    escape_attr(uri, &mut out);
    out.push_str("\"/></env>");
    out
}

/// Decodes a doc-request envelope, returning the requested URI. `None` for
/// any other message shape (the cheap `contains` gate keeps ordinary
/// requests off the parse path).
pub fn decode_doc_request(message: &str) -> Option<String> {
    if !message.contains("<doc-request") {
        return None;
    }
    let mut scratch = Store::new();
    let doc = xqd_xml::parse_document(&mut scratch, message, None).ok()?;
    let req = find_child(&scratch, NodeId::new(doc, 0), "env")
        .and_then(|env| find_child(&scratch, env, "doc-request"))?;
    attr(&scratch, req, "uri")
}

/// Encodes a fetched document as a reply envelope. The serialized document
/// travels as escaped text so the envelope stays parseable regardless of
/// the payload's own markup.
pub fn encode_doc_response(uri: &str, xml: &str) -> String {
    let mut out = String::with_capacity(64 + uri.len() + xml.len());
    out.push_str("<env><doc uri=\"");
    escape_attr(uri, &mut out);
    out.push_str("\">");
    escape_text(xml, &mut out);
    out.push_str("</doc></env>");
    out
}

/// Decodes a doc reply envelope back into the document's XML text. Returns
/// `None` for non-doc messages and unparseable bytes — the caller treats
/// those as transport corruption (after checking [`decode_fault`] first).
pub fn decode_doc_response(message: &str) -> Option<String> {
    let mut scratch = Store::new();
    let doc = xqd_xml::parse_document(&mut scratch, message, None).ok()?;
    let d = find_child(&scratch, NodeId::new(doc, 0), "env")
        .and_then(|env| find_child(&scratch, env, "doc"))?;
    Some(scratch.doc(d.doc).string_value(d.idx))
}

/// A decoded request, with all node values shredded into the receiving
/// store.
#[derive(Debug)]
pub struct DecodedRequest {
    pub semantics: WireSemantics,
    pub static_ctx: StaticContext,
    pub query: String,
    pub calls: Vec<Vec<(String, Sequence)>>,
    pub result_spec: Option<PathSpec>,
}

/// Parses and shreds a request message.
///
/// Any structural failure — unparseable bytes, missing envelope, unknown
/// item vocabulary — is tagged `xrpc:transport-corrupt`: a malformed
/// request is indistinguishable from one damaged in flight, and the tag is
/// what lets the caller's retry policy classify it as retryable.
pub fn decode_request(store: &mut Store, message: &str) -> EvalResult<DecodedRequest> {
    decode_request_inner(store, message).map_err(tag_corrupt)
}

/// Tags an untyped decode failure as transport corruption (already-typed
/// errors pass through unchanged).
fn tag_corrupt(e: EvalError) -> EvalError {
    match e.code {
        Some(_) => e,
        None => EvalError::with_code("xrpc:transport-corrupt", e.message),
    }
}

fn decode_request_inner(store: &mut Store, message: &str) -> EvalResult<DecodedRequest> {
    let msg_doc = xqd_xml::parse_document(store, message, None)
        .map_err(|e| EvalError::new(format!("malformed request message: {e}")))?;
    let root = find_child(store, NodeId::new(msg_doc, 0), "env")
        .and_then(|env| find_child(store, env, "request"))
        .ok_or_else(|| EvalError::new("request message lacks env/request"))?;
    let semantics = attr(store, root, "semantics")
        .and_then(|s| WireSemantics::from_tag(&s))
        .ok_or_else(|| EvalError::new("request lacks semantics attribute"))?;
    let static_ctx = StaticContext {
        base_uri: attr(store, root, "static-base-uri").unwrap_or_default(),
        default_collation: attr(store, root, "default-collation").unwrap_or_default(),
        current_datetime: attr(store, root, "current-dateTime").unwrap_or_default(),
    };
    let query = find_child(store, root, "query")
        .map(|q| store.doc(q.doc).string_value(q.idx))
        .ok_or_else(|| EvalError::new("request lacks query"))?;

    let result_spec = find_child(store, root, "response-paths").map(|rp| {
        let mut spec = PathSpec::default();
        for c in children_named(store, rp, "used-path") {
            if let Some(p) = parse_rel_path(&store.doc(c.doc).string_value(c.idx)) {
                spec.used.push(p);
            }
        }
        for c in children_named(store, rp, "returned-path") {
            if let Some(p) = parse_rel_path(&store.doc(c.doc).string_value(c.idx)) {
                spec.returned.push(p);
            }
        }
        spec
    });

    let fragment_docs = shred_fragments(store, root)?;

    let mut calls = Vec::new();
    for call in children_named(store, root, "call") {
        let mut params = Vec::new();
        for param in children_named(store, call, "param") {
            let name = attr(store, param, "name")
                .ok_or_else(|| EvalError::new("param lacks name"))?;
            let seq_el = find_child(store, param, "sequence")
                .ok_or_else(|| EvalError::new("param lacks sequence"))?;
            let seq = decode_sequence(store, seq_el, &fragment_docs)?;
            params.push((name, seq));
        }
        calls.push(params);
    }
    Ok(DecodedRequest { semantics, static_ctx, query, calls, result_spec })
}

/// Parses and shreds a response message, returning one sequence per call.
///
/// A wire-encoded fault response decodes into its typed [`XrpcError`]
/// (carried as the `EvalError` code); structural failures are tagged
/// `xrpc:transport-corrupt` like on the request side.
pub fn decode_response(store: &mut Store, message: &str) -> EvalResult<Vec<Sequence>> {
    decode_response_inner(store, message).map_err(tag_corrupt)
}

fn decode_response_inner(store: &mut Store, message: &str) -> EvalResult<Vec<Sequence>> {
    let msg_doc = xqd_xml::parse_document(store, message, None)
        .map_err(|e| EvalError::new(format!("malformed response message: {e}")))?;
    let env = find_child(store, NodeId::new(msg_doc, 0), "env");
    if let Some(fault) = env.and_then(|env| find_child(store, env, "fault")) {
        let code = attr(store, fault, "code")
            .ok_or_else(|| EvalError::new("fault response lacks code"))?;
        let peer = attr(store, fault, "peer").unwrap_or_default();
        let msg = find_child(store, fault, "message")
            .map(|m| store.doc(m.doc).string_value(m.idx))
            .unwrap_or_default();
        return Err(XrpcError::from_code(&code, &peer, &msg).into());
    }
    let root = env
        .and_then(|env| find_child(store, env, "response"))
        .ok_or_else(|| EvalError::new("response message lacks env/response"))?;
    let fragment_docs = shred_fragments(store, root)?;
    let mut out = Vec::new();
    for cr in children_named(store, root, "call-result") {
        let seq_el = find_child(store, cr, "sequence")
            .ok_or_else(|| EvalError::new("call-result lacks sequence"))?;
        out.push(decode_sequence(store, seq_el, &fragment_docs)?);
    }
    Ok(out)
}

/// Copies each `<fragment>`'s content into a fresh document of `store`,
/// recording class-2 context metadata.
fn shred_fragments(store: &mut Store, root: NodeId) -> EvalResult<Vec<DocId>> {
    let mut out = Vec::new();
    let frags: Vec<NodeId> = match find_child(store, root, "fragments") {
        Some(fs) => children_named(store, fs, "fragment"),
        None => return Ok(out),
    };
    for f in frags {
        let uri = attr(store, f, "uri");
        let base = attr(store, f, "base-uri");
        let mut b = DocBuilder::new(None);
        if let Some(bu) = &base {
            b.set_base_uri(bu);
        }
        {
            let doc = store.doc(f.doc);
            let kids: Vec<u32> = doc.children(f.idx).collect();
            for c in kids {
                b.copy_subtree(doc, &store.names, c);
            }
        }
        let new_doc = store.attach(b.finish());
        if let Some(u) = uri {
            store
                .doc_mut(new_doc)
                .meta
                .insert(0, NodeMeta { base_uri: base.clone(), document_uri: Some(u) });
        }
        out.push(new_doc);
    }
    Ok(out)
}

fn decode_sequence(
    store: &mut Store,
    seq_el: NodeId,
    fragments: &[DocId],
) -> EvalResult<Sequence> {
    #[derive(Debug)]
    enum Raw {
        Atom(Atomic),
        Ref { fragid: u32, nodeid: u32, attr: Option<String> },
        Copy { kind: String, name: Option<String>, base: Option<String>, duri: Option<String>, idx: u32 },
    }
    let mut raws = Vec::new();
    {
        let doc = store.doc(seq_el.doc);
        for c in doc.children(seq_el.idx) {
            if doc.kind(c) != NodeKind::Element {
                continue;
            }
            let name = store.names.resolve(doc.name(c));
            let n = NodeId::new(seq_el.doc, c);
            match name {
                "atom" => {
                    let ty = attr(store, n, "type").unwrap_or_default();
                    let lex = doc.string_value(c);
                    raws.push(Raw::Atom(atom_from_lexical(&ty, lex)?));
                }
                "keyset" => {
                    let ty = attr(store, n, "type").unwrap_or_default();
                    let count: usize = attr(store, n, "n")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| EvalError::new("keyset lacks count"))?;
                    let payload = doc.string_value(c);
                    for lex in parse_keyset_payload(&payload, count)? {
                        raws.push(Raw::Atom(atom_from_lexical(&ty, lex)?));
                    }
                }
                "element" | "attribute" => {
                    let fragid: u32 = attr(store, n, "fragid")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| EvalError::new("ref lacks fragid"))?;
                    let nodeid: u32 = attr(store, n, "nodeid")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| EvalError::new("ref lacks nodeid"))?;
                    let attr_name =
                        if name == "attribute" { attr(store, n, "name") } else { None };
                    raws.push(Raw::Ref { fragid, nodeid, attr: attr_name });
                }
                "copy" => {
                    raws.push(Raw::Copy {
                        kind: attr(store, n, "kind").unwrap_or_default(),
                        name: attr(store, n, "name"),
                        base: attr(store, n, "base-uri"),
                        duri: attr(store, n, "document-uri"),
                        idx: c,
                    });
                }
                other => {
                    return Err(EvalError::new(format!("unknown sequence item <{other}>")))
                }
            }
        }
    }

    let msg_doc_id = seq_el.doc;
    let mut out: Vec<Item> = Vec::new();
    for raw in raws {
        match raw {
            Raw::Atom(a) => out.push(Item::Atom(a)),
            Raw::Ref { fragid, nodeid, attr: attr_name } => {
                let frag_doc = *fragments.get(fragid as usize - 1).ok_or_else(|| {
                    EvalError::new(format!("fragid {fragid} out of range"))
                })?;
                let doc = store.doc(frag_doc);
                let target = if nodeid == 0 {
                    0
                } else {
                    node_at_nodeid(doc, 1, doc.len() as u32 - 1, nodeid).ok_or_else(|| {
                        EvalError::new(format!("nodeid {nodeid} out of range"))
                    })?
                };
                let node = match attr_name {
                    None => target,
                    Some(name) => {
                        let name_id = store.names.get(&name);
                        doc.attributes(target)
                            .find(|&a| Some(doc.name(a)) == name_id)
                            .ok_or_else(|| {
                                EvalError::new(format!("attribute {name} not found on ref"))
                            })?
                    }
                };
                out.push(Item::Node(NodeId::new(frag_doc, node)));
            }
            Raw::Copy { kind, name, base, duri, idx } => {
                // each by-value copy becomes its own fragment document —
                // this separation is precisely what loses identity/order
                let mut b = DocBuilder::new(None);
                if let Some(bu) = &base {
                    b.set_base_uri(bu);
                }
                let result_idx: u32;
                {
                    let doc = store.doc(msg_doc_id);
                    match kind.as_str() {
                        "element" => {
                            let child = doc.first_child(idx).ok_or_else(|| {
                                EvalError::new("element copy has no content")
                            })?;
                            b.copy_subtree(doc, &store.names, child);
                            result_idx = 1;
                        }
                        "document" => {
                            let kids: Vec<u32> = doc.children(idx).collect();
                            for c in kids {
                                b.copy_subtree(doc, &store.names, c);
                            }
                            result_idx = 0;
                        }
                        "attribute" => {
                            b.start_element("attribute-holder");
                            b.attribute(
                                name.as_deref().unwrap_or("value"),
                                &doc.string_value(idx),
                            );
                            b.end_element();
                            result_idx = 2;
                        }
                        "text" => {
                            b.text(&doc.string_value(idx));
                            result_idx = 1;
                        }
                        "comment" => {
                            b.comment(&doc.string_value(idx));
                            result_idx = 1;
                        }
                        "pi" => {
                            b.pi(name.as_deref().unwrap_or("pi"), &doc.string_value(idx));
                            result_idx = 1;
                        }
                        other => {
                            return Err(EvalError::new(format!("unknown copy kind {other:?}")))
                        }
                    }
                }
                let new_doc = store.attach(b.finish());
                if duri.is_some() || base.is_some() {
                    store.doc_mut(new_doc).meta.insert(
                        result_idx,
                        NodeMeta { base_uri: base, document_uri: duri },
                    );
                }
                out.push(Item::Node(NodeId::new(new_doc, result_idx)));
            }
        }
    }
    Ok(out.into())
}

// -- tiny DOM helpers over the parsed message ------------------------------

fn find_child(store: &Store, parent: NodeId, name: &str) -> Option<NodeId> {
    let name_id = store.names.get(name)?;
    let doc = store.doc(parent.doc);
    doc.children(parent.idx)
        .find(|&c| doc.kind(c) == NodeKind::Element && doc.name(c) == name_id)
        .map(|c| NodeId::new(parent.doc, c))
}

fn children_named(store: &Store, parent: NodeId, name: &str) -> Vec<NodeId> {
    let Some(name_id) = store.names.get(name) else {
        return vec![];
    };
    let doc = store.doc(parent.doc);
    doc.children(parent.idx)
        .filter(|&c| doc.kind(c) == NodeKind::Element && doc.name(c) == name_id)
        .map(|c| NodeId::new(parent.doc, c))
        .collect()
}

fn attr(store: &Store, node: NodeId, name: &str) -> Option<String> {
    store.node(node).attribute(name).map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqd_xquery::ast::RelPath;

    fn ctx() -> StaticContext {
        StaticContext::default()
    }

    fn sample_store() -> (Store, DocId) {
        let mut s = Store::new();
        let d = xqd_xml::parse_document(
            &mut s,
            "<r><p id=\"1\"><q>hello</q><big>payload</big></p><z/></r>",
            Some("r.xml"),
        )
        .unwrap();
        (s, d)
    }

    #[test]
    fn atoms_roundtrip_all_types() {
        let store = Store::new();
        let calls = vec![vec![(
            "x".to_string(),
            vec![
                Item::Atom(Atomic::Int(-7)),
                Item::Atom(Atomic::Dbl(2.5)),
                Item::Atom(Atomic::Bool(true)),
                Item::Atom(Atomic::Str("a<b&c".into())),
                Item::Atom(Atomic::Untyped("u".into())),
            ]
            .into(),
        )]];
        let msg =
            encode_request(&store, WireSemantics::Value, &ctx(), "$x", &calls, None, None)
                .unwrap();
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        assert_eq!(decoded.calls[0][0].1, calls[0][0].1);
        assert_eq!(decoded.query, "$x");
        assert_eq!(decoded.semantics, WireSemantics::Value);
        assert_eq!(decoded.static_ctx, ctx());
    }

    #[test]
    fn bulk_request_carries_every_call() {
        let store = Store::new();
        let calls: Vec<Vec<(String, Sequence)>> = (0..5)
            .map(|i| vec![("n".to_string(), vec![Item::Atom(Atomic::Int(i))].into())])
            .collect();
        let msg =
            encode_request(&store, WireSemantics::Fragment, &ctx(), "$n", &calls, None, None)
                .unwrap();
        assert_eq!(msg.matches("<call>").count(), 5);
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        assert_eq!(decoded.calls.len(), 5);
        for (i, c) in decoded.calls.iter().enumerate() {
            assert_eq!(c[0].1, vec![Item::Atom(Atomic::Int(i as i64))]);
        }
    }

    #[test]
    fn response_roundtrip_fragment() {
        let (store, d) = sample_store();
        let results: Vec<Sequence> =
            vec![vec![Item::Node(NodeId::new(d, 2))].into(), vec![Item::Node(NodeId::new(d, 8))].into()];
        let msg = encode_response(&store, WireSemantics::Fragment, &results, None).unwrap();
        let mut local = Store::new();
        let decoded = decode_response(&mut local, &msg).unwrap();
        assert_eq!(decoded.len(), 2);
        let Item::Node(p) = &decoded[0][0] else { panic!() };
        assert_eq!(local.doc(p.doc).string_value(p.idx), "hellopayload");
        let Item::Node(z) = &decoded[1][0] else { panic!() };
        assert_eq!(local.node(*z).name(), "z");
    }

    #[test]
    fn projection_request_prunes_payload() {
        let (store, d) = sample_store();
        // param = the <p> element, used via child::q (atomized: text
        // descendants needed) and attribute::id — the suffixes the path
        // analysis produces for "$p/q = … and $p/@id = …"
        use xqd_xquery::ast::{NameTest, RelStep};
        let q_step = RelStep::Axis { axis: xqd_xml::Axis::Child, test: NameTest::Name("q".into()) };
        let text_step =
            RelStep::Axis { axis: xqd_xml::Axis::DescendantOrSelf, test: NameTest::Text };
        let id_step =
            RelStep::Axis { axis: xqd_xml::Axis::Attribute, test: NameTest::Name("id".into()) };
        let spec = PathSpec {
            used: vec![
                RelPath(vec![q_step.clone()]),
                RelPath(vec![q_step, text_step]),
                RelPath(vec![id_step]),
            ],
            returned: vec![],
        };
        let calls = vec![vec![("p".to_string(), Sequence::unit(Item::Node(NodeId::new(d, 2))))]];
        let msg = encode_request(
            &store,
            WireSemantics::Projection,
            &ctx(),
            "$p",
            &calls,
            Some(std::slice::from_ref(&spec)),
            None,
        )
        .unwrap();
        assert!(!msg.contains("payload"), "projected away: {msg}");
        assert!(!msg.contains("<big"), "untouched sibling pruned: {msg}");
        assert!(msg.contains("<q>hello</q>"), "{msg}");
        // and the reference resolves on the remote side
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        let Item::Node(p) = &decoded.calls[0][0].1[0] else { panic!() };
        assert_eq!(remote.node(*p).name(), "p");
        assert_eq!(remote.node(*p).attribute("id"), Some("1"));
    }

    #[test]
    fn projection_without_spec_ships_subtrees() {
        let (store, d) = sample_store();
        let calls = vec![vec![("p".to_string(), Sequence::unit(Item::Node(NodeId::new(d, 2))))]];
        let msg = encode_request(
            &store,
            WireSemantics::Projection,
            &ctx(),
            "$p",
            &calls,
            None,
            None,
        )
        .unwrap();
        assert!(msg.contains("payload"), "full subtree shipped: {msg}");
    }

    #[test]
    fn response_paths_travel_in_request() {
        let store = Store::new();
        let spec = PathSpec {
            used: vec![RelPath(vec![])],
            returned: vec![RelPath(vec![xqd_xquery::ast::RelStep::Axis {
                axis: xqd_xml::Axis::Parent,
                test: xqd_xquery::ast::NameTest::Name("a".into()),
            }])],
        };
        let msg = encode_request(
            &store,
            WireSemantics::Projection,
            &ctx(),
            "1",
            &[vec![]],
            None,
            Some(&spec),
        )
        .unwrap();
        assert!(msg.contains("<returned-path>parent::a</returned-path>"), "{msg}");
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        assert_eq!(decoded.result_spec, Some(spec));
    }

    #[test]
    fn attribute_param_under_value_and_fragment() {
        let (store, d) = sample_store();
        let attr = Item::Node(NodeId::new(d, 3)); // @id of <p>
        for wire in [WireSemantics::Value, WireSemantics::Fragment] {
            let calls = vec![vec![("a".to_string(), Sequence::unit(attr.clone()))]];
            let msg = encode_request(&store, wire, &ctx(), "$a", &calls, None, None).unwrap();
            let mut remote = Store::new();
            let decoded = decode_request(&mut remote, &msg).unwrap();
            let Item::Node(n) = &decoded.calls[0][0].1[0] else { panic!() };
            assert_eq!(
                remote.doc(n.doc).kind(n.idx),
                xqd_xml::NodeKind::Attribute,
                "{wire:?}"
            );
            assert_eq!(remote.doc(n.doc).string_value(n.idx), "1", "{wire:?}");
        }
    }

    #[test]
    fn class2_metadata_on_fragments() {
        let (store, d) = sample_store();
        let calls = vec![vec![("p".to_string(), Sequence::unit(Item::Node(NodeId::new(d, 0))))]];
        let msg =
            encode_request(&store, WireSemantics::Fragment, &ctx(), "$p", &calls, None, None)
                .unwrap();
        assert!(msg.contains("uri=\"r.xml\""), "{msg}");
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        let Item::Node(n) = &decoded.calls[0][0].1[0] else { panic!() };
        assert_eq!(n.idx, 0, "document node shipped as nodeid 0");
        let meta = remote.doc(n.doc).meta.get(&0).expect("class-2 metadata");
        assert_eq!(meta.document_uri.as_deref(), Some("r.xml"));
    }

    #[test]
    fn malformed_messages_are_rejected() {
        let mut s = Store::new();
        assert!(decode_request(&mut s, "<env><bogus/></env>").is_err());
        assert!(decode_request(&mut s, "not xml").is_err());
        assert!(decode_response(&mut s, "<env><request/></env>").is_err());
        // a reference to a missing fragment
        let msg = "<env><request semantics=\"fragment\" static-base-uri=\"\" \
                   default-collation=\"\" current-dateTime=\"\"><query>1</query>\
                   <call><param name=\"x\"><sequence>\
                   <element fragid=\"3\" nodeid=\"1\"/>\
                   </sequence></param></call></request></env>";
        assert!(decode_request(&mut s, msg).is_err());
    }

    #[test]
    fn fault_responses_roundtrip_on_the_wire() {
        use std::time::Duration;
        let faults = [
            XrpcError::UnknownPeer { peer: "p<1>".into() },
            XrpcError::PeerBusy {
                peer: "p1".into(),
                detail: "slot held".into(),
                retry_after: Duration::from_millis(40),
            },
            XrpcError::Timeout { peer: "p1".into(), deadline: Duration::from_millis(250) },
            XrpcError::TransportCorrupt { peer: "p1".into(), detail: "bad & bytes".into() },
            XrpcError::RemoteFault {
                peer: "p1".into(),
                code: "err:FOAR0001".into(),
                message: "division by zero".into(),
            },
            XrpcError::Cancelled { peer: "p1".into(), reason: "budget".into() },
            XrpcError::BreakerOpen { peer: "p1".into(), retry_after: Duration::ZERO },
            XrpcError::Overloaded { retry_after_ms: 80 },
        ];
        for f in &faults {
            let wire = encode_fault(f);
            // decode_fault recovers the variant (messages are display text,
            // so compare the discriminating fields)
            let back = decode_fault(&wire).expect("fault parses");
            assert_eq!(back.code(), f.code(), "{wire}");
            assert_eq!(back.peer(), f.peer(), "{wire}");
            // ... and decode_response surfaces it as the typed error
            let mut s = Store::new();
            let err = decode_response(&mut s, &wire).unwrap_err();
            assert_eq!(err.code.as_deref(), Some(f.code().as_str()), "{wire}");
            assert!(err.message.contains(f.peer()), "{err}");
        }
    }

    #[test]
    fn breaker_fault_roundtrips_retry_after() {
        let f = XrpcError::BreakerOpen {
            peer: "p1".into(),
            retry_after: std::time::Duration::from_millis(375),
        };
        let wire = encode_fault(&f);
        assert!(wire.contains("retry-after-ms=\"375\""), "{wire}");
        assert_eq!(decode_fault(&wire), Some(f));
    }

    #[test]
    fn busy_and_overload_faults_roundtrip_retry_after() {
        use std::time::Duration;
        let busy = XrpcError::PeerBusy {
            peer: "p2".into(),
            detail: "wait queue full".into(),
            retry_after: Duration::from_millis(60),
        };
        let wire = encode_fault(&busy);
        assert!(wire.contains("retry-after-ms=\"60\""), "{wire}");
        // the detail is display text on the wire; the typed fields round-trip
        let back = decode_fault(&wire).expect("fault parses");
        assert_eq!(back.code(), busy.code());
        assert_eq!(back.peer(), busy.peer());
        assert_eq!(back.retry_after(), busy.retry_after());

        let shed = XrpcError::Overloaded { retry_after_ms: 210 };
        let wire = encode_fault(&shed);
        assert!(wire.contains("retry-after-ms=\"210\""), "{wire}");
        assert_eq!(decode_fault(&wire), Some(shed));
    }

    #[test]
    fn non_fault_messages_decode_as_none_fault() {
        assert!(decode_fault("<env><response semantics=\"value\"/></env>").is_none());
        assert!(decode_fault("totally not xml <<<").is_none());
        assert!(decode_fault("").is_none());
    }

    #[test]
    fn decode_errors_are_tagged_transport_corrupt() {
        let mut s = Store::new();
        for msg in ["not xml", "<env><bogus/></env>", "<env><request/></env>"] {
            let err = decode_request(&mut s, msg).unwrap_err();
            assert!(err.has_code("xrpc:transport-corrupt"), "{msg:?} → {err}");
        }
        let err = decode_response(&mut s, "<env><request/></env>").unwrap_err();
        assert!(err.has_code("xrpc:transport-corrupt"), "{err}");
    }

    #[test]
    fn long_atom_runs_front_code_and_roundtrip() {
        let store = Store::new();
        // sorted person ids with heavy shared prefixes — the semijoin shape
        let keys: Vec<Item> = (0..20)
            .map(|i| Item::Atom(Atomic::Str(format!("person{i}"))))
            .collect();
        let calls = vec![vec![("k".to_string(), keys.clone().into())]];
        let msg =
            encode_request(&store, WireSemantics::Value, &ctx(), "$k", &calls, None, None)
                .unwrap();
        assert!(msg.contains("<keyset type=\"string\" n=\"20\">"), "{msg}");
        assert!(!msg.contains("<atom"), "run fully subsumed: {msg}");
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        assert_eq!(decoded.calls[0][0].1, Sequence::from(keys));
        // and the block is genuinely smaller than the per-atom form
        let (n, saved) = keyset_stats(&msg);
        assert_eq!(n, 20);
        assert!(saved > 0, "front coding must save bytes: {msg}");
    }

    #[test]
    fn short_runs_and_mixed_types_keep_atom_form() {
        let store = Store::new();
        let mut items: Vec<Item> = (0..KEYSET_MIN_RUN - 1)
            .map(|i| Item::Atom(Atomic::Int(i as i64)))
            .collect();
        items.push(Item::Atom(Atomic::Str("x".into())));
        let calls = vec![vec![("k".to_string(), items.into())]];
        let msg =
            encode_request(&store, WireSemantics::Value, &ctx(), "$k", &calls, None, None)
                .unwrap();
        assert!(!msg.contains("<keyset"), "{msg}");
        assert_eq!(keyset_stats(&msg), (0, 0));
    }

    #[test]
    fn keysets_escape_and_preserve_awkward_keys() {
        let store = Store::new();
        let keys: Vec<Item> = ["a<b", "a<b&c", "a b:c", "::", "9:1:", "", "zz", "zz", "é–ü", "é–üx"]
            .iter()
            .map(|s| Item::Atom(Atomic::Str(s.to_string())))
            .collect();
        let results = vec![Sequence::from(keys.clone())];
        let msg = encode_response(&store, WireSemantics::Value, &results, None).unwrap();
        assert!(msg.contains("<keyset"), "{msg}");
        let mut local = Store::new();
        let decoded = decode_response(&mut local, &msg).unwrap();
        assert_eq!(decoded[0], Sequence::from(keys));
    }

    #[test]
    fn keyset_roundtrips_every_atom_type() {
        let store = Store::new();
        for mk in [
            (|i: i64| Atomic::Int(i * 7 - 3)) as fn(i64) -> Atomic,
            |i| Atomic::Dbl(i as f64 / 4.0),
            |i| Atomic::Bool(i % 2 == 0),
            |i| Atomic::Str(format!("s{i}")),
            |i| Atomic::Untyped(format!("u{i}")),
        ] {
            let keys: Vec<Item> = (0..12).map(|i| Item::Atom(mk(i))).collect();
            let results = vec![Sequence::from(keys.clone())];
            let msg = encode_response(&store, WireSemantics::Value, &results, None).unwrap();
            assert!(msg.contains("<keyset"), "{msg}");
            let mut local = Store::new();
            let decoded = decode_response(&mut local, &msg).unwrap();
            assert_eq!(decoded[0], Sequence::from(keys), "{msg}");
        }
    }

    #[test]
    fn corrupt_keysets_are_rejected() {
        let mut s = Store::new();
        for payload in ["0:2:ab", "junk", "0:9:ab", "5:1:x0:1:y"] {
            let msg = format!(
                "<env><response semantics=\"value\"><call-result><sequence>\
                 <keyset type=\"string\" n=\"2\">{payload}</keyset>\
                 </sequence></call-result></response></env>"
            );
            let err = decode_response(&mut s, &msg).unwrap_err();
            assert!(err.has_code("xrpc:transport-corrupt"), "{payload:?} → {err}");
        }
    }

    #[test]
    fn text_and_comment_nodes_ship_by_value() {
        let mut store = Store::new();
        let d = xqd_xml::parse_document(&mut store, "<a>hi<!--note--></a>", None).unwrap();
        // 0=doc 1=a 2=text 3=comment
        let calls = vec![vec![(
            "x".to_string(),
            vec![Item::Node(NodeId::new(d, 2)), Item::Node(NodeId::new(d, 3))].into(),
        )]];
        let msg =
            encode_request(&store, WireSemantics::Value, &ctx(), "$x", &calls, None, None)
                .unwrap();
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        let seq = &decoded.calls[0][0].1;
        let Item::Node(t) = &seq[0] else { panic!() };
        assert_eq!(remote.doc(t.doc).kind(t.idx), xqd_xml::NodeKind::Text);
        assert_eq!(remote.doc(t.doc).string_value(t.idx), "hi");
        let Item::Node(c) = &seq[1] else { panic!() };
        assert_eq!(remote.doc(c.doc).kind(c.idx), xqd_xml::NodeKind::Comment);
    }
}
