//! Transport abstraction over the XRPC envelope protocol.
//!
//! Every envelope exchange — request/response, doc fetch, fault — goes
//! through the [`Transport`] trait: the deterministic in-process simulated
//! transport (the chaos oracle, unchanged behind this seam) and the real
//! TCP transport ([`crate::tcp`]) implement the same one-exchange contract,
//! so the coordinator above cannot tell a simulated federation from a
//! multi-process one.
//!
//! The module also owns the **length-prefixed framing** both ends of the
//! socket speak: a 4-byte big-endian length followed by that many bytes of
//! UTF-8 envelope text. Framing is where a real network's failure modes
//! live — truncated prefixes, oversized declared lengths, mid-frame EOF —
//! and every one of them maps to a *typed* error
//! (`xrpc:transport-corrupt`), never a panic and never an allocation sized
//! by an untrusted length field.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use crate::exec::RetryPolicy;
use crate::health::seeded_fraction;
use crate::message::decode_fault;
use crate::net::XrpcError;

/// Hard cap on a frame's declared payload length. A peer declaring more is
/// answered with a typed fault, and — crucially — the declared length is
/// validated *before* any allocation, so a hostile 4-byte prefix cannot
/// reserve gigabytes.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Why a frame could not be read. Carries enough detail for an honest
/// fault message; [`FrameError::into_xrpc`] maps every variant into the
/// typed taxonomy.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF before the first prefix byte: the peer closed the
    /// connection between frames. Not corruption — connection lifecycle.
    Closed,
    /// EOF after 1–3 prefix bytes: the length header itself was cut.
    TruncatedPrefix(usize),
    /// The prefix declared more than the frame cap. Rejected before any
    /// buffer is sized from it.
    Oversized { declared: u64, max: usize },
    /// EOF mid-payload: `got` of `declared` bytes arrived.
    MidFrameEof { got: usize, declared: usize },
    /// The payload is not valid UTF-8 (XRPC envelopes are XML text).
    Utf8 { valid_up_to: usize },
    /// An I/O error during the read; `timed_out` distinguishes a read
    /// deadline from a reset/refused connection.
    Io { detail: String, timed_out: bool },
}

impl FrameError {
    /// True for the clean between-frames close (normal connection end).
    pub fn is_clean_close(&self) -> bool {
        matches!(self, FrameError::Closed)
    }

    /// True when the failure was a read deadline expiring.
    pub fn timed_out(&self) -> bool {
        matches!(self, FrameError::Io { timed_out: true, .. })
    }

    /// Lifts the framing failure into the typed taxonomy, attributed to
    /// `peer`. Read deadlines become [`XrpcError::Timeout`]; everything
    /// else — including a clean close where a reply was still owed — is
    /// [`XrpcError::TransportCorrupt`].
    pub fn into_xrpc(self, peer: &str, deadline: Duration) -> XrpcError {
        let peer = peer.to_string();
        match self {
            FrameError::Io { timed_out: true, .. } => XrpcError::Timeout { peer, deadline },
            FrameError::Closed => XrpcError::TransportCorrupt {
                peer,
                detail: "connection closed before a reply frame".to_string(),
            },
            FrameError::TruncatedPrefix(got) => XrpcError::TransportCorrupt {
                peer,
                detail: format!("length prefix truncated after {got} byte(s)"),
            },
            FrameError::Oversized { declared, max } => XrpcError::TransportCorrupt {
                peer,
                detail: format!("declared frame length {declared} exceeds the {max}-byte cap"),
            },
            FrameError::MidFrameEof { got, declared } => XrpcError::TransportCorrupt {
                peer,
                detail: format!("frame truncated mid-payload ({got} of {declared} bytes)"),
            },
            FrameError::Utf8 { valid_up_to } => XrpcError::TransportCorrupt {
                peer,
                detail: format!("frame payload byte {valid_up_to} is not valid UTF-8"),
            },
            FrameError::Io { detail, .. } => XrpcError::TransportCorrupt { peer, detail },
        }
    }
}

fn io_frame_err(e: std::io::Error) -> FrameError {
    let timed_out = matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    );
    FrameError::Io { detail: format!("read failed: {e}"), timed_out }
}

/// Writes one length-prefixed frame and flushes it.
pub fn write_frame(w: &mut dyn Write, payload: &str) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload exceeds u32 length")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads the 4-byte length prefix. `Ok(None)` is a clean close (EOF before
/// the first byte); a partial prefix is [`FrameError::TruncatedPrefix`].
pub fn read_prefix(r: &mut dyn Read) -> Result<Option<u32>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::TruncatedPrefix(got)),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_frame_err(e)),
        }
    }
    Ok(Some(u32::from_be_bytes(prefix)))
}

/// Reads a frame payload of `declared` bytes, capped by `max_len`. The
/// declared length is validated before any buffer is sized from it, and
/// the read itself is bounded, so a lying prefix can neither allocate nor
/// stream without limit.
pub fn read_payload(
    r: &mut dyn Read,
    declared: u32,
    max_len: usize,
) -> Result<String, FrameError> {
    let declared = declared as usize;
    if declared > max_len {
        return Err(FrameError::Oversized { declared: declared as u64, max: max_len });
    }
    // grow towards the declared size instead of trusting it up front
    let mut buf = Vec::with_capacity(declared.min(64 * 1024));
    let mut limited = r.take(declared as u64);
    match limited.read_to_end(&mut buf) {
        Ok(_) => {}
        Err(e) => return Err(io_frame_err(e)),
    }
    if buf.len() < declared {
        return Err(FrameError::MidFrameEof { got: buf.len(), declared });
    }
    String::from_utf8(buf)
        .map_err(|e| FrameError::Utf8 { valid_up_to: e.utf8_error().valid_up_to() })
}

/// Reads one whole frame: prefix plus payload. `Ok(None)` is a clean
/// close between frames.
pub fn read_frame(r: &mut dyn Read, max_len: usize) -> Result<Option<String>, FrameError> {
    match read_prefix(r)? {
        None => Ok(None),
        Some(declared) => read_payload(r, declared, max_len).map(Some),
    }
}

/// One envelope exchange with a named peer.
///
/// The reply is always an envelope — `<response>`, `<doc>`, or a typed
/// `<fault>` the caller decodes — mirroring the simulated transport's
/// contract that remote failures travel as wire bytes. `Err` is reserved
/// for failures with no reply envelope at all: an unknown peer, a refused
/// or reset connection, a frame that could not be read within `budget`.
pub trait Transport: Send + Sync {
    /// Ships `request` to `peer` and returns the reply envelope, spending
    /// at most `budget` wall clock on this one attempt.
    fn exchange(&self, peer: &str, request: &str, budget: Duration) -> Result<String, XrpcError>;

    /// Fetches the serialized document `uri` from `host` (the data-shipping
    /// path). The default implementation rides on [`Transport::exchange`]
    /// with a doc-request envelope.
    fn fetch_doc(&self, host: &str, uri: &str, budget: Duration) -> Result<String, XrpcError> {
        let reply = self.exchange(host, &crate::message::encode_doc_request(uri), budget)?;
        if reply.contains("<fault ") {
            if let Some(e) = decode_fault(&reply) {
                return Err(e);
            }
        }
        crate::message::decode_doc_response(&reply).ok_or_else(|| XrpcError::TransportCorrupt {
            peer: host.to_string(),
            detail: format!("doc reply for {uri} is not a doc envelope"),
        })
    }
}

/// Outcome of one retried logical call: failed attempts (for the health
/// scoreboard) plus the decoded-or-typed result.
pub struct CallOutcome {
    pub failed_attempts: u32,
    pub outcome: Result<String, XrpcError>,
}

/// Drives one logical call through `transport` under `policy`: replays
/// retryable failures with exponential backoff and deterministic jitter
/// (seeded per `(peer, attempt)`), honors server-supplied `retry-after-ms`
/// hints, decodes fault envelopes into typed errors, and gives up when the
/// deadline budget or the attempt budget runs out.
///
/// This is the real-time sibling of the simulated transport's retry loop:
/// backoff here is a genuine `thread::sleep`, and the deadline is wall
/// clock.
pub fn call_with_retry(
    transport: &dyn Transport,
    peer: &str,
    request: &str,
    policy: &RetryPolicy,
    jitter_seed: u64,
) -> CallOutcome {
    let started = Instant::now();
    let mut failed = 0u32;
    loop {
        let budget = policy.deadline.saturating_sub(started.elapsed());
        if budget.is_zero() {
            return CallOutcome {
                failed_attempts: failed,
                outcome: Err(XrpcError::Cancelled {
                    peer: peer.to_string(),
                    reason: format!("retry budget exhausted after {failed} failed attempt(s)"),
                }),
            };
        }
        let attempt = match transport.exchange(peer, request, budget) {
            Ok(reply) if reply.contains("<fault ") => match decode_fault(&reply) {
                Some(e) => Err(e),
                None => Ok(reply),
            },
            other => other,
        };
        match attempt {
            Ok(reply) => return CallOutcome { failed_attempts: failed, outcome: Ok(reply) },
            Err(e) => {
                // Overloaded is final in the simulated world (the
                // coordinator's own admission verdict), but over the wire
                // it is the *server's* shed carrying an honest
                // `retry-after-ms` — the wall-clock driver waits the hint
                // out and tries again.
                let worth_retrying =
                    e.retryable() || matches!(e, XrpcError::Overloaded { .. });
                if !worth_retrying || failed + 1 >= policy.max_attempts {
                    return CallOutcome { failed_attempts: failed + 1, outcome: Err(e) };
                }
                failed += 1;
                let jitter = seeded_fraction(jitter_seed, peer, u64::from(failed));
                let wait = policy.backoff_with_hint(failed, jitter, e.retry_after());
                let elapsed = started.elapsed();
                if elapsed + wait >= policy.deadline {
                    return CallOutcome {
                        failed_attempts: failed,
                        outcome: Err(XrpcError::Cancelled {
                            peer: peer.to_string(),
                            reason: format!(
                                "retry budget exhausted after {failed} failed attempt(s)"
                            ),
                        }),
                    };
                }
                std::thread::sleep(wait);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "<env><request/></env>").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_LEN).unwrap().as_deref(),
            Some("<env><request/></env>")
        );
        // a second read sees the clean close
        assert!(read_frame(&mut cur, MAX_FRAME_LEN).unwrap().is_none());
    }

    /// Replies with an `Overloaded` fault envelope (carrying a
    /// `retry-after-ms` hint) a fixed number of times, then succeeds.
    struct HintingTransport {
        shed_remaining: std::sync::Mutex<u32>,
        hint_ms: u64,
    }

    impl Transport for HintingTransport {
        fn exchange(&self, _peer: &str, _req: &str, _budget: Duration) -> Result<String, XrpcError> {
            let mut left = self.shed_remaining.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                return Ok(crate::message::encode_fault(&XrpcError::Overloaded {
                    retry_after_ms: self.hint_ms,
                }));
            }
            Ok("<env><response/></env>".to_string())
        }
    }

    #[test]
    fn retry_honors_server_retry_after_hint() {
        // base backoff of 1ms would retry almost immediately; the server's
        // 80ms hint must dominate the wait
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            deadline: Duration::from_secs(5),
        };
        let transport = HintingTransport {
            shed_remaining: std::sync::Mutex::new(1),
            hint_ms: 80,
        };
        let t0 = Instant::now();
        let out = call_with_retry(&transport, "p", "<env><request/></env>", &policy, 7);
        let elapsed = t0.elapsed();
        assert_eq!(out.failed_attempts, 1);
        assert!(out.outcome.is_ok(), "{:?}", out.outcome);
        assert!(
            elapsed >= Duration::from_millis(80),
            "retried before the hinted wait: {elapsed:?}"
        );
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"tiny");
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err:?}");
        assert_eq!(err.into_xrpc("p", Duration::from_secs(1)).code(), "xrpc:transport-corrupt");
    }
}
