//! Simulated network, fault injection, typed failure semantics and
//! execution metrics.
//!
//! The paper's testbed was three machines on 1 Gb/s Ethernet. We replace
//! the wire with a cost model — `latency + bytes / bandwidth` per message —
//! while keeping everything else real: messages are actually serialized to
//! XML bytes and re-parsed on the other side, so the byte counts driving
//! Figures 7 and 10 are exact, and the CPU portions of the Figure 8
//! breakdown (shred / exec / (de)serialize) are measured wall-clock times.
//!
//! Beyond the paper's cooperative-LAN assumption this module adds the
//! federation's **failure model**:
//!
//! * [`XrpcError`] — the typed taxonomy every RPC-path failure collapses
//!   into. Faults are encoded on the wire as XRPC fault responses (SOAP-
//!   fault style) and round-trip through the real message codecs.
//! * [`FaultPlan`] — deterministic, seeded fault injection driven by the
//!   in-tree `xqd-prng`. A fault decision is a pure function of
//!   `(seed, peer, per-peer attempt ordinal)`, so a schedule replays
//!   identically regardless of thread interleaving — the property the
//!   chaos suite builds on.

use std::fmt;
use std::time::Duration;

use xqd_prng::Rng;
use xqd_xquery::value::EvalError;

// ---------------------------------------------------------------------------
// typed failure taxonomy
// ---------------------------------------------------------------------------

/// Typed XRPC-path failure. Every error the distributed executor can
/// surface is one of these; stringly failures only exist *inside* remote
/// evaluation, where they are wrapped into [`XrpcError::RemoteFault`] and
/// shipped back as a wire-encoded fault response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XrpcError {
    /// The target peer is not part of the federation. Not retryable: no
    /// amount of waiting makes an unconfigured peer appear.
    UnknownPeer { peer: String },
    /// The peer exists but could not be engaged (slot held past the
    /// deadline, its bounded wait queue was full, or the fault plan
    /// declared it down). Retryable after `retry_after` — an honest hint
    /// derived from the peer's observed service time where one is known.
    PeerBusy { peer: String, detail: String, retry_after: Duration },
    /// The call did not complete within its per-call deadline (hang, or
    /// injected latency pushing the chain past the budget).
    Timeout { peer: String, deadline: Duration },
    /// A message was truncated or corrupted in flight and could not be
    /// decoded. Retryable: replays are safe because remote calls are pure.
    TransportCorrupt { peer: String, detail: String },
    /// The remote side evaluated the call and failed; `code` carries the
    /// remote error code (or `xrpc:panic` for a captured worker panic).
    /// Not retryable: remote evaluation is deterministic.
    RemoteFault { peer: String, code: String, message: String },
    /// The call was abandoned before another attempt could start (its
    /// retry/backoff budget was exhausted by earlier attempts).
    Cancelled { peer: String, reason: String },
    /// The peer's circuit breaker is open: recent consecutive failures
    /// tripped it and the cooldown has not elapsed on the simulated clock.
    /// Not retryable on the *same* peer (that is the breaker's whole
    /// point), but failover-eligible — another replica may answer — and
    /// degradable as a last resort.
    BreakerOpen { peer: String, retry_after: Duration },
    /// The coordinator's admission controller shed this query: the bounded
    /// run queue was full when it arrived. Nothing was dispatched, so the
    /// caller may safely resubmit after `retry_after_ms` (an honest
    /// estimate of when queue space frees up). Not retryable *immediately*
    /// — hammering an overloaded coordinator is the failure mode admission
    /// control exists to prevent — and not degradable: no work was lost.
    Overloaded { retry_after_ms: u64 },
}

impl XrpcError {
    /// The wire/`EvalError` code of this error. [`XrpcError::RemoteFault`]
    /// propagates the remote code verbatim.
    pub fn code(&self) -> String {
        match self {
            XrpcError::UnknownPeer { .. } => "xrpc:unknown-peer".into(),
            XrpcError::PeerBusy { .. } => "xrpc:peer-busy".into(),
            XrpcError::Timeout { .. } => "xrpc:timeout".into(),
            XrpcError::TransportCorrupt { .. } => "xrpc:transport-corrupt".into(),
            XrpcError::RemoteFault { code, .. } => code.clone(),
            XrpcError::Cancelled { .. } => "xrpc:cancelled".into(),
            XrpcError::BreakerOpen { .. } => "xrpc:breaker-open".into(),
            XrpcError::Overloaded { .. } => "xrpc:overloaded".into(),
        }
    }

    /// The peer the failure is attributed to.
    pub fn peer(&self) -> &str {
        match self {
            XrpcError::UnknownPeer { peer }
            | XrpcError::PeerBusy { peer, .. }
            | XrpcError::Timeout { peer, .. }
            | XrpcError::TransportCorrupt { peer, .. }
            | XrpcError::RemoteFault { peer, .. }
            | XrpcError::Cancelled { peer, .. }
            | XrpcError::BreakerOpen { peer, .. } => peer,
            // an admission shed happens before any peer is chosen
            XrpcError::Overloaded { .. } => "",
        }
    }

    /// The server-suggested resubmission delay, for errors that carry one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            XrpcError::PeerBusy { retry_after, .. }
            | XrpcError::BreakerOpen { retry_after, .. } => Some(*retry_after),
            XrpcError::Overloaded { retry_after_ms } => {
                Some(Duration::from_millis(*retry_after_ms))
            }
            _ => None,
        }
    }

    /// True if another attempt of the same call may succeed: the failure
    /// was in transport, not in evaluation.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            XrpcError::PeerBusy { .. }
                | XrpcError::Timeout { .. }
                | XrpcError::TransportCorrupt { .. }
        )
    }

    /// True if graceful degradation (data shipping + local evaluation) is a
    /// sound response: the peer could not *answer*, as opposed to having
    /// answered with an evaluation error that local evaluation would
    /// reproduce.
    pub fn degradable(&self) -> bool {
        self.retryable()
            || matches!(self, XrpcError::Cancelled { .. } | XrpcError::BreakerOpen { .. })
    }

    /// True if the failover ladder may try *another replica* after this
    /// failure. Wider than [`XrpcError::retryable`]: a tripped breaker or
    /// an exhausted budget forbids hammering the same peer but says nothing
    /// about its replicas, and a captured worker panic (`xrpc:panic`) is an
    /// infrastructure failure another copy of the data can route around.
    /// Genuine evaluation faults stay ineligible — every replica holds a
    /// bit-identical copy and would reproduce them.
    pub fn failover_eligible(&self) -> bool {
        match self {
            XrpcError::RemoteFault { code, .. } => code == "xrpc:panic",
            XrpcError::UnknownPeer { .. } => false,
            // the shed happened before a peer was picked; there is no
            // replica to route around an overloaded coordinator
            XrpcError::Overloaded { .. } => false,
            _ => true,
        }
    }

    /// Reconstructs the typed error from a wire code plus human-readable
    /// message (the inverse of encoding a fault response). Unknown codes
    /// become [`XrpcError::RemoteFault`] carrying the code verbatim.
    pub fn from_code(code: &str, peer: &str, message: &str) -> XrpcError {
        let peer = peer.to_string();
        match code {
            "xrpc:unknown-peer" => XrpcError::UnknownPeer { peer },
            "xrpc:peer-busy" => XrpcError::PeerBusy {
                peer,
                detail: message.to_string(),
                retry_after: Duration::ZERO,
            },
            "xrpc:timeout" => XrpcError::Timeout { peer, deadline: Duration::ZERO },
            "xrpc:transport-corrupt" => {
                XrpcError::TransportCorrupt { peer, detail: message.to_string() }
            }
            "xrpc:cancelled" => XrpcError::Cancelled { peer, reason: message.to_string() },
            "xrpc:breaker-open" => {
                XrpcError::BreakerOpen { peer, retry_after: Duration::ZERO }
            }
            "xrpc:overloaded" => XrpcError::Overloaded { retry_after_ms: 0 },
            other => XrpcError::RemoteFault {
                peer,
                code: other.to_string(),
                message: message.to_string(),
            },
        }
    }

    /// Lifts a caller-side [`EvalError`] back into the taxonomy using its
    /// code tag; untagged errors are remote evaluation faults.
    pub fn from_eval(peer: &str, e: &EvalError) -> XrpcError {
        match &e.code {
            Some(code) => XrpcError::from_code(code, peer, &e.message),
            None => XrpcError::RemoteFault {
                peer: peer.to_string(),
                code: "err:dynamic".to_string(),
                message: e.message.clone(),
            },
        }
    }
}

impl fmt::Display for XrpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XrpcError::UnknownPeer { peer } => write!(f, "unknown peer {peer}"),
            XrpcError::PeerBusy { peer, detail, retry_after } => {
                write!(f, "peer {peer} unavailable: {detail} (retry after {retry_after:?})")
            }
            XrpcError::Timeout { peer, deadline } => {
                write!(f, "call to peer {peer} timed out after {deadline:?}")
            }
            XrpcError::TransportCorrupt { peer, detail } => {
                write!(f, "corrupt transport to/from peer {peer}: {detail}")
            }
            XrpcError::RemoteFault { peer, code, message } => {
                write!(f, "remote fault on peer {peer} ({code}): {message}")
            }
            XrpcError::Cancelled { peer, reason } => {
                write!(f, "call to peer {peer} cancelled: {reason}")
            }
            XrpcError::BreakerOpen { peer, retry_after } => {
                write!(f, "circuit breaker open for peer {peer} (retry after {retry_after:?})")
            }
            XrpcError::Overloaded { retry_after_ms } => {
                write!(f, "coordinator overloaded: run queue full, retry after {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for XrpcError {}

impl From<XrpcError> for EvalError {
    fn from(e: XrpcError) -> EvalError {
        EvalError::with_code(e.code(), e.to_string())
    }
}

// ---------------------------------------------------------------------------
// deterministic fault injection
// ---------------------------------------------------------------------------

/// One injected per-call fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The peer does not react at all; the request is lost.
    PeerDown,
    /// The request arrives truncated at a random point.
    TruncateRequest,
    /// One request byte is overwritten with an invalid UTF-8 byte.
    CorruptRequest,
    /// The response arrives truncated at a random point.
    TruncateResponse,
    /// One response byte is overwritten with an invalid UTF-8 byte.
    CorruptResponse,
    /// The link stalls for [`FaultPlan::extra_latency`] on top of the
    /// modeled transfer time.
    Latency,
    /// The call hangs past its deadline; the caller gives up at the
    /// deadline (simulated — no real wait).
    Hang,
    /// The remote worker panics mid-call (captured and converted into
    /// [`XrpcError::RemoteFault`] with code `xrpc:panic`).
    RemotePanic,
}

impl Fault {
    /// Stable kebab-case name, used as a trace-span annotation.
    pub fn name(self) -> &'static str {
        match self {
            Fault::PeerDown => "peer-down",
            Fault::TruncateRequest => "truncate-request",
            Fault::CorruptRequest => "corrupt-request",
            Fault::TruncateResponse => "truncate-response",
            Fault::CorruptResponse => "corrupt-response",
            Fault::Latency => "latency",
            Fault::Hang => "hang",
            Fault::RemotePanic => "remote-panic",
        }
    }

    const ALL: [Fault; 8] = [
        Fault::PeerDown,
        Fault::TruncateRequest,
        Fault::CorruptRequest,
        Fault::TruncateResponse,
        Fault::CorruptResponse,
        Fault::Latency,
        Fault::Hang,
        Fault::RemotePanic,
    ];
}

/// Seeded, fully deterministic fault schedule.
///
/// Each per-peer call attempt consumes one ordinal from that peer's
/// counter; the fault decision (and any jitter / mangling positions) for
/// ordinal `n` is drawn from a fresh `xqd-prng` stream seeded by
/// `mix(seed, hash(peer), n)`. Because per-peer attempt order is
/// deterministic in both the sequential and scatter executors, the same
/// `(seed, plan)` replays the same schedule — including under thread
/// interleaving — which is what makes the chaos suite's metrics
/// reproducible bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    pub seed: u64,
    /// Per-attempt probability of each fault kind, in [`Fault::ALL`] order
    /// implied by the individual fields below.
    pub p_peer_down: f64,
    pub p_truncate_request: f64,
    pub p_corrupt_request: f64,
    pub p_truncate_response: f64,
    pub p_corrupt_response: f64,
    pub p_latency: f64,
    pub p_hang: f64,
    pub p_panic: f64,
    /// Stall added by [`Fault::Latency`].
    pub extra_latency: Duration,
    /// When set, the plan only injects faults into the peer whose name
    /// hashes to this value (see [`FaultPlan::with_target`]); every other
    /// peer sees a fault-free schedule. Lets the chaos suite kill or flap a
    /// *specific* primary while its replicas stay healthy.
    pub target: Option<u64>,
}

impl FaultPlan {
    /// A plan injecting no faults (useful as a base for struct update).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            p_peer_down: 0.0,
            p_truncate_request: 0.0,
            p_corrupt_request: 0.0,
            p_truncate_response: 0.0,
            p_corrupt_response: 0.0,
            p_latency: 0.0,
            p_hang: 0.0,
            p_panic: 0.0,
            extra_latency: Duration::from_millis(50),
            target: None,
        }
    }

    /// A plan where every fault kind is equally likely and `total_rate` is
    /// the per-attempt probability that *some* fault fires.
    pub fn uniform(seed: u64, total_rate: f64) -> Self {
        let p = (total_rate / Fault::ALL.len() as f64).clamp(0.0, 1.0);
        FaultPlan {
            p_peer_down: p,
            p_truncate_request: p,
            p_corrupt_request: p,
            p_truncate_response: p,
            p_corrupt_response: p,
            p_latency: p,
            p_hang: p,
            p_panic: p,
            ..FaultPlan::none(seed)
        }
    }

    fn probs(&self) -> [f64; 8] {
        [
            self.p_peer_down,
            self.p_truncate_request,
            self.p_corrupt_request,
            self.p_truncate_response,
            self.p_corrupt_response,
            self.p_latency,
            self.p_hang,
            self.p_panic,
        ]
    }

    /// FNV-1a hash of a peer name — the key used by [`FaultPlan::target`].
    pub fn peer_hash(peer: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in peer.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Restricts this plan to a single peer: faults are injected only into
    /// calls against `peer`; everything else runs fault-free.
    pub fn with_target(self, peer: &str) -> Self {
        FaultPlan { target: Some(FaultPlan::peer_hash(peer)), ..self }
    }

    /// Does this plan inject into `peer` at all?
    pub fn targeting(&self, peer: &str) -> bool {
        match self.target {
            None => true,
            Some(h) => h == FaultPlan::peer_hash(peer),
        }
    }

    /// The per-attempt PRNG stream for `(peer, seq)`.
    fn stream(&self, peer: &str, seq: u64) -> Rng {
        // FNV-1a over the peer name, then SplitMix-style mixing with the
        // seed and ordinal so nearby (seed, seq) pairs decorrelate.
        let h = FaultPlan::peer_hash(peer);
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h)
            .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        Rng::seed_from_u64(mixed)
    }

    /// The fault (if any) injected into attempt `seq` against `peer`.
    pub fn decide(&self, peer: &str, seq: u64) -> Option<Fault> {
        if !self.targeting(peer) {
            return None;
        }
        let mut rng = self.stream(peer, seq);
        let draw = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut acc = 0.0;
        for (fault, p) in Fault::ALL.iter().zip(self.probs()) {
            acc += p;
            if draw < acc {
                return Some(*fault);
            }
        }
        None
    }

    /// Deterministic jitter fraction in `[0, 1)` for the backoff following
    /// attempt `seq` against `peer`.
    pub fn jitter(&self, peer: &str, seq: u64) -> f64 {
        let mut rng = self.stream(peer, seq);
        rng.next_u64(); // skip the fault draw
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Deterministic mangling position in `[0, len)` for truncation or
    /// corruption of a `len`-byte message on attempt `seq`.
    pub fn mangle_position(&self, peer: &str, seq: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let mut rng = self.stream(peer, seq);
        rng.next_u64(); // skip the fault draw
        rng.next_u64(); // skip the jitter draw
        rng.gen_range_usize(0..len)
    }
}

/// Link cost model.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    pub bandwidth_bytes_per_sec: f64,
    pub latency: Duration,
}

impl NetworkModel {
    /// 1 Gb/s, 0.1 ms — the paper's LAN.
    pub fn lan() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 1e9 / 8.0,
            latency: Duration::from_micros(100),
        }
    }

    /// 10 Mb/s, 20 ms — the WAN environment the paper argues favours the
    /// enhanced semantics even more.
    pub fn wan() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 10e6 / 8.0,
            latency: Duration::from_millis(20),
        }
    }

    /// Simulated time for one transfer of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

/// Per-run accounting, matching the Figure 8 breakdown categories.
#[derive(Debug, Clone, Copy, Default)]
pub struct Metrics {
    /// Bytes of XRPC request/response messages.
    pub message_bytes: u64,
    /// Bytes of whole documents fetched (data shipping).
    pub document_bytes: u64,
    /// Network round trips (messages + document fetches).
    pub transfers: u64,
    /// Remote function invocations carried (Bulk RPC counts every call).
    pub remote_calls: u64,
    /// Scatter-gather rounds executed (calls to distinct peers fanned out
    /// concurrently count as one round).
    pub scatter_rounds: u64,
    /// Time parsing/shredding received XML (messages and fetched docs).
    pub shred: Duration,
    /// Time serializing messages and documents.
    pub serialize: Duration,
    /// Time evaluating shipped bodies on remote peers.
    pub remote_exec: Duration,
    /// Simulated wire time, **serialized**: the sum over every transfer, as
    /// if messages crossed the wire one at a time. Exact regardless of
    /// execution mode — byte counts and per-transfer costs are identical
    /// between sequential and scatter-gather execution.
    pub network: Duration,
    /// Simulated wire time under **overlapping transfers**: within one
    /// scatter round the wall clock advances by the *slowest* peer's
    /// request→execute→response chain, not the sum over peers. Outside
    /// scatter rounds this accrues identically to `network`, so for a fully
    /// sequential run `network_overlapped == network`.
    pub network_overlapped: Duration,
    /// Call attempts replayed after a retryable transport failure.
    pub retries: u64,
    /// Faults the [`FaultPlan`] injected into this run.
    pub faults_injected: u64,
    /// Calls answered by graceful degradation (document fetched, body
    /// evaluated locally) after retries were exhausted.
    pub fallbacks: u64,
    /// Hedged secondary attempts dispatched to an alternate replica.
    pub hedges: u64,
    /// Hedged attempts whose response arrived before the primary's.
    pub hedge_wins: u64,
    /// Circuit-breaker transitions into `Open` (threshold reached, or a
    /// half-open probe failed).
    pub breaker_trips: u64,
    /// Half-open probe calls admitted through a cooled-down breaker.
    pub breaker_probes: u64,
    /// Ladder rungs dispatched to a replica after the preferred peer
    /// failed or was rejected by its breaker.
    pub replica_failovers: u64,
    /// Queries lowered to a fresh plan IR this run (coordinator-side
    /// cache misses and compile-on-the-fly runs; peer-side compiles are
    /// excluded to keep the counter deterministic under concurrency).
    pub plans_compiled: u64,
    /// Coordinator plan-cache hits.
    pub plan_cache_hits: u64,
    /// Coordinator plan-cache misses.
    pub plan_cache_misses: u64,
    /// Semi-join edges the decomposer routed this run: producer calls whose
    /// results were reduced to deduplicated, sorted join keys before
    /// crossing the wire.
    pub semijoins: u64,
    /// Join-key atoms shipped inside compact `<keyset>` payloads (wire
    /// level: retried attempts recount, like `message_bytes`).
    pub join_keys_shipped: u64,
    /// Bytes the compact keyset encoding saved versus spelling the same
    /// atoms out as individual `<atom>` items.
    pub join_bytes_saved: u64,
    /// Queries that had to wait in the scheduler's bounded run queue
    /// before a worker slot freed (admitted-then-queued; queries dispatched
    /// on arrival do not count).
    pub queued: u64,
    /// Queries rejected by admission control with a typed
    /// [`XrpcError::Overloaded`] because the bounded run queue was full.
    pub shed: u64,
    /// Queued queries cancelled with a typed timeout because their
    /// deadline could no longer be met, *before* they consumed a worker
    /// slot.
    pub deadline_cancelled: u64,
    /// High-water mark of the scheduler's run-queue depth (all tenants
    /// combined). Accumulates by `max`, not by sum.
    pub peak_queue_depth: u64,
    /// End-to-end wall-clock time of the run.
    pub total: Duration,
}

impl Metrics {
    /// Total bytes moved over the simulated wire.
    pub fn transferred_bytes(&self) -> u64 {
        self.message_bytes + self.document_bytes
    }

    /// The Figure 8 "local exec" residual: everything not attributed to a
    /// specific category.
    pub fn local_exec(&self) -> Duration {
        self.total
            .saturating_sub(self.shred)
            .saturating_sub(self.serialize)
            .saturating_sub(self.remote_exec)
            .saturating_sub(self.network)
    }

    /// Simulated end-to-end time with transfers paid one after another:
    /// measured CPU plus the serialized network bill.
    pub fn wall_clock_serialized(&self) -> Duration {
        self.total + self.network
    }

    /// Simulated end-to-end time when concurrent peers overlap their
    /// transfers and remote work: measured CPU plus the overlapped bill.
    pub fn wall_clock_overlapped(&self) -> Duration {
        self.total + self.network_overlapped
    }

    pub fn add(&mut self, other: &Metrics) {
        self.message_bytes += other.message_bytes;
        self.document_bytes += other.document_bytes;
        self.transfers += other.transfers;
        self.remote_calls += other.remote_calls;
        self.scatter_rounds += other.scatter_rounds;
        self.shred += other.shred;
        self.serialize += other.serialize;
        self.remote_exec += other.remote_exec;
        self.network += other.network;
        self.network_overlapped += other.network_overlapped;
        self.retries += other.retries;
        self.faults_injected += other.faults_injected;
        self.fallbacks += other.fallbacks;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
        self.breaker_trips += other.breaker_trips;
        self.breaker_probes += other.breaker_probes;
        self.replica_failovers += other.replica_failovers;
        self.plans_compiled += other.plans_compiled;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.semijoins += other.semijoins;
        self.join_keys_shipped += other.join_keys_shipped;
        self.join_bytes_saved += other.join_bytes_saved;
        self.queued += other.queued;
        self.shed += other.shed;
        self.deadline_cancelled += other.deadline_cancelled;
        // a high-water mark accumulates by max, not by sum
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.total += other.total;
    }

    /// The counter-valued fields (everything deterministic under a fixed
    /// seed and fault plan — measured durations are excluded). The retry
    /// determinism suite compares these across repeated runs.
    pub fn counters(&self) -> [u64; 23] {
        [
            self.message_bytes,
            self.document_bytes,
            self.transfers,
            self.remote_calls,
            self.scatter_rounds,
            self.retries,
            self.faults_injected,
            self.fallbacks,
            self.hedges,
            self.hedge_wins,
            self.breaker_trips,
            self.breaker_probes,
            self.replica_failovers,
            self.plans_compiled,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.semijoins,
            self.join_keys_shipped,
            self.join_bytes_saved,
            self.queued,
            self.shed,
            self.deadline_cancelled,
            self.peak_queue_depth,
        ]
    }

    /// The same counters as a named snapshot — the readable view over the
    /// replay-contract array.
    pub fn named(&self) -> MetricsSnapshot {
        MetricsSnapshot::from_counters(self.counters())
    }
}

/// Stable names of the [`Metrics::counters`] array, index-aligned: the
/// name at position `i` describes `counters()[i]`. Appending is fine;
/// reordering or renaming breaks the replay contract and is pinned by
/// `metric_names_pin_the_replay_contract` below.
pub const METRIC_NAMES: [&str; 23] = [
    "message_bytes",
    "document_bytes",
    "transfers",
    "remote_calls",
    "scatter_rounds",
    "retries",
    "faults_injected",
    "fallbacks",
    "hedges",
    "hedge_wins",
    "breaker_trips",
    "breaker_probes",
    "replica_failovers",
    "plans_compiled",
    "plan_cache_hits",
    "plan_cache_misses",
    "semijoins",
    "join_keys_shipped",
    "join_bytes_saved",
    "queued",
    "shed",
    "deadline_cancelled",
    "peak_queue_depth",
];

/// A named view over the deterministic counter array: every counter is
/// reachable by a stable string name (`get`, `iter`) or a typed accessor,
/// so call sites never index `counters()[N]` by magic number. The raw
/// array stays the replay-contract wire format — this type is a reading
/// aid, not a new format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; 23],
}

macro_rules! snapshot_accessors {
    ($($idx:expr => $name:ident),* $(,)?) => {
        $(
            #[doc = concat!("`counters()[", stringify!($idx), "]`.")]
            pub fn $name(&self) -> u64 {
                self.counters[$idx]
            }
        )*
    };
}

impl MetricsSnapshot {
    pub fn from_counters(counters: [u64; 23]) -> MetricsSnapshot {
        MetricsSnapshot { counters }
    }

    /// The underlying replay-contract array, unchanged.
    pub fn counters(&self) -> [u64; 23] {
        self.counters
    }

    /// Looks a counter up by its [`METRIC_NAMES`] name.
    pub fn get(&self, name: &str) -> Option<u64> {
        METRIC_NAMES.iter().position(|&n| n == name).map(|i| self.counters[i])
    }

    /// `(name, value)` pairs in contract order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        METRIC_NAMES.iter().copied().zip(self.counters.iter().copied())
    }

    /// The transport and resilience counters — `message_bytes` through
    /// `replica_failovers` — the contract prefix that must stay
    /// byte-identical between the compiled engine and the interpreter
    /// oracle (the plan-compilation trio that follows legitimately
    /// differs between them).
    pub fn wire(&self) -> &[u64] {
        &self.counters[..13]
    }

    /// The plan-compilation trio `[plans_compiled, plan_cache_hits,
    /// plan_cache_misses]`.
    pub fn plan_cache(&self) -> [u64; 3] {
        [self.counters[13], self.counters[14], self.counters[15]]
    }

    /// Everything after the plan trio: the join-rewrite (`semijoins`,
    /// `join_keys_shipped`, `join_bytes_saved`) and scheduler
    /// (`queued` … `peak_queue_depth`) counter families.
    pub fn joins_and_scheduler(&self) -> &[u64] {
        &self.counters[16..]
    }

    snapshot_accessors! {
        0 => message_bytes,
        1 => document_bytes,
        2 => transfers,
        3 => remote_calls,
        4 => scatter_rounds,
        5 => retries,
        6 => faults_injected,
        7 => fallbacks,
        8 => hedges,
        9 => hedge_wins,
        10 => breaker_trips,
        11 => breaker_probes,
        12 => replica_failovers,
        13 => plans_compiled,
        14 => plan_cache_hits,
        15 => plan_cache_misses,
        16 => semijoins,
        17 => join_keys_shipped,
        18 => join_bytes_saved,
        19 => queued,
        20 => shed,
        21 => deadline_cancelled,
        22 => peak_queue_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = NetworkModel::lan();
        let t1 = m.transfer_time(1_000_000);
        let t2 = m.transfer_time(2_000_000);
        assert!(t2 > t1);
        // 1 MB at 125 MB/s = 8 ms + latency
        assert!((t1.as_secs_f64() - 0.0081).abs() < 0.0005, "{t1:?}");
    }

    #[test]
    fn wan_is_slower_than_lan() {
        let bytes = 100_000;
        assert!(NetworkModel::wan().transfer_time(bytes) > NetworkModel::lan().transfer_time(bytes));
    }

    #[test]
    fn local_exec_is_residual() {
        let m = Metrics {
            total: Duration::from_millis(100),
            shred: Duration::from_millis(10),
            serialize: Duration::from_millis(20),
            remote_exec: Duration::from_millis(30),
            network: Duration::from_millis(15),
            ..Default::default()
        };
        assert_eq!(m.local_exec(), Duration::from_millis(25));
        // never negative
        let m2 = Metrics { total: Duration::from_millis(1), shred: Duration::from_millis(10), ..Default::default() };
        assert_eq!(m2.local_exec(), Duration::ZERO);
    }

    #[test]
    fn metrics_accumulate() {
        let mut a = Metrics { message_bytes: 10, transfers: 1, ..Default::default() };
        let b = Metrics { message_bytes: 5, document_bytes: 7, transfers: 2, ..Default::default() };
        a.add(&b);
        assert_eq!(a.message_bytes, 15);
        assert_eq!(a.transferred_bytes(), 22);
        assert_eq!(a.transfers, 3);
    }

    #[test]
    fn overlapped_wall_clock_never_exceeds_serialized() {
        let m = Metrics {
            total: Duration::from_millis(10),
            network: Duration::from_millis(80),
            network_overlapped: Duration::from_millis(25),
            ..Default::default()
        };
        assert_eq!(m.wall_clock_serialized(), Duration::from_millis(90));
        assert_eq!(m.wall_clock_overlapped(), Duration::from_millis(35));
        assert!(m.wall_clock_overlapped() <= m.wall_clock_serialized());
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let plan = FaultPlan::uniform(42, 0.5);
        for seq in 0..200 {
            assert_eq!(plan.decide("p1", seq), plan.decide("p1", seq));
            assert_eq!(plan.jitter("p1", seq), plan.jitter("p1", seq));
            assert_eq!(
                plan.mangle_position("p1", seq, 1000),
                plan.mangle_position("p1", seq, 1000)
            );
        }
        // different peers and seeds see different schedules
        let other_seed = FaultPlan::uniform(43, 0.5);
        let diverges = (0..200).any(|seq| {
            plan.decide("p1", seq) != plan.decide("p2", seq)
                || plan.decide("p1", seq) != other_seed.decide("p1", seq)
        });
        assert!(diverges, "schedules must depend on peer and seed");
    }

    #[test]
    fn fault_rate_is_roughly_honored() {
        let plan = FaultPlan::uniform(7, 0.25);
        let fired = (0..10_000).filter(|&s| plan.decide("p", s).is_some()).count();
        assert!((1_800..3_200).contains(&fired), "fired={fired}");
        let none = FaultPlan::none(7);
        assert!((0..10_000).all(|s| none.decide("p", s).is_none()));
    }

    #[test]
    fn xrpc_error_code_roundtrip() {
        let cases = [
            XrpcError::UnknownPeer { peer: "a".into() },
            XrpcError::PeerBusy {
                peer: "a".into(),
                detail: "slot held".into(),
                retry_after: Duration::ZERO,
            },
            XrpcError::TransportCorrupt { peer: "a".into(), detail: "bad utf-8".into() },
            XrpcError::RemoteFault {
                peer: "a".into(),
                code: "err:FOAR0001".into(),
                message: "division by zero".into(),
            },
            XrpcError::Cancelled { peer: "a".into(), reason: "budget spent".into() },
        ];
        for e in cases {
            let back = XrpcError::from_code(&e.code(), e.peer(), match &e {
                XrpcError::PeerBusy { detail, .. }
                | XrpcError::TransportCorrupt { detail, .. } => detail,
                XrpcError::RemoteFault { message, .. } => message,
                XrpcError::Cancelled { reason, .. } => reason,
                _ => "",
            });
            assert_eq!(back, e);
        }
        // Timeout round-trips its variant (the deadline value is not wired)
        let t = XrpcError::Timeout { peer: "a".into(), deadline: Duration::from_secs(1) };
        assert!(matches!(
            XrpcError::from_code(&t.code(), "a", ""),
            XrpcError::Timeout { .. }
        ));
    }

    #[test]
    fn retryability_classes() {
        let busy = XrpcError::PeerBusy {
            peer: "a".into(),
            detail: String::new(),
            retry_after: Duration::ZERO,
        };
        let timeout = XrpcError::Timeout { peer: "a".into(), deadline: Duration::ZERO };
        let corrupt = XrpcError::TransportCorrupt { peer: "a".into(), detail: String::new() };
        let unknown = XrpcError::UnknownPeer { peer: "a".into() };
        let remote = XrpcError::RemoteFault {
            peer: "a".into(),
            code: "err:x".into(),
            message: String::new(),
        };
        let cancelled = XrpcError::Cancelled { peer: "a".into(), reason: String::new() };
        let breaker =
            XrpcError::BreakerOpen { peer: "a".into(), retry_after: Duration::from_millis(250) };
        let panic = XrpcError::RemoteFault {
            peer: "a".into(),
            code: "xrpc:panic".into(),
            message: String::new(),
        };
        for e in [&busy, &timeout, &corrupt] {
            assert!(e.retryable() && e.degradable(), "{e}");
        }
        for e in [&unknown, &remote] {
            assert!(!e.retryable() && !e.degradable(), "{e}");
        }
        assert!(!cancelled.retryable() && cancelled.degradable());
        // a tripped breaker must never re-admit the same peer, but may
        // route to a replica or degrade
        assert!(!breaker.retryable() && breaker.degradable() && breaker.failover_eligible());
        // failover eligibility: transport-class failures and infrastructure
        // panics can be served by another replica; evaluation faults and
        // unknown peers cannot
        for e in [&busy, &timeout, &corrupt, &cancelled] {
            assert!(e.failover_eligible(), "{e}");
        }
        assert!(panic.failover_eligible() && !panic.degradable());
        assert!(!remote.failover_eligible());
        assert!(!unknown.failover_eligible());
    }

    #[test]
    fn breaker_open_code_roundtrip() {
        let e = XrpcError::BreakerOpen { peer: "a".into(), retry_after: Duration::ZERO };
        assert_eq!(e.code(), "xrpc:breaker-open");
        assert!(matches!(
            XrpcError::from_code(&e.code(), "a", ""),
            XrpcError::BreakerOpen { .. }
        ));
    }

    #[test]
    fn targeted_plans_only_fault_their_peer() {
        let plan = FaultPlan::uniform(11, 0.9).with_target("primary");
        assert!(plan.targeting("primary"));
        assert!(!plan.targeting("replica"));
        assert!((0..500).all(|s| plan.decide("replica", s).is_none()));
        assert!((0..500).any(|s| plan.decide("primary", s).is_some()));
        // targeted decisions match the untargeted plan's for the same peer
        let untargeted = FaultPlan::uniform(11, 0.9);
        assert!((0..500).all(|s| plan.decide("primary", s) == untargeted.decide("primary", s)));
    }

    #[test]
    fn eval_error_conversion_carries_code() {
        let e: EvalError =
            XrpcError::Timeout { peer: "p9".into(), deadline: Duration::from_millis(5) }.into();
        assert!(e.has_code("xrpc:timeout"));
        assert!(e.message.contains("p9"), "{e}");
        let back = XrpcError::from_eval("p9", &e);
        assert!(matches!(back, XrpcError::Timeout { .. }));
        // untagged errors become remote faults
        let plain = EvalError::new("division by zero");
        let rf = XrpcError::from_eval("p1", &plain);
        assert!(matches!(&rf, XrpcError::RemoteFault { message, .. } if message.contains("division")));
    }

    #[test]
    fn metrics_counters_include_robustness_fields() {
        let mut a = Metrics { retries: 1, faults_injected: 2, fallbacks: 3, ..Default::default() };
        let b = Metrics { retries: 10, faults_injected: 20, fallbacks: 30, ..Default::default() };
        a.add(&b);
        assert_eq!(a.retries, 11);
        assert_eq!(a.faults_injected, 22);
        assert_eq!(a.fallbacks, 33);
        let s = a.named();
        assert_eq!([s.retries(), s.faults_injected(), s.fallbacks()], [11, 22, 33]);
    }

    #[test]
    fn metrics_counters_include_availability_fields() {
        let mut a = Metrics {
            hedges: 1,
            hedge_wins: 2,
            breaker_trips: 3,
            breaker_probes: 4,
            replica_failovers: 5,
            ..Default::default()
        };
        let b = Metrics {
            hedges: 10,
            hedge_wins: 20,
            breaker_trips: 30,
            breaker_probes: 40,
            replica_failovers: 50,
            ..Default::default()
        };
        a.add(&b);
        let s = a.named();
        assert_eq!(
            [s.hedges(), s.hedge_wins(), s.breaker_trips(), s.breaker_probes(), s.replica_failovers()],
            [11, 22, 33, 44, 55]
        );
    }

    #[test]
    fn metrics_counters_include_plan_fields() {
        let mut a = Metrics {
            plans_compiled: 1,
            plan_cache_hits: 2,
            plan_cache_misses: 3,
            ..Default::default()
        };
        let b = Metrics {
            plans_compiled: 10,
            plan_cache_hits: 20,
            plan_cache_misses: 30,
            ..Default::default()
        };
        a.add(&b);
        let s = a.named();
        assert_eq!([s.plans_compiled(), s.plan_cache_hits(), s.plan_cache_misses()], [11, 22, 33]);
    }

    #[test]
    fn metrics_counters_include_join_fields() {
        let mut a = Metrics {
            semijoins: 1,
            join_keys_shipped: 2,
            join_bytes_saved: 3,
            ..Default::default()
        };
        let b = Metrics {
            semijoins: 10,
            join_keys_shipped: 20,
            join_bytes_saved: 30,
            ..Default::default()
        };
        a.add(&b);
        let s = a.named();
        assert_eq!([s.semijoins(), s.join_keys_shipped(), s.join_bytes_saved()], [11, 22, 33]);
    }

    #[test]
    fn metrics_counters_include_scheduler_fields() {
        let mut a = Metrics {
            queued: 1,
            shed: 2,
            deadline_cancelled: 3,
            peak_queue_depth: 9,
            ..Default::default()
        };
        let b = Metrics {
            queued: 10,
            shed: 20,
            deadline_cancelled: 30,
            peak_queue_depth: 4,
            ..Default::default()
        };
        a.add(&b);
        // additive counters sum; the queue-depth high-water mark takes max
        let s = a.named();
        assert_eq!(
            [s.queued(), s.shed(), s.deadline_cancelled(), s.peak_queue_depth()],
            [11, 22, 33, 9]
        );
        let c = Metrics { peak_queue_depth: 40, ..Default::default() };
        a.add(&c);
        assert_eq!(a.peak_queue_depth, 40);
    }

    #[test]
    fn metric_names_pin_the_replay_contract() {
        // The name table is index-aligned with counters(): this test pins
        // both the order and the accessor wiring, so the replay contract
        // cannot silently shift when a counter is added or moved.
        assert_eq!(
            METRIC_NAMES,
            [
                "message_bytes",
                "document_bytes",
                "transfers",
                "remote_calls",
                "scatter_rounds",
                "retries",
                "faults_injected",
                "fallbacks",
                "hedges",
                "hedge_wins",
                "breaker_trips",
                "breaker_probes",
                "replica_failovers",
                "plans_compiled",
                "plan_cache_hits",
                "plan_cache_misses",
                "semijoins",
                "join_keys_shipped",
                "join_bytes_saved",
                "queued",
                "shed",
                "deadline_cancelled",
                "peak_queue_depth",
            ]
        );
        // distinct sentinel per slot: get(name) must hit exactly its index
        let mut counters = [0u64; 23];
        for (i, c) in counters.iter_mut().enumerate() {
            *c = 1000 + i as u64;
        }
        let s = MetricsSnapshot::from_counters(counters);
        assert_eq!(s.counters(), counters);
        for (i, name) in METRIC_NAMES.iter().enumerate() {
            assert_eq!(s.get(name), Some(counters[i]), "{name} drifted from index {i}");
        }
        assert_eq!(s.get("no_such_metric"), None);
        // typed accessors agree with the name table
        assert_eq!(s.message_bytes(), s.get("message_bytes").unwrap());
        assert_eq!(s.scatter_rounds(), s.get("scatter_rounds").unwrap());
        assert_eq!(s.peak_queue_depth(), s.get("peak_queue_depth").unwrap());
        let collected: Vec<(&str, u64)> = s.iter().collect();
        assert_eq!(collected.len(), 23);
        assert_eq!(collected[0], ("message_bytes", 1000));
        assert_eq!(collected[22], ("peak_queue_depth", 1022));
    }

    #[test]
    fn overloaded_classification_and_roundtrip() {
        let e = XrpcError::Overloaded { retry_after_ms: 125 };
        assert_eq!(e.code(), "xrpc:overloaded");
        assert_eq!(e.peer(), "");
        assert_eq!(e.retry_after(), Some(Duration::from_millis(125)));
        // a shed must not trigger retries, failover, or degradation — the
        // whole point is that the caller backs off and resubmits later
        assert!(!e.retryable() && !e.degradable() && !e.failover_eligible());
        assert!(matches!(
            XrpcError::from_code(&e.code(), "", ""),
            XrpcError::Overloaded { .. }
        ));
        let ev: EvalError = e.into();
        assert!(ev.has_code("xrpc:overloaded"));
        assert!(ev.message.contains("retry after 125ms"), "{ev}");
    }

    #[test]
    fn retry_after_hints_are_exposed() {
        let busy = XrpcError::PeerBusy {
            peer: "a".into(),
            detail: "queue full".into(),
            retry_after: Duration::from_millis(40),
        };
        assert_eq!(busy.retry_after(), Some(Duration::from_millis(40)));
        let timeout = XrpcError::Timeout { peer: "a".into(), deadline: Duration::ZERO };
        assert_eq!(timeout.retry_after(), None);
    }
}
