//! Simulated network and execution metrics.
//!
//! The paper's testbed was three machines on 1 Gb/s Ethernet. We replace
//! the wire with a cost model — `latency + bytes / bandwidth` per message —
//! while keeping everything else real: messages are actually serialized to
//! XML bytes and re-parsed on the other side, so the byte counts driving
//! Figures 7 and 10 are exact, and the CPU portions of the Figure 8
//! breakdown (shred / exec / (de)serialize) are measured wall-clock times.

use std::time::Duration;

/// Link cost model.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    pub bandwidth_bytes_per_sec: f64,
    pub latency: Duration,
}

impl NetworkModel {
    /// 1 Gb/s, 0.1 ms — the paper's LAN.
    pub fn lan() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 1e9 / 8.0,
            latency: Duration::from_micros(100),
        }
    }

    /// 10 Mb/s, 20 ms — the WAN environment the paper argues favours the
    /// enhanced semantics even more.
    pub fn wan() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 10e6 / 8.0,
            latency: Duration::from_millis(20),
        }
    }

    /// Simulated time for one transfer of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

/// Per-run accounting, matching the Figure 8 breakdown categories.
#[derive(Debug, Clone, Copy, Default)]
pub struct Metrics {
    /// Bytes of XRPC request/response messages.
    pub message_bytes: u64,
    /// Bytes of whole documents fetched (data shipping).
    pub document_bytes: u64,
    /// Network round trips (messages + document fetches).
    pub transfers: u64,
    /// Remote function invocations carried (Bulk RPC counts every call).
    pub remote_calls: u64,
    /// Scatter-gather rounds executed (calls to distinct peers fanned out
    /// concurrently count as one round).
    pub scatter_rounds: u64,
    /// Time parsing/shredding received XML (messages and fetched docs).
    pub shred: Duration,
    /// Time serializing messages and documents.
    pub serialize: Duration,
    /// Time evaluating shipped bodies on remote peers.
    pub remote_exec: Duration,
    /// Simulated wire time, **serialized**: the sum over every transfer, as
    /// if messages crossed the wire one at a time. Exact regardless of
    /// execution mode — byte counts and per-transfer costs are identical
    /// between sequential and scatter-gather execution.
    pub network: Duration,
    /// Simulated wire time under **overlapping transfers**: within one
    /// scatter round the wall clock advances by the *slowest* peer's
    /// request→execute→response chain, not the sum over peers. Outside
    /// scatter rounds this accrues identically to `network`, so for a fully
    /// sequential run `network_overlapped == network`.
    pub network_overlapped: Duration,
    /// End-to-end wall-clock time of the run.
    pub total: Duration,
}

impl Metrics {
    /// Total bytes moved over the simulated wire.
    pub fn transferred_bytes(&self) -> u64 {
        self.message_bytes + self.document_bytes
    }

    /// The Figure 8 "local exec" residual: everything not attributed to a
    /// specific category.
    pub fn local_exec(&self) -> Duration {
        self.total
            .saturating_sub(self.shred)
            .saturating_sub(self.serialize)
            .saturating_sub(self.remote_exec)
            .saturating_sub(self.network)
    }

    /// Simulated end-to-end time with transfers paid one after another:
    /// measured CPU plus the serialized network bill.
    pub fn wall_clock_serialized(&self) -> Duration {
        self.total + self.network
    }

    /// Simulated end-to-end time when concurrent peers overlap their
    /// transfers and remote work: measured CPU plus the overlapped bill.
    pub fn wall_clock_overlapped(&self) -> Duration {
        self.total + self.network_overlapped
    }

    pub fn add(&mut self, other: &Metrics) {
        self.message_bytes += other.message_bytes;
        self.document_bytes += other.document_bytes;
        self.transfers += other.transfers;
        self.remote_calls += other.remote_calls;
        self.scatter_rounds += other.scatter_rounds;
        self.shred += other.shred;
        self.serialize += other.serialize;
        self.remote_exec += other.remote_exec;
        self.network += other.network;
        self.network_overlapped += other.network_overlapped;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = NetworkModel::lan();
        let t1 = m.transfer_time(1_000_000);
        let t2 = m.transfer_time(2_000_000);
        assert!(t2 > t1);
        // 1 MB at 125 MB/s = 8 ms + latency
        assert!((t1.as_secs_f64() - 0.0081).abs() < 0.0005, "{t1:?}");
    }

    #[test]
    fn wan_is_slower_than_lan() {
        let bytes = 100_000;
        assert!(NetworkModel::wan().transfer_time(bytes) > NetworkModel::lan().transfer_time(bytes));
    }

    #[test]
    fn local_exec_is_residual() {
        let m = Metrics {
            total: Duration::from_millis(100),
            shred: Duration::from_millis(10),
            serialize: Duration::from_millis(20),
            remote_exec: Duration::from_millis(30),
            network: Duration::from_millis(15),
            ..Default::default()
        };
        assert_eq!(m.local_exec(), Duration::from_millis(25));
        // never negative
        let m2 = Metrics { total: Duration::from_millis(1), shred: Duration::from_millis(10), ..Default::default() };
        assert_eq!(m2.local_exec(), Duration::ZERO);
    }

    #[test]
    fn metrics_accumulate() {
        let mut a = Metrics { message_bytes: 10, transfers: 1, ..Default::default() };
        let b = Metrics { message_bytes: 5, document_bytes: 7, transfers: 2, ..Default::default() };
        a.add(&b);
        assert_eq!(a.message_bytes, 15);
        assert_eq!(a.transferred_bytes(), 22);
        assert_eq!(a.transfers, 3);
    }

    #[test]
    fn overlapped_wall_clock_never_exceeds_serialized() {
        let m = Metrics {
            total: Duration::from_millis(10),
            network: Duration::from_millis(80),
            network_overlapped: Duration::from_millis(25),
            ..Default::default()
        };
        assert_eq!(m.wall_clock_serialized(), Duration::from_millis(90));
        assert_eq!(m.wall_clock_overlapped(), Duration::from_millis(35));
        assert!(m.wall_clock_overlapped() <= m.wall_clock_serialized());
    }
}
