//! The `xqd serve` peer daemon: a thread-per-connection TCP server
//! speaking length-prefixed XRPC envelopes.
//!
//! One daemon hosts one peer's document store (plus any replica copies it
//! serves) behind the same decode → evaluate → encode path the simulated
//! federation runs — the server's execution engine *is* a single-peer
//! [`Federation`] seen through its [`Transport`] view, so wire semantics
//! cannot drift between the two worlds.
//!
//! Robustness discipline, per connection and per request:
//!
//! * **deadlines everywhere** — an idle timeout between frames (quiet
//!   close), a read deadline mid-frame and a write deadline on replies
//!   (typed fault, then close: the stream is desynced), and a per-request
//!   evaluation deadline (typed `xrpc:timeout` fault);
//! * **bounded in-flight work** — requests beyond
//!   [`ServerConfig::max_inflight`] are shed immediately with a typed
//!   `xrpc:overloaded` fault carrying an honest `retry-after-ms` derived
//!   from the observed service-time EWMA (the admission-control discipline,
//!   now over a real wire), and connections beyond
//!   [`ServerConfig::max_connections`] are refused the same way;
//! * **malformed input never kills a connection it can still use** — a
//!   well-framed but undecodable payload is answered with a typed fault
//!   envelope and the connection stays open; only frame-level desync
//!   (truncated prefix, oversized length, mid-frame EOF) closes it, and
//!   even then a typed fault is written first when the stream allows;
//! * **graceful drain** — [`PeerServer::drain`] stops accepting (new
//!   connections get a typed fault), lets in-flight requests finish or
//!   cancels them with `xrpc:timeout` within the drain deadline, then
//!   force-closes every connection and joins its threads, bounded — the
//!   daemon can always exit.

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xqd_xquery::value::EvalError;

use crate::exec::{ExecOptions, Federation, Peer, SimTransport};
use crate::message::encode_fault;
use crate::net::{NetworkModel, XrpcError};
use crate::transport::{read_payload, read_prefix, write_frame, FrameError, Transport, MAX_FRAME_LEN};

/// Deadlines and bounds of one peer daemon.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections accepted; arrivals beyond it are refused
    /// with a typed `xrpc:overloaded` fault.
    pub max_connections: usize,
    /// Concurrent requests evaluated across all connections; arrivals
    /// beyond it are shed immediately with `xrpc:overloaded` plus an
    /// honest `retry-after-ms` (no queueing — the bounded wait happens in
    /// the peer-slot queue underneath, not at admission).
    pub max_inflight: usize,
    /// Mid-frame read deadline: a peer that started a frame must finish
    /// sending it within this window.
    pub read_timeout: Duration,
    /// Reply write deadline.
    pub write_timeout: Duration,
    /// Between-frames deadline: a connection with no traffic for this long
    /// is quietly closed.
    pub idle_timeout: Duration,
    /// Per-request evaluation budget; on expiry the client gets a typed
    /// `xrpc:timeout` fault.
    pub request_deadline: Duration,
    /// How long [`PeerServer::drain`] waits for in-flight requests before
    /// cancelling them.
    pub drain_deadline: Duration,
    /// Largest accepted frame payload.
    pub max_frame_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_inflight: 32,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            request_deadline: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

/// What a drain accomplished.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Requests answered over the server's lifetime.
    pub served: u64,
    /// Requests shed at admission (overload faults).
    pub shed: u64,
    /// Requests still evaluating when the drain deadline expired (their
    /// connections were force-closed).
    pub cancelled_inflight: usize,
    /// Wall clock the drain took.
    pub elapsed: Duration,
    /// True when every request and connection wound down inside the
    /// deadline — the clean-exit criterion the crash harness asserts.
    pub clean: bool,
}

/// Granularity at which a slot-waiting request re-checks the drain flag
/// and its own deadline; bounds how stale a drain can find an in-flight
/// request's budget.
const SLOT_POLL: Duration = Duration::from_millis(25);

/// Accept-loop poll interval (the listener is non-blocking so the loop
/// can observe the drain flag).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Default `retry-after-ms` when no service time has been observed yet.
const COLD_RETRY_HINT_MS: u64 = 25;

struct Shared {
    name: String,
    transport: SimTransport,
    config: ServerConfig,
    draining: AtomicBool,
    stopped: AtomicBool,
    drain_until: Mutex<Option<Instant>>,
    inflight: Mutex<usize>,
    inflight_done: Condvar,
    conn_count: Mutex<usize>,
    conn_done: Condvar,
    /// Clones of every live connection keyed by a connection id, for
    /// force-shutdown at drain; a connection removes its clone on exit so
    /// descriptors do not accumulate.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    /// EWMA of observed request service time, nanoseconds — the honest
    /// basis for `retry-after-ms` hints.
    service_ewma_ns: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn drain_remaining(&self) -> Option<Duration> {
        self.drain_until
            .lock()
            .unwrap()
            .map(|until| until.saturating_duration_since(Instant::now()))
    }

    fn retry_hint_ms(&self) -> u64 {
        let ns = self.service_ewma_ns.load(Ordering::Relaxed);
        if ns == 0 {
            COLD_RETRY_HINT_MS
        } else {
            (ns / 1_000_000).max(1)
        }
    }

    fn note_service(&self, elapsed: Duration) {
        let sample = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let old = self.service_ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 { sample } else { old / 8 * 7 + sample / 8 };
        self.service_ewma_ns.store(new, Ordering::Relaxed);
    }

    /// Evaluates one admitted request with drain- and deadline-awareness:
    /// the exchange budget is chunked so a request stuck waiting for the
    /// peer slot notices a drain (or its own deadline) within
    /// [`SLOT_POLL`], and expiry produces a typed `xrpc:timeout` fault.
    fn execute(&self, request: &str) -> String {
        let started = Instant::now();
        let t0 = Instant::now();
        loop {
            let deadline_left = self.config.request_deadline.saturating_sub(started.elapsed());
            let (budget, deadline) = match self.drain_remaining() {
                Some(d) => (d.min(deadline_left), self.config.drain_deadline),
                None => (deadline_left, self.config.request_deadline),
            };
            if budget.is_zero() {
                return encode_fault(&XrpcError::Timeout { peer: self.name.clone(), deadline });
            }
            let chunk = budget.min(SLOT_POLL);
            let attempt = Instant::now();
            match self.transport.exchange(&self.name, request, chunk) {
                Ok(reply) => {
                    self.note_service(t0.elapsed());
                    return reply;
                }
                // the slot is held by another request: re-check drain and
                // deadline, then wait again. A rejection that came back
                // instantly (bounded wait queue full) must not spin — hold
                // the rest of the chunk before re-entering the queue.
                Err(XrpcError::PeerBusy { .. }) => {
                    let spent = attempt.elapsed();
                    if spent < chunk {
                        std::thread::sleep(chunk - spent);
                    }
                    continue;
                }
                Err(e) => return encode_fault(&e),
            }
        }
    }

    /// The bounded in-flight admission gate. `false` = shed (the caller
    /// answers with an overload fault and does not hold the gate).
    fn admit(&self) -> bool {
        let mut n = self.inflight.lock().unwrap();
        if *n >= self.config.max_inflight {
            return false;
        }
        *n += 1;
        true
    }

    /// Releases the gate taken by [`Shared::admit`], waking a drain
    /// waiting for idle.
    fn release_inflight(&self) {
        let mut n = self.inflight.lock().unwrap();
        *n -= 1;
        drop(n);
        self.inflight_done.notify_all();
    }
}

/// Writes a fault envelope and closes the stream — the refusal path for
/// drain and connection-overload. Best-effort: the peer may already be
/// gone.
fn refuse(mut stream: TcpStream, config: &ServerConfig, fault: &XrpcError) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = write_frame(&mut stream, &encode_fault(fault));
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection's frame loop. Returns when the connection ends, for any
/// reason; cleanup (counters, registry) happens in the caller wrapper.
fn serve_conn(shared: &Shared, stream: &mut TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    loop {
        // between frames: idle deadline
        let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
        let declared = match read_prefix(stream) {
            Ok(None) => return, // clean close by the client
            Ok(Some(d)) => d,
            Err(e) if e.timed_out() => return, // idle: quiet close
            Err(_) => return, // reset/desync with no frame started
        };
        // mid-frame: the sender must finish within the read deadline
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let payload = match read_payload(stream, declared, shared.config.max_frame_len) {
            Ok(p) => p,
            Err(e) => {
                // frame-level desync: answer with a typed fault (the write
                // side is still ordered), then close — resyncing a byte
                // stream after a half-frame is guesswork
                let fault = match e {
                    FrameError::Io { timed_out: true, .. } => XrpcError::Timeout {
                        peer: shared.name.clone(),
                        deadline: shared.config.read_timeout,
                    },
                    other => other.into_xrpc(&shared.name, shared.config.read_timeout),
                };
                let _ = write_frame(stream, &encode_fault(&fault));
                return;
            }
        };
        // well-framed payload: even a malformed envelope gets a typed
        // fault reply (from the evaluator) and the connection lives on.
        // The in-flight gate is held until the reply is *written*, so a
        // drain waiting for idle cannot force-close the socket between a
        // cancellation and its fault reply reaching the wire.
        let admitted = shared.admit();
        let reply = if admitted {
            shared.execute(&payload)
        } else {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            encode_fault(&XrpcError::Overloaded { retry_after_ms: shared.retry_hint_ms() })
        };
        let wrote = write_frame(stream, &reply).is_ok();
        if admitted {
            shared.served.fetch_add(1, Ordering::Relaxed);
            shared.release_inflight();
        }
        if !wrote {
            return; // client gone or write deadline hit
        }
        if shared.draining() {
            return; // finish the in-flight frame, then close
        }
    }
}

/// A live peer daemon: a single-peer [`Federation`] behind a TCP listener.
pub struct PeerServer {
    fed: Federation,
    name: String,
    addr: SocketAddr,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl PeerServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) for peer
    /// `name`. The daemon is not serving until [`PeerServer::start`].
    pub fn bind(name: &str, addr: &str, config: ServerConfig) -> std::io::Result<PeerServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mut fed = Federation::new(NetworkModel::lan());
        fed.add_peer(name);
        let transport = fed.transport();
        Ok(PeerServer {
            fed,
            name: name.to_string(),
            addr,
            listener: Some(listener),
            shared: Arc::new(Shared {
                name: name.to_string(),
                transport,
                config,
                draining: AtomicBool::new(false),
                stopped: AtomicBool::new(false),
                drain_until: Mutex::new(None),
                inflight: Mutex::new(0),
                inflight_done: Condvar::new(),
                conn_count: Mutex::new(0),
                conn_done: Condvar::new(),
                conns: Mutex::new(std::collections::HashMap::new()),
                next_conn_id: AtomicU64::new(0),
                served: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                service_ewma_ns: AtomicU64::new(0),
            }),
            accept: None,
        })
    }

    /// The bound address (with the real port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Loads `xml` as this peer's own document `doc_name` (registered
    /// under the canonical `xrpc://<name>/<doc_name>` URI, as everywhere).
    pub fn load_document(&mut self, doc_name: &str, xml: &str) -> Result<(), EvalError> {
        let name = self.name.clone();
        self.fed.load_document(&name, doc_name, xml)
    }

    /// Loads `xml` as a replica copy this daemon serves of another
    /// primary's document (`canonical_uri` = `xrpc://<primary>/<doc>`).
    pub fn load_replica(&mut self, canonical_uri: &str, xml: &str) -> Result<(), EvalError> {
        let name = self.name.clone();
        self.fed.load_replica_copy(&name, canonical_uri, xml)
    }

    /// Execution options for the peer's evaluator (indexes, compile mode,
    /// bulk workers, slot queue depth).
    pub fn set_exec_options(&mut self, options: ExecOptions) {
        self.fed.set_exec_options(options);
    }

    /// Starts the accept loop. Idempotent: a second call is a no-op.
    pub fn start(&mut self) {
        if self.accept.is_some() {
            return;
        }
        let Some(listener) = self.listener.take() else { return };
        let shared = Arc::clone(&self.shared);
        self.accept = Some(std::thread::spawn(move || accept_loop(&listener, &shared)));
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Requests shed at admission so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Requests currently evaluating. Tests use this to wait until staged
    /// work is genuinely in flight instead of sleeping.
    #[doc(hidden)]
    pub fn inflight(&self) -> usize {
        *self.shared.inflight.lock().unwrap()
    }

    /// Takes the peer's evaluation slot out of service (every request then
    /// waits as if a long evaluation held it). Drain/overload tests use
    /// this to stage in-flight work deterministically.
    #[doc(hidden)]
    pub fn pause_peer(&self) -> Option<Peer> {
        self.fed.checkout_peer(&self.name)
    }

    /// Returns the slot taken by [`PeerServer::pause_peer`].
    #[doc(hidden)]
    pub fn resume_peer(&self, peer: Peer) {
        self.fed.checkin_peer(peer);
    }

    /// Graceful shutdown: stop accepting (refusing new connections with a
    /// typed fault meanwhile), wait for in-flight requests to finish or
    /// cancel at the drain deadline (`xrpc:timeout` faults), force-close
    /// every connection, stop the accept loop and join it. Bounded: always
    /// returns, with [`DrainReport::clean`] telling whether the wind-down
    /// beat its deadlines.
    pub fn drain(&mut self) -> DrainReport {
        let t0 = Instant::now();
        self.shared.draining.store(true, Ordering::SeqCst);
        *self.shared.drain_until.lock().unwrap() =
            Some(Instant::now() + self.shared.config.drain_deadline);
        // in-flight requests self-cancel within SLOT_POLL of the drain
        // deadline; allow that plus slack before declaring them stuck
        let grace = self.shared.config.drain_deadline + SLOT_POLL * 4;
        let hard = Instant::now() + grace;
        let mut inflight = self.shared.inflight.lock().unwrap();
        while *inflight > 0 {
            let left = hard.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _) = self.shared.inflight_done.wait_timeout(inflight, left).unwrap();
            inflight = guard;
        }
        let cancelled_inflight = *inflight;
        drop(inflight);
        // force-close every connection: idle readers wake with an error,
        // stuck evaluations lose their reply path (client sees a typed
        // transport error)
        for (_, c) in self.shared.conns.lock().unwrap().drain() {
            let _ = c.shutdown(Shutdown::Both);
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // bounded wait for connection threads to observe the shutdown
        let conn_deadline = Instant::now() + Duration::from_secs(2);
        let mut conns = self.shared.conn_count.lock().unwrap();
        while *conns > 0 {
            let left = conn_deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _) = self.shared.conn_done.wait_timeout(conns, left).unwrap();
            conns = guard;
        }
        let lingering = *conns;
        drop(conns);
        DrainReport {
            served: self.served(),
            shed: self.shed(),
            cancelled_inflight,
            elapsed: t0.elapsed(),
            clean: cancelled_inflight == 0 && lingering == 0,
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.stopped.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if shared.draining() {
                    refuse(
                        stream,
                        &shared.config,
                        &XrpcError::Cancelled {
                            peer: shared.name.clone(),
                            reason: "server draining: not accepting new connections".to_string(),
                        },
                    );
                    continue;
                }
                let at_capacity = {
                    let conns = shared.conn_count.lock().unwrap();
                    *conns >= shared.config.max_connections
                };
                if at_capacity {
                    refuse(
                        stream,
                        &shared.config,
                        &XrpcError::Overloaded { retry_after_ms: shared.retry_hint_ms() },
                    );
                    continue;
                }
                spawn_conn(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn spawn_conn(shared: &Arc<Shared>, stream: TcpStream) {
    *shared.conn_count.lock().unwrap() += 1;
    let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        shared.conns.lock().unwrap().insert(id, clone);
    }
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let mut stream = stream;
        serve_conn(&shared, &mut stream);
        let _ = stream.shutdown(Shutdown::Both);
        shared.conns.lock().unwrap().remove(&id);
        let mut conns = shared.conn_count.lock().unwrap();
        *conns -= 1;
        drop(conns);
        shared.conn_done.notify_all();
    });
}
