//! Peer health scoreboard: EWMA latency, consecutive-failure counts and a
//! per-peer **circuit breaker**, all driven by the federation's *simulated*
//! clock so that trips and probes replay bit-identically from a seed under
//! any thread interleaving.
//!
//! The scoreboard never reads the wall clock. Its notion of "now" advances
//! only when the executor charges simulated network chains (the same
//! quantities billed to [`crate::Metrics::network_overlapped`]), and its
//! state mutates only at deterministic points: immediately after a call on
//! the sequential path, and in slot order at the gather barrier of a
//! scatter round. Worker threads only ever consult an immutable *snapshot*
//! taken at round start, so admission decisions are a pure function of
//! `(snapshot, peer)`.
//!
//! Breaker state machine (per peer):
//!
//! ```text
//!            >= threshold consecutive failures
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                           │ simulated clock
//!     │ probe succeeds                            │ reaches cooldown
//!     │                                           ▼
//!     └──────────────────────────────────────  HalfOpen
//!                    probe fails: back to Open (fresh cooldown)
//! ```
//!
//! `HalfOpen` is *derived*, not stored: an `Open` entry whose cooldown has
//! elapsed on the simulated clock admits exactly one class of calls —
//! probes — and the next observation either closes the breaker or re-opens
//! it with a fresh cooldown. Storing only `Closed`/`Open{until}` keeps the
//! admission check a pure read, which is what lets scatter workers share a
//! snapshot without locks or ordering sensitivity.

use std::collections::BTreeMap;
use std::time::Duration;

/// Public three-valued breaker state (the derived view; see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are rejected outright with [`crate::XrpcError::BreakerOpen`].
    Open,
    /// The cooldown elapsed: one probe call is admitted to test the peer.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name, used verbatim as a trace-span annotation.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Breaker tuning knobs (CLI: `--breaker-threshold`,
/// `--breaker-cooldown-ms`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failed attempts that trip the breaker. `0` disables the
    /// breaker entirely (every admission succeeds, nothing ever trips).
    pub threshold: u32,
    /// Simulated time an open breaker rejects calls before admitting a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { threshold: 4, cooldown: Duration::from_millis(500) }
    }
}

/// Verdict of a (pure) admission check against the scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Dispatch the call; `probe` marks a half-open trial.
    Allow { probe: bool },
    /// The breaker is open: fail fast, try another replica instead.
    /// `retry_after` is the simulated time until a probe would be admitted.
    Reject { retry_after: Duration },
}

/// Internal stored state — `HalfOpen` is derived at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stored {
    Closed,
    Open { until_ns: u64 },
}

/// Health record of one peer.
#[derive(Debug, Clone, Copy)]
struct PeerHealth {
    /// EWMA of observed call chains, integer arithmetic (3/10 weight on the
    /// newest observation) so replays are exact.
    ewma_ns: u64,
    observed: bool,
    consecutive_failures: u32,
    state: Stored,
}

impl PeerHealth {
    fn fresh() -> Self {
        PeerHealth {
            ewma_ns: 0,
            observed: false,
            consecutive_failures: 0,
            state: Stored::Closed,
        }
    }
}

/// One health observation: the outcome of a ladder rung (one peer's share
/// of a logical call — every same-peer retry included).
#[derive(Debug, Clone)]
pub struct Observation {
    pub peer: String,
    /// Did the rung end with a decoded response?
    pub ok: bool,
    /// Attempts within the rung that ended in a failure (feeds the
    /// consecutive-failure count; a success resets it regardless).
    pub failed_attempts: u32,
    /// Simulated chain the rung consumed (feeds the latency EWMA).
    pub chain: Duration,
    /// Was this rung a half-open probe?
    pub probe: bool,
}

fn as_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// The federation's availability scoreboard. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    policy: BreakerPolicy,
    now_ns: u64,
    peers: BTreeMap<String, PeerHealth>,
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard::new(BreakerPolicy::default())
    }
}

impl Scoreboard {
    pub fn new(policy: BreakerPolicy) -> Self {
        Scoreboard { policy, now_ns: 0, peers: BTreeMap::new() }
    }

    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Current simulated time.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.now_ns)
    }

    /// Advances the simulated clock — called wherever the executor bills
    /// overlapped network time (per sequential call, per scatter round).
    pub fn advance(&mut self, elapsed: Duration) {
        self.now_ns = self.now_ns.saturating_add(as_ns(elapsed));
    }

    /// Drops all peer state and rewinds the clock (per-run reset).
    pub fn reset(&mut self, policy: BreakerPolicy) {
        self.policy = policy;
        self.now_ns = 0;
        self.peers.clear();
    }

    /// The derived three-valued breaker state of `peer`.
    pub fn state(&self, peer: &str) -> BreakerState {
        match self.peers.get(peer).map(|p| p.state) {
            None | Some(Stored::Closed) => BreakerState::Closed,
            Some(Stored::Open { until_ns }) => {
                if self.now_ns >= until_ns {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }

    /// Observed latency EWMA of `peer`, if any call completed against it.
    pub fn ewma(&self, peer: &str) -> Option<Duration> {
        self.peers
            .get(peer)
            .filter(|p| p.observed)
            .map(|p| Duration::from_nanos(p.ewma_ns))
    }

    /// Pure admission check — safe to evaluate against a shared snapshot
    /// from any thread; never mutates.
    pub fn admission(&self, peer: &str) -> Admission {
        if self.policy.threshold == 0 {
            return Admission::Allow { probe: false };
        }
        match self.state(peer) {
            BreakerState::Closed => Admission::Allow { probe: false },
            BreakerState::HalfOpen => Admission::Allow { probe: true },
            BreakerState::Open => {
                let until = match self.peers.get(peer).map(|p| p.state) {
                    Some(Stored::Open { until_ns }) => until_ns,
                    _ => self.now_ns,
                };
                Admission::Reject {
                    retry_after: Duration::from_nanos(until.saturating_sub(self.now_ns)),
                }
            }
        }
    }

    /// Sort key for replica selection: healthy peers first (Closed <
    /// HalfOpen < Open), seeded rendezvous score breaking ties elsewhere.
    pub fn health_rank(&self, peer: &str) -> u8 {
        match self.state(peer) {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }

    /// Applies one observation. Returns `true` when this observation
    /// *tripped* the breaker (any transition into `Open` — threshold
    /// reached, or a failed half-open probe).
    pub fn observe(&mut self, obs: &Observation) -> bool {
        let entry = self.peers.entry(obs.peer.clone()).or_insert_with(PeerHealth::fresh);
        let chain_ns = as_ns(obs.chain);
        if entry.observed {
            entry.ewma_ns = (entry.ewma_ns / 10) * 7 + entry.ewma_ns % 10 * 7 / 10
                + (chain_ns / 10) * 3
                + chain_ns % 10 * 3 / 10;
        } else {
            entry.ewma_ns = chain_ns;
            entry.observed = true;
        }
        if self.policy.threshold == 0 {
            return false;
        }
        if obs.ok {
            entry.consecutive_failures = 0;
            entry.state = Stored::Closed;
            return false;
        }
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(obs.failed_attempts.max(1));
        let was_open = matches!(entry.state, Stored::Open { .. });
        let trip = if obs.probe {
            // a failed probe re-opens with a fresh cooldown
            true
        } else {
            !was_open && entry.consecutive_failures >= self.policy.threshold
        };
        if trip {
            entry.state = Stored::Open { until_ns: self.now_ns.saturating_add(as_ns(self.policy.cooldown)) };
        }
        trip
    }
}

// ---------------------------------------------------------------------------
// seeded selection helpers
// ---------------------------------------------------------------------------

/// FNV-1a over a name, SplitMix-style mixed with `seed` and `salt` —
/// the same construction [`crate::FaultPlan`] uses for its per-attempt
/// streams. Used for rendezvous-style replica selection and hedge-delay
/// jitter, so both are pure functions of `(seed, name, salt)`.
pub fn mix_score(seed: u64, name: &str, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(h)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic jitter fraction in `[0, 1)` for `(seed, name, salt)`.
pub fn seeded_fraction(seed: u64, name: &str, salt: u64) -> f64 {
    (mix_score(seed, name, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_deterministic_and_spread() {
        assert_eq!(mix_score(7, "a", 3), mix_score(7, "a", 3));
        assert_ne!(mix_score(7, "a", 3), mix_score(7, "b", 3));
        assert_ne!(mix_score(7, "a", 3), mix_score(8, "a", 3));
        assert_ne!(mix_score(7, "a", 3), mix_score(7, "a", 4));
        let f = seeded_fraction(42, "peer", 9);
        assert!((0.0..1.0).contains(&f));
        assert_eq!(f, seeded_fraction(42, "peer", 9));
    }

    #[test]
    fn ewma_tracks_observations() {
        let mut b = Scoreboard::new(BreakerPolicy::default());
        assert!(b.ewma("p").is_none());
        b.observe(&Observation {
            peer: "p".into(),
            ok: true,
            failed_attempts: 0,
            chain: Duration::from_millis(100),
            probe: false,
        });
        assert_eq!(b.ewma("p"), Some(Duration::from_millis(100)));
        b.observe(&Observation {
            peer: "p".into(),
            ok: true,
            failed_attempts: 0,
            chain: Duration::from_millis(200),
            probe: false,
        });
        // 0.7 * 100ms + 0.3 * 200ms = 130ms
        assert_eq!(b.ewma("p"), Some(Duration::from_millis(130)));
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = Scoreboard::new(BreakerPolicy { threshold: 0, cooldown: Duration::from_secs(1) });
        for _ in 0..100 {
            let tripped = b.observe(&Observation {
                peer: "p".into(),
                ok: false,
                failed_attempts: 3,
                chain: Duration::from_millis(1),
                probe: false,
            });
            assert!(!tripped);
        }
        assert_eq!(b.state("p"), BreakerState::Closed);
        assert_eq!(b.admission("p"), Admission::Allow { probe: false });
    }
}
