//! # xqd-xrpc — XRPC messages, simulated peers and the distributed executor
//!
//! Implements the network-facing half of *"Efficient Distribution of
//! Full-Fledged XQuery"* (ICDE 2009):
//!
//! * [`message`] — the pass-by-value / pass-by-fragment / pass-by-projection
//!   request and response codecs (Figures 1, 4, 5), serialized to real XML
//!   bytes and shredded back;
//! * [`wire`] — `fragid`/`nodeid` addressing, fragment deduplication and
//!   relative projection-path evaluation;
//! * [`net`] — the link cost model replacing the paper's 1 Gb/s testbed,
//!   the Figure-8 metric categories, the typed [`XrpcError`] failure
//!   taxonomy and the deterministic [`FaultPlan`] fault schedule;
//! * [`health`] — the peer health scoreboard: EWMA latency, circuit
//!   breakers on the simulated clock, and seeded selection helpers behind
//!   the replica failover ladder;
//! * [`exec`] — the [`Federation`] of peers, the `RemoteHandler` /
//!   `DocResolver` implementations (including Bulk RPC and data-shipping
//!   document fetches), the fault-injecting transport with
//!   [`RetryPolicy`]-driven retries and graceful degradation, and
//!   canonical result serialization;
//! * [`sched`] — the coordinator-side concurrency layer: admission
//!   control with bounded per-tenant run queues, weighted fair queuing,
//!   deadline propagation, and the deterministic multi-tenant
//!   [`WorkloadEngine`] that drives saturation benchmarks on the
//!   simulated clock;
//! * [`trace`] — deterministic distributed tracing on the simulated
//!   clock: per-query span trees (front end, failover rungs, RPC
//!   attempts, scatter rounds, peer evaluations, queue residency),
//!   exact-percentile latency histograms, and JSON / Chrome
//!   `trace_event` export that replays byte-identically from a seed;
//! * [`transport`] — the [`Transport`] seam over the envelope protocol
//!   (one exchange = one reply envelope), the length-prefixed socket
//!   framing with typed corruption errors, and the wall-clock
//!   [`call_with_retry`] driver honoring server `retry-after-ms` hints;
//! * [`tcp`] — the real-socket side: [`TcpTransport`] (pooled
//!   connections, per-attempt deadlines) and [`SocketFederation`], the
//!   coordinator that drives a multi-process localhost federation
//!   through the same failover ladder discipline;
//! * [`server`] — the `xqd serve` daemon: [`PeerServer`] listening for
//!   length-prefixed envelopes with read/write/idle deadlines, bounded
//!   in-flight admission with honest `retry-after-ms`, typed faults for
//!   malformed frames, and graceful drain.
//!
//! ```no_run
//! use xqd_xrpc::{Federation, NetworkModel};
//! use xqd_core::Strategy;
//!
//! let mut fed = Federation::new(NetworkModel::lan());
//! fed.load_document("A", "d.xml", "<people><p/></people>").unwrap();
//! let out = fed.run("count(doc(\"xrpc://A/d.xml\")//p)", Strategy::ByFragment).unwrap();
//! assert_eq!(out.result, vec!["atom:1"]);
//! ```

pub mod exec;
pub mod health;
pub mod message;
pub mod net;
pub mod sched;
pub mod server;
pub mod tcp;
pub mod trace;
pub mod transport;
pub mod wire;

pub use exec::{
    canonical_item, ExecOptions, Federation, Peer, PreparedQuery, RetryPolicy, RunOutcome,
    SimTransport,
};
pub use health::{Admission, BreakerPolicy, BreakerState, Scoreboard};
pub use message::{
    decode_doc_request, decode_doc_response, decode_fault, decode_request, decode_response,
    encode_doc_request, encode_doc_response, encode_fault, encode_request, encode_response,
    WireSemantics,
};
pub use net::{Fault, FaultPlan, Metrics, MetricsSnapshot, NetworkModel, XrpcError, METRIC_NAMES};
pub use sched::{
    OutcomeKind, QueryOutcome, TenantReport, TenantSpec, WorkloadConfig, WorkloadEngine,
    WorkloadReport,
};
pub use server::{DrainReport, PeerServer, ServerConfig};
pub use tcp::{SocketFederation, TcpTransport};
pub use trace::{Histogram, Span, SpanBuilder, Trace, Tracer, ROOT_SPAN};
pub use transport::{
    call_with_retry, read_frame, write_frame, CallOutcome, FrameError, Transport, MAX_FRAME_LEN,
};
