//! Interned element/attribute names.
//!
//! All documents in a [`crate::Store`] share one `NameTable`, so a node test
//! (`child::person`) is a single integer comparison regardless of which
//! document the context node lives in.

use std::collections::HashMap;

/// Identifier of an interned QName. `NameId(0)` is reserved for the empty
/// name (document nodes, text nodes, comments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// The reserved "no name" id used by nameless node kinds.
    pub const NONE: NameId = NameId(0);
}

/// Bidirectional string interner for QNames.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Vec<Box<str>>,
    index: HashMap<Box<str>, NameId>,
}

impl NameTable {
    /// Creates a table with the reserved empty name pre-interned.
    pub fn new() -> Self {
        let mut t = NameTable { names: Vec::new(), index: HashMap::new() };
        let id = t.intern("");
        debug_assert_eq!(id, NameId::NONE);
        t
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<NameId> {
        self.index.get(name).copied()
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned names (including the reserved empty name).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only the reserved empty name is present.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("person");
        let b = t.intern("person");
        assert_eq!(a, b);
        assert_eq!(t.resolve(a), "person");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = NameTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "a");
        assert_eq!(t.resolve(b), "b");
    }

    #[test]
    fn empty_name_is_reserved() {
        let mut t = NameTable::new();
        assert_eq!(t.intern(""), NameId::NONE);
        assert_eq!(t.resolve(NameId::NONE), "");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = NameTable::new();
        assert_eq!(t.get("x"), None);
        let id = t.intern("x");
        assert_eq!(t.get("x"), Some(id));
    }
}
