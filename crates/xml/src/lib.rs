//! # xqd-xml — XML data model substrate
//!
//! Arena-based XML document store with the properties the distributed-XQuery
//! framework of *"Efficient Distribution of Full-Fledged XQuery"* (ICDE 2009)
//! depends on:
//!
//! * **Node identity**: every node is a `(DocId, NodeIdx)` pair; two nodes are
//!   the same node iff the pairs are equal (`is` comparison).
//! * **Document order**: node indices are preorder ranks, so order inside a
//!   document is an integer comparison; order across documents follows the
//!   (stable, implementation-defined) `DocId` order — this is exactly what
//!   makes the paper's Problems 3–4 observable.
//! * **O(1) structural tests**: each node stores the preorder rank of its last
//!   descendant (`subtree_end`), giving constant-time ancestor/descendant
//!   checks and constant-time "skip subtree" in Algorithm 1.
//!
//! The crate also provides the XML parser ("shredder"), the serializer, all
//! twelve XPath axes, `deep-equal`, and the paper's **runtime XML projection**
//! (Algorithm 1) together with the compile-time projection baseline.

pub mod axes;
pub mod index;
pub mod name;
pub mod parser;
pub mod project;
pub mod serialize;
pub mod store;

pub use axes::Axis;
pub use index::NameIndex;
pub use name::{NameId, NameTable};
pub use parser::{parse_document, ParseError};
pub use project::{project_document, ProjectionInput};
pub use serialize::{serialize_document, serialize_node};
pub use store::{DocBuilder, DocId, Document, NodeId, NodeKind, NodeMeta, NodeRef, Store};
