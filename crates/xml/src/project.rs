//! Runtime XML projection — **Algorithm 1** of the paper.
//!
//! Given the *used* node set `U` and *returned* node set `R` (both
//! materialized at run time by evaluating the relative projection paths on
//! real context sequences), the algorithm extracts the minimal part `D'` of a
//! document `D` such that evaluating the remaining query on `D'` equals
//! evaluating it on `D`:
//!
//! * every used node is kept (alone),
//! * every returned node is kept **with all its descendants**,
//! * all ancestors of kept nodes are kept (so reverse axes keep working),
//! * finally the top-most chain of single-child connector nodes not in
//!   `U ∪ R` is trimmed, leaving the lowest common ancestor as the projected
//!   root (lines 24–27 of Algorithm 1).
//!
//! The traversal is the paper's two-cursor merge over the preorder arena:
//! skipping an unrelated subtree is a single `subtree_end + 1` jump.
//!
//! The module also hosts the **compile-time projection baseline**
//! ([`eval_simple_path`] + the same keep-set machinery) used by the
//! Figure 10/11 reproduction, and the schema-aware variant sketched at the
//! end of Section VI-B.

use std::collections::HashSet;

use crate::axes::{axis_nodes, node_test_matches, Axis, NodeTest};
use crate::name::NameTable;
use crate::store::{DocBuilder, Document, NodeKind};

/// The two node sets driving a projection.
#[derive(Debug, Clone, Default)]
pub struct ProjectionInput {
    /// Used nodes: needed to answer the query but never returned.
    pub used: Vec<u32>,
    /// Returned nodes: kept together with their whole subtrees.
    pub returned: Vec<u32>,
}

impl ProjectionInput {
    pub fn new(mut used: Vec<u32>, mut returned: Vec<u32>) -> Self {
        used.sort_unstable();
        used.dedup();
        returned.sort_unstable();
        returned.dedup();
        ProjectionInput { used, returned }
    }

    pub fn is_empty(&self) -> bool {
        self.used.is_empty() && self.returned.is_empty()
    }
}

/// Size accounting for the precision experiments (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionStats {
    pub kept_nodes: usize,
    pub total_nodes: usize,
}

/// Outcome of a projection: the kept source indices (preorder-sorted, after
/// the LCA trim) and the mapping invariant *kept\[i\] ↦ projected index i+1*
/// (index 0 is the new document node).
#[derive(Debug, Clone)]
pub struct Projection {
    pub kept: Vec<u32>,
    pub stats: ProjectionStats,
}

impl Projection {
    /// Projected index of source node `src`, if kept.
    pub fn projected_index(&self, src: u32) -> Option<u32> {
        self.kept.binary_search(&src).ok().map(|i| i as u32 + 1)
    }

    /// Source index of projected node `dst` (inverse of
    /// [`Self::projected_index`]).
    pub fn source_index(&self, dst: u32) -> Option<u32> {
        if dst == 0 {
            return None;
        }
        self.kept.get(dst as usize - 1).copied()
    }
}

/// Lines 1–23 of Algorithm 1: compute the kept node set.
///
/// `input` node sets must refer to nodes of `doc`; the document node (index
/// 0) may appear and is handled like any returned/used node.
fn keep_set(doc: &Document, input: &ProjectionInput) -> Vec<u32> {
    // projection nodes P ← U ∪ R, sorted on document order (line 1)
    let used: HashSet<u32> = input.used.iter().copied().collect();
    let returned: HashSet<u32> = input.returned.iter().copied().collect();
    let mut p: Vec<u32> = input.used.iter().chain(&input.returned).copied().collect();
    p.sort_unstable();
    p.dedup();
    if p.is_empty() {
        return Vec::new();
    }

    let mut kept: Vec<u32> = Vec::new();
    let len = doc.len() as u32;
    let mut pi = 0usize; // proj ← first node in P (line 2)
    let mut cur = 0u32; // cur ← root node (line 3)
    while pi < p.len() && cur < len {
        let proj = p[pi];
        if doc.is_ancestor(cur, proj) {
            // cur on the path to proj: keep as connector (lines 5–7)
            kept.push(cur);
            cur += 1;
        } else if proj == cur {
            if returned.contains(&proj) {
                // returned node: keep the whole subtree (lines 9–11)
                let end = doc.subtree_end(cur);
                kept.extend(cur..=end);
                cur = end + 1;
                // prune projection nodes covered by this subtree (lines 12–14)
                while pi + 1 < p.len() && p[pi + 1] <= end {
                    pi += 1;
                }
            } else {
                // used node: keep it alone (lines 15–17)
                kept.push(cur);
                cur += 1;
            }
            pi += 1; // proj ← proj.next (line 19)
        } else {
            // proj not under cur: skip the whole subtree (line 21)
            cur = doc.subtree_end(cur) + 1;
        }
    }
    let _ = used;
    kept
}

/// Lines 24–27 of Algorithm 1: drop the top-most chain of connector nodes
/// that have a single child and are not themselves projection nodes, so the
/// projected root becomes the lowest common ancestor of `U ∪ R`.
///
/// The document node itself (index 0) is always removed from `kept` — the
/// projected output gets a fresh document node.
fn trim_lca(doc: &Document, kept: &mut Vec<u32>, input: &ProjectionInput) {
    let p: HashSet<u32> =
        input.used.iter().chain(&input.returned).copied().collect();
    loop {
        if kept.is_empty() {
            return;
        }
        let cur = kept[0];
        // the source document node never survives: the projected output's
        // own document node plays its role (references to it use the
        // `nodeid 0` convention), even when it is itself a projection node
        if doc.kind(cur) == NodeKind::Document {
            kept.remove(0);
            continue;
        }
        if p.contains(&cur) {
            return;
        }
        // children of cur *within the kept set*
        let end = doc.subtree_end(cur);
        let mut kept_children = 0usize;
        let mut attr_child = false;
        for &k in kept.iter().skip(1) {
            if k > end {
                break;
            }
            // a kept node whose nearest kept ancestor is cur counts as child
            if nearest_kept_ancestor(doc, kept, k) == Some(cur) {
                kept_children += 1;
                if doc.kind(k) == NodeKind::Attribute {
                    attr_child = true;
                }
                if kept_children > 1 {
                    break;
                }
            }
        }
        // an attribute cannot stand alone: its owner element must survive
        if attr_child && doc.kind(cur) != NodeKind::Document {
            return;
        }
        if kept_children == 1 || doc.kind(cur) == NodeKind::Document {
            kept.remove(0);
        } else {
            return;
        }
    }
}

fn nearest_kept_ancestor(doc: &Document, kept: &[u32], idx: u32) -> Option<u32> {
    let mut cur = doc.parent(idx);
    while let Some(a) = cur {
        if kept.binary_search(&a).is_ok() {
            return Some(a);
        }
        cur = doc.parent(a);
    }
    None
}

/// Runs Algorithm 1 end-to-end, returning the kept-set description.
pub fn compute_projection(doc: &Document, input: &ProjectionInput) -> Projection {
    let mut kept = keep_set(doc, input);
    trim_lca(doc, &mut kept, input);
    let stats = ProjectionStats { kept_nodes: kept.len(), total_nodes: doc.len() };
    Projection { kept, stats }
}

/// Materializes a projection as a new standalone document builder.
///
/// Kept nodes are emitted in preorder with parents rewired to the nearest
/// kept ancestor, so `kept[i]` becomes projected node `i + 1` — the mapping
/// [`Projection::projected_index`] relies on.
pub fn build_projected(
    doc: &Document,
    names: &NameTable,
    projection: &Projection,
    uri: Option<&str>,
) -> DocBuilder {
    let mut b = DocBuilder::new(uri);
    // Stack of open source elements (mirrors builder nesting).
    let mut open: Vec<u32> = Vec::new();
    for &k in &projection.kept {
        while let Some(&top) = open.last() {
            if doc.is_ancestor(top, k) {
                break;
            }
            b.end_element();
            open.pop();
        }
        match doc.kind(k) {
            NodeKind::Element => {
                b.start_element(names.resolve(doc.name(k)));
                open.push(k);
            }
            NodeKind::Attribute => {
                b.attribute(names.resolve(doc.name(k)), doc.value(k).unwrap_or(""));
            }
            NodeKind::Text => {
                b.text(doc.value(k).unwrap_or(""));
            }
            NodeKind::Comment => {
                b.comment(doc.value(k).unwrap_or(""));
            }
            NodeKind::Pi => {
                b.pi(names.resolve(doc.name(k)), doc.value(k).unwrap_or(""));
            }
            NodeKind::Document => { /* never kept after trim */ }
        }
    }
    while open.pop().is_some() {
        b.end_element();
    }
    b.finish()
}

/// Convenience: project `doc` in one call.
pub fn project_document(
    doc: &Document,
    names: &NameTable,
    input: &ProjectionInput,
    uri: Option<&str>,
) -> (DocBuilder, Projection) {
    let projection = compute_projection(doc, input);
    let builder = build_projected(doc, names, &projection, uri);
    (builder, projection)
}

/// Schema hints for the schema-aware variant of Section VI-B: elements or
/// attributes with these names are mandatory (`minOccurs >= 1`) and must not
/// be projected away when their parent is kept.
#[derive(Debug, Clone, Default)]
pub struct SchemaHints {
    pub required: HashSet<String>,
}

impl SchemaHints {
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        SchemaHints { required: names.into_iter().map(Into::into).collect() }
    }
}

/// Schema-aware projection: after Algorithm 1, re-adds (with their subtrees)
/// any required-named attribute or child element of every kept element.
pub fn compute_projection_schema_aware(
    doc: &Document,
    names: &NameTable,
    input: &ProjectionInput,
    hints: &SchemaHints,
) -> Projection {
    let mut kept = keep_set(doc, input);
    let snapshot = kept.clone();
    let mut extra: Vec<u32> = Vec::new();
    for &k in &snapshot {
        if doc.kind(k) != NodeKind::Element {
            continue;
        }
        for a in doc.attributes(k) {
            if hints.required.contains(names.resolve(doc.name(a))) {
                extra.push(a);
            }
        }
        for c in doc.children(k) {
            if doc.kind(c) == NodeKind::Element
                && hints.required.contains(names.resolve(doc.name(c)))
            {
                extra.extend(c..=doc.subtree_end(c));
            }
        }
    }
    kept.extend(extra);
    kept.sort_unstable();
    kept.dedup();
    trim_lca(doc, &mut kept, input);
    let stats = ProjectionStats { kept_nodes: kept.len(), total_nodes: doc.len() };
    Projection { kept, stats }
}

/// One step of a *simple path* (Table V grammar, minus the built-in function
/// suffixes which the caller expands): an axis plus a structural node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleStep {
    pub axis: Axis,
    pub test: SimpleTest,
}

/// Node tests expressible in projection paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleTest {
    Name(String),
    Wildcard,
    AnyNode,
    Text,
}

/// Evaluates a predicate-free simple path from `start` nodes, producing a
/// document-order, duplicate-free node set. This is the "normal XPath
/// evaluation capabilities" the runtime projection borrows from the engine,
/// and the whole evaluation machinery the *compile-time* baseline is allowed
/// to use (absolute paths, no predicates — hence its overestimation).
pub fn eval_simple_path(
    doc: &Document,
    names: &NameTable,
    start: &[u32],
    steps: &[SimpleStep],
) -> Vec<u32> {
    let mut cur: Vec<u32> = start.to_vec();
    cur.sort_unstable();
    cur.dedup();
    for step in steps {
        let test = match &step.test {
            SimpleTest::Name(n) => {
                names.get(n).map(NodeTest::Name).unwrap_or(NodeTest::UnknownName)
            }
            SimpleTest::Wildcard => NodeTest::Wildcard,
            SimpleTest::AnyNode => NodeTest::AnyKind,
            SimpleTest::Text => NodeTest::Text,
        };
        let mut next = Vec::new();
        for &n in &cur {
            let mut reached = Vec::new();
            axis_nodes(doc, n, step.axis, &mut reached);
            for r in reached {
                if node_test_matches(doc, r, step.axis, &test) {
                    next.push(r);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::serialize::serialize_document;
    use crate::store::{DocId, Store};

    /// The exact 15-node tree of Figure 6(a):
    /// a(b(c(d(e,f)), g(h), i, j, k(l,m)), n(o))
    /// preorder: 0=doc 1=a 2=b 3=c 4=d 5=e 6=f 7=g 8=h 9=i 10=j 11=k 12=l 13=m 14=n 15=o
    fn figure6_doc(store: &mut Store) -> DocId {
        parse_document(
            store,
            "<a><b><c><d><e/><f/></d></c><g><h/></g><i/><j/><k><l/><m/></k></b><n><o/></n></a>",
            Some("fig6.xml"),
        )
        .unwrap()
    }

    #[test]
    fn figure6() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let doc = s.doc(d);
        // U = {i}, R = {d, k}
        let input = ProjectionInput::new(vec![9], vec![4, 11]);
        let (builder, projection) = project_document(doc, &s.names, &input, None);
        // Kept (after trimming a): b c d e f i k l m
        assert_eq!(projection.kept, vec![2, 3, 4, 5, 6, 9, 11, 12, 13]);
        let d2 = s.attach(builder);
        let out = serialize_document(s.doc(d2), &s.names);
        assert_eq!(out, "<b><c><d><e/><f/></d></c><i/><k><l/><m/></k></b>");
    }

    #[test]
    fn figure6_mapping_roundtrips() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let input = ProjectionInput::new(vec![9], vec![4, 11]);
        let projection = compute_projection(s.doc(d), &input);
        for (i, &src) in projection.kept.iter().enumerate() {
            assert_eq!(projection.projected_index(src), Some(i as u32 + 1));
            assert_eq!(projection.source_index(i as u32 + 1), Some(src));
        }
        assert_eq!(projection.projected_index(1), None, "a was trimmed");
        assert_eq!(projection.source_index(0), None);
    }

    #[test]
    fn returned_root_keeps_everything_below() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let doc = s.doc(d);
        let input = ProjectionInput::new(vec![], vec![1]); // R = {a}
        let projection = compute_projection(doc, &input);
        assert_eq!(projection.kept.len(), doc.len() - 1); // all but document node
        let (builder, _) = project_document(doc, &s.names, &input, None);
        let d2 = s.attach(builder);
        assert_eq!(
            serialize_document(s.doc(d2), &s.names),
            serialize_document(s.doc(d), &s.names)
        );
    }

    #[test]
    fn used_node_kept_without_descendants() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let input = ProjectionInput::new(vec![4], vec![]); // U = {d}
        let projection = compute_projection(s.doc(d), &input);
        // d kept alone (e,f dropped); trim removes a,b,c connectors above d
        assert_eq!(projection.kept, vec![4]);
    }

    #[test]
    fn empty_input_keeps_nothing() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let projection = compute_projection(s.doc(d), &ProjectionInput::default());
        assert!(projection.kept.is_empty());
    }

    #[test]
    fn two_returned_nodes_keep_common_ancestors() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        // R = {e, o}: LCA is a, which therefore survives the trim
        let input = ProjectionInput::new(vec![], vec![5, 15]);
        let projection = compute_projection(s.doc(d), &input);
        assert_eq!(projection.kept, vec![1, 2, 3, 4, 5, 14, 15]);
    }

    #[test]
    fn attributes_inside_returned_subtree_are_kept() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<r><p id=\"1\"><q k=\"v\"/></p><z/></r>", None).unwrap();
        // 0=doc 1=r 2=p 3=@id 4=q 5=@k 6=z — return p
        let input = ProjectionInput::new(vec![], vec![2]);
        let (builder, _) = project_document(s.doc(d), &s.names, &input, None);
        let d2 = s.attach(builder);
        assert_eq!(
            serialize_document(s.doc(d2), &s.names),
            "<p id=\"1\"><q k=\"v\"/></p>"
        );
    }

    #[test]
    fn ancestor_attributes_are_projected_away() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<r big=\"payload\"><p/><q/></r>", None).unwrap();
        // used = {p (2)} and {q (4)}? indexes: 0=doc 1=r 2=@big 3=p 4=q
        let input = ProjectionInput::new(vec![3, 4], vec![]);
        let (builder, _) = project_document(s.doc(d), &s.names, &input, None);
        let d2 = s.attach(builder);
        assert_eq!(serialize_document(s.doc(d2), &s.names), "<r><p/><q/></r>");
    }

    #[test]
    fn schema_aware_keeps_required_children() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<r big=\"payload\"><p/><q/></r>", None).unwrap();
        let input = ProjectionInput::new(vec![3], vec![]); // used = {p}
        let hints = SchemaHints::new(["big", "q"]);
        let projection = compute_projection_schema_aware(s.doc(d), &s.names, &input, &hints);
        // r kept as connector; @big and q re-added by schema hints
        assert_eq!(projection.kept, vec![1, 2, 3, 4]);
    }

    #[test]
    fn simple_path_descendant_then_child() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let doc = s.doc(d);
        let steps = [
            SimpleStep { axis: Axis::Descendant, test: SimpleTest::Name("k".into()) },
            SimpleStep { axis: Axis::Child, test: SimpleTest::Wildcard },
        ];
        assert_eq!(eval_simple_path(doc, &s.names, &[0], &steps), vec![12, 13]);
    }

    #[test]
    fn simple_path_reverse_axis() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let doc = s.doc(d);
        let steps = [SimpleStep { axis: Axis::Parent, test: SimpleTest::Name("b".into()) }];
        assert_eq!(eval_simple_path(doc, &s.names, &[11, 9], &steps), vec![2]);
    }

    #[test]
    fn simple_path_unknown_name_is_empty() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let steps = [SimpleStep { axis: Axis::Child, test: SimpleTest::Name("zzz".into()) }];
        assert!(eval_simple_path(s.doc(d), &s.names, &[0], &steps).is_empty());
    }

    #[test]
    fn stats_report_precision() {
        let mut s = Store::new();
        let d = figure6_doc(&mut s);
        let input = ProjectionInput::new(vec![9], vec![4, 11]);
        let projection = compute_projection(s.doc(d), &input);
        assert_eq!(projection.stats.kept_nodes, 9);
        assert_eq!(projection.stats.total_nodes, 16);
    }
}
