//! Per-document name indexes and staircase-join axis steps.
//!
//! The arena's pre/size encoding stores nodes in preorder, so "all
//! descendants of `v`" is the contiguous rank interval `(v, subtree_end(v)]`.
//! A **name index** inverts the arena by node name: for every element (and,
//! separately, attribute) name it keeps the sorted list of preorder ranks of
//! nodes carrying that name. A `descendant::n` step then becomes two binary
//! searches per context node instead of a subtree scan — the core idea of the
//! staircase join over pre/post (here pre/size) encodings that MonetDB/XQuery
//! uses, which is the execution model of the paper's Section VII evaluation.
//!
//! Context-node sets arrive sorted in document order (the evaluator sorts
//! between steps). For the `descendant` axes, a context node that lies inside
//! a previously processed context's subtree contributes a sub-interval of an
//! interval already emitted — the staircase "pruning" step skips it, making
//! the output both duplicate-free and sorted without a post-pass. The `child`
//! and `attribute` steps use the same interval lookup but filter by parent
//! rank; nested contexts can interleave there, so callers must not assume
//! sorted output for those (the evaluator re-sorts after every step anyway).
//!
//! Indexes are built lazily by [`crate::store::Store::ensure_name_index`] on
//! first use and cached on the [`Document`]; documents are immutable once
//! attached, so a built index never needs invalidation — newly loaded
//! documents simply start without one.

use std::collections::HashMap;

use crate::name::NameId;
use crate::store::{Document, NodeKind};

/// Inverted name→ranks maps for one document. Rank lists are sorted
/// ascending (they are filled in one preorder pass).
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    elements: HashMap<NameId, Vec<u32>>,
    attributes: HashMap<NameId, Vec<u32>>,
}

impl NameIndex {
    /// Builds the index with a single preorder pass over the arena.
    pub fn build(doc: &Document) -> NameIndex {
        let mut elements: HashMap<NameId, Vec<u32>> = HashMap::new();
        let mut attributes: HashMap<NameId, Vec<u32>> = HashMap::new();
        for i in 0..doc.len() as u32 {
            match doc.kind(i) {
                NodeKind::Element => elements.entry(doc.name(i)).or_default().push(i),
                NodeKind::Attribute => attributes.entry(doc.name(i)).or_default().push(i),
                _ => {}
            }
        }
        NameIndex { elements, attributes }
    }

    /// Sorted preorder ranks of elements named `name`.
    pub fn elements(&self, name: NameId) -> &[u32] {
        self.elements.get(&name).map_or(&[], Vec::as_slice)
    }

    /// Sorted preorder ranks of attributes named `name`.
    pub fn attributes(&self, name: NameId) -> &[u32] {
        self.attributes.get(&name).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct element names indexed.
    pub fn element_name_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of distinct attribute names indexed.
    pub fn attribute_name_count(&self) -> usize {
        self.attributes.len()
    }
}

/// Sub-slice of the sorted `list` with ranks in `[lo, hi]`.
fn rank_range(list: &[u32], lo: u32, hi: u32) -> &[u32] {
    let a = list.partition_point(|&x| x < lo);
    let b = list.partition_point(|&x| x <= hi);
    &list[a..b.max(a)]
}

/// Staircase `descendant::n` / `descendant-or-self::n` over the element name
/// list. `ctxs` must be sorted ascending and duplicate-free; output is
/// appended to `out` in document order, duplicate-free.
///
/// Pruning: if `ctx` lies inside the subtree of an earlier context, its whole
/// result interval is covered by the earlier one and is skipped. This is
/// valid only for the descendant axes (child results of nested contexts are
/// not covered), which is why the child step below does not prune.
pub fn descendants_named(
    doc: &Document,
    index: &NameIndex,
    ctxs: &[u32],
    name: NameId,
    or_self: bool,
    out: &mut Vec<u32>,
) {
    let list = index.elements(name);
    if list.is_empty() {
        return;
    }
    // Rank strictly below every real context; doubles as "nothing covered yet".
    let mut covered_end: Option<u32> = None;
    for &ctx in ctxs {
        if covered_end.is_some_and(|end| ctx <= end) {
            continue; // inside a previous context's subtree: already emitted
        }
        let end = doc.subtree_end(ctx);
        let lo = if or_self { ctx } else { ctx + 1 };
        out.extend_from_slice(rank_range(list, lo, end));
        covered_end = Some(end);
    }
}

/// Indexed `child::n`: interval lookup plus a parent-rank filter. Output
/// order is per-context; with nested contexts it may interleave, so the
/// caller is responsible for any final document-order sort.
pub fn children_named(
    doc: &Document,
    index: &NameIndex,
    ctxs: &[u32],
    name: NameId,
    out: &mut Vec<u32>,
) {
    let list = index.elements(name);
    if list.is_empty() {
        return;
    }
    for &ctx in ctxs {
        let end = doc.subtree_end(ctx);
        if end <= ctx {
            continue; // leaf / attribute context: no children
        }
        for &r in rank_range(list, ctx + 1, end) {
            if doc.parent(r) == Some(ctx) {
                out.push(r);
            }
        }
    }
}

/// Indexed `attribute::n` over the attribute name list. Same contract as
/// [`children_named`] regarding output order.
pub fn attributes_named(
    doc: &Document,
    index: &NameIndex,
    ctxs: &[u32],
    name: NameId,
    out: &mut Vec<u32>,
) {
    let list = index.attributes(name);
    if list.is_empty() {
        return;
    }
    for &ctx in ctxs {
        let end = doc.subtree_end(ctx);
        if end <= ctx {
            continue;
        }
        // The interval also contains attributes of *descendant* elements;
        // the parent filter keeps only the context's own attribute block.
        for &r in rank_range(list, ctx + 1, end) {
            if doc.parent(r) == Some(ctx) {
                out.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::{axis_nodes, node_test_matches, Axis, NodeTest};
    use crate::store::{build_into, DocId, Store};

    /// <a><b id="1"><c/><b x="2"><c/></b></b><c/></a>
    /// 0=doc 1=a 2=b 3=@id 4=c 5=b 6=@x 7=c 8=c
    fn sample(store: &mut Store) -> DocId {
        build_into(store, Some("ix.xml"), |b| {
            b.start_element("a");
            b.start_element("b");
            b.attribute("id", "1");
            b.start_element("c");
            b.end_element();
            b.start_element("b");
            b.attribute("x", "2");
            b.start_element("c");
            b.end_element();
            b.end_element();
            b.end_element();
            b.start_element("c");
            b.end_element();
            b.end_element();
        })
    }

    fn scan(doc: &Document, ctxs: &[u32], axis: Axis, name: NameId) -> Vec<u32> {
        let mut out = Vec::new();
        for &ctx in ctxs {
            let mut reached = Vec::new();
            axis_nodes(doc, ctx, axis, &mut reached);
            out.extend(
                reached
                    .into_iter()
                    .filter(|&r| node_test_matches(doc, r, axis, &NodeTest::Name(name))),
            );
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn build_lists_are_sorted_per_name() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let ix = NameIndex::build(s.doc(d));
        let b = s.names.get("b").unwrap();
        let c = s.names.get("c").unwrap();
        let id = s.names.get("id").unwrap();
        assert_eq!(ix.elements(b), &[2, 5]);
        assert_eq!(ix.elements(c), &[4, 7, 8]);
        assert_eq!(ix.attributes(id), &[3]);
        assert_eq!(ix.elements(id), &[] as &[u32], "attribute names don't leak into elements");
    }

    #[test]
    fn descendants_match_scan_and_prune_nested_contexts() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        let ix = NameIndex::build(doc);
        let c = s.names.get("c").unwrap();
        // contexts 1 and 2: 2 is inside 1's subtree, so the staircase must
        // prune it — and still produce exactly the scan's dedup'd union.
        let mut out = Vec::new();
        descendants_named(doc, &ix, &[1, 2], c, false, &mut out);
        assert_eq!(out, scan(doc, &[1, 2], Axis::Descendant, c));
        assert_eq!(out, vec![4, 7, 8]);
    }

    #[test]
    fn descendant_or_self_includes_matching_context() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        let ix = NameIndex::build(doc);
        let b = s.names.get("b").unwrap();
        let mut out = Vec::new();
        descendants_named(doc, &ix, &[2], b, true, &mut out);
        assert_eq!(out, scan(doc, &[2], Axis::DescendantOrSelf, b));
        assert_eq!(out, vec![2, 5]);
    }

    #[test]
    fn children_filter_by_parent() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        let ix = NameIndex::build(doc);
        let c = s.names.get("c").unwrap();
        let mut out = Vec::new();
        children_named(doc, &ix, &[2], c, &mut out);
        // only the direct child <c/> (rank 4), not the grandchild at rank 7
        assert_eq!(out, vec![4]);
        assert_eq!(out, scan(doc, &[2], Axis::Child, c));
    }

    #[test]
    fn attributes_exclude_descendant_attribute_blocks() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        let ix = NameIndex::build(doc);
        let x = s.names.get("x").unwrap();
        let mut out = Vec::new();
        attributes_named(doc, &ix, &[2], x, &mut out);
        assert_eq!(out, Vec::<u32>::new(), "@x belongs to the nested b, not ctx 2");
        out.clear();
        attributes_named(doc, &ix, &[5], x, &mut out);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn leaf_and_attribute_contexts_yield_nothing() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        let ix = NameIndex::build(doc);
        let c = s.names.get("c").unwrap();
        let mut out = Vec::new();
        descendants_named(doc, &ix, &[3, 4], c, false, &mut out);
        assert_eq!(out, Vec::<u32>::new());
        children_named(doc, &ix, &[3, 4], c, &mut out);
        assert_eq!(out, Vec::<u32>::new());
    }

    #[test]
    fn store_caches_index_lazily() {
        let mut s = Store::new();
        let d = sample(&mut s);
        assert!(s.doc(d).name_index().is_none());
        s.ensure_name_index(d);
        assert!(s.doc(d).name_index().is_some());
        let first = s.doc(d).name_index().unwrap() as *const NameIndex;
        s.ensure_name_index(d);
        let second = s.doc(d).name_index().unwrap() as *const NameIndex;
        assert_eq!(first, second, "second ensure must be a no-op");
    }
}
