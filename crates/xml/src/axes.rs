//! The twelve XPath axes over the preorder arena.
//!
//! Axis results are always produced in **document order** (reverse axes
//! included); the evaluator layers XPath's reverse-axis ordering semantics on
//! top where needed. Attributes appear only on the `attribute` axis (plus
//! `self`/`parent`/`ancestor*` when the context node is itself an attribute),
//! matching XDM — note the paper's footnote 2 relies on
//! `descendant::node()` *not* returning attributes.

use crate::name::NameId;
use crate::store::{Document, NodeKind};

/// Axis identifiers, one per grammar alternative of XCore rules 22–24.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Parent,
    Ancestor,
    AncestorOrSelf,
    SelfAxis,
    Attribute,
    Following,
    FollowingSibling,
    Preceding,
    PrecedingSibling,
}

impl Axis {
    /// Reverse axes per XCore rule 22 (`RevAxis`).
    pub fn is_reverse(self) -> bool {
        matches!(self, Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf)
    }

    /// Horizontal axes per XCore rule 24 (`HorAxis`).
    pub fn is_horizontal(self) -> bool {
        matches!(
            self,
            Axis::Following | Axis::FollowingSibling | Axis::Preceding | Axis::PrecedingSibling
        )
    }

    /// Forward (downward or self) axes per XCore rule 23 (`FwdAxis`).
    pub fn is_downward(self) -> bool {
        matches!(
            self,
            Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::SelfAxis | Axis::Attribute
        )
    }

    /// The "non-overlapping kind" of axis singled out by by-value insertion
    /// condition iii: parent, preceding-sibling, following-sibling, self,
    /// child, attribute.
    pub fn is_non_overlapping(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::PrecedingSibling
                | Axis::FollowingSibling
                | Axis::SelfAxis
                | Axis::Child
                | Axis::Attribute
        )
    }

    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
            Axis::Following => "following",
            Axis::FollowingSibling => "following-sibling",
            Axis::Preceding => "preceding",
            Axis::PrecedingSibling => "preceding-sibling",
        }
    }

    pub fn from_name(s: &str) -> Option<Axis> {
        Some(match s {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "self" => Axis::SelfAxis,
            "attribute" => Axis::Attribute,
            "following" => Axis::Following,
            "following-sibling" => Axis::FollowingSibling,
            "preceding" => Axis::Preceding,
            "preceding-sibling" => Axis::PrecedingSibling,
            _ => return None,
        })
    }
}

/// Node test with the name already resolved to a `NameId` (or not present in
/// the store, in which case nothing can match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTest {
    /// `QName` — matches the principal node kind with this name.
    Name(NameId),
    /// A QName that is not interned in the target store: matches nothing.
    UnknownName,
    /// `*`
    Wildcard,
    /// `node()`
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
}

/// Appends the nodes reachable from `idx` via `axis`, in document order.
pub fn axis_nodes(doc: &Document, idx: u32, axis: Axis, out: &mut Vec<u32>) {
    match axis {
        Axis::SelfAxis => out.push(idx),
        Axis::Child => out.extend(doc.children(idx)),
        Axis::Attribute => out.extend(doc.attributes(idx)),
        Axis::Descendant | Axis::DescendantOrSelf => {
            if axis == Axis::DescendantOrSelf {
                out.push(idx);
            }
            let end = doc.subtree_end(idx);
            let mut i = idx + 1;
            while i <= end {
                if doc.kind(i) == NodeKind::Attribute {
                    i += 1;
                    continue;
                }
                out.push(i);
                i += 1;
            }
        }
        Axis::Parent => {
            if let Some(p) = doc.parent(idx) {
                out.push(p);
            }
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            let start = out.len();
            if axis == Axis::AncestorOrSelf {
                out.push(idx);
            }
            let mut cur = doc.parent(idx);
            while let Some(p) = cur {
                out.push(p);
                cur = doc.parent(p);
            }
            out[start..].reverse(); // document order: root first
        }
        Axis::FollowingSibling => {
            let mut cur = doc.next_sibling(idx);
            while let Some(s) = cur {
                out.push(s);
                cur = doc.next_sibling(s);
            }
        }
        Axis::PrecedingSibling => {
            if let Some(parent) = doc.parent(idx) {
                if doc.kind(idx) != NodeKind::Attribute {
                    for c in doc.children(parent) {
                        if c == idx {
                            break;
                        }
                        out.push(c);
                    }
                }
            }
        }
        Axis::Following => {
            // Everything after this subtree, minus attributes. For an
            // attribute context node, following starts after the owner
            // element's attribute block but includes the element's subtree
            // content? XDM: following of an attribute is the following of its
            // parent element plus that element's descendants... we use the
            // common simplification: following(attr) = following nodes in
            // document order after the attribute, excluding its parent's
            // attributes and excluding descendants-of-parent is NOT applied —
            // attributes follow their element, so descendants of the owner
            // element *do* come after the attribute and are included.
            let start = if doc.kind(idx) == NodeKind::Attribute {
                idx + 1
            } else {
                doc.subtree_end(idx) + 1
            };
            for i in start..doc.len() as u32 {
                if doc.kind(i) != NodeKind::Attribute {
                    out.push(i);
                }
            }
        }
        Axis::Preceding => {
            // Everything before the node, excluding ancestors and attributes.
            for i in 0..idx {
                if doc.kind(i) == NodeKind::Attribute || doc.kind(i) == NodeKind::Document {
                    continue;
                }
                if doc.is_ancestor(i, idx) {
                    continue;
                }
                out.push(i);
            }
        }
    }
}

/// Does node `idx` match `test`, given the axis it was reached through?
/// The principal node kind is Attribute for the attribute axis, Element
/// otherwise (XPath 2.0 §3.2.1.1).
pub fn node_test_matches(doc: &Document, idx: u32, axis: Axis, test: &NodeTest) -> bool {
    let kind = doc.kind(idx);
    match test {
        NodeTest::AnyKind => true,
        NodeTest::Text => kind == NodeKind::Text,
        NodeTest::Comment => kind == NodeKind::Comment,
        NodeTest::UnknownName => false,
        NodeTest::Wildcard | NodeTest::Name(_) => {
            let principal = if axis == Axis::Attribute {
                NodeKind::Attribute
            } else {
                NodeKind::Element
            };
            if kind != principal {
                return false;
            }
            match test {
                NodeTest::Wildcard => true,
                NodeTest::Name(n) => doc.name(idx) == *n,
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{build_into, Store};

    /// <a><b id="1"><c/><e>t</e></b><d/></a>
    /// 0=doc 1=a 2=b 3=@id 4=c 5=e 6=text 7=d
    fn sample(store: &mut Store) -> crate::store::DocId {
        build_into(store, Some("s.xml"), |b| {
            b.start_element("a");
            b.start_element("b");
            b.attribute("id", "1");
            b.start_element("c");
            b.end_element();
            b.start_element("e");
            b.text("t");
            b.end_element();
            b.end_element();
            b.start_element("d");
            b.end_element();
            b.end_element();
        })
    }

    fn nodes(doc: &Document, idx: u32, axis: Axis) -> Vec<u32> {
        let mut v = Vec::new();
        axis_nodes(doc, idx, axis, &mut v);
        v
    }

    #[test]
    fn descendant_skips_attributes() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        assert_eq!(nodes(doc, 1, Axis::Descendant), vec![2, 4, 5, 6, 7]);
        assert_eq!(nodes(doc, 1, Axis::DescendantOrSelf), vec![1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn ancestor_in_document_order() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        assert_eq!(nodes(doc, 6, Axis::Ancestor), vec![0, 1, 2, 5]);
        assert_eq!(nodes(doc, 6, Axis::AncestorOrSelf), vec![0, 1, 2, 5, 6]);
        assert_eq!(nodes(doc, 3, Axis::Parent), vec![2]);
    }

    #[test]
    fn sibling_axes() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        assert_eq!(nodes(doc, 2, Axis::FollowingSibling), vec![7]);
        assert_eq!(nodes(doc, 7, Axis::PrecedingSibling), vec![2]);
        assert_eq!(nodes(doc, 4, Axis::FollowingSibling), vec![5]);
        assert_eq!(nodes(doc, 5, Axis::PrecedingSibling), vec![4]);
        assert_eq!(nodes(doc, 3, Axis::FollowingSibling), Vec::<u32>::new());
    }

    #[test]
    fn following_and_preceding() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        assert_eq!(nodes(doc, 4, Axis::Following), vec![5, 6, 7]);
        assert_eq!(nodes(doc, 7, Axis::Preceding), vec![2, 4, 5, 6]);
        // ancestors excluded from preceding
        assert!(!nodes(doc, 6, Axis::Preceding).contains(&2));
        assert_eq!(nodes(doc, 6, Axis::Preceding), vec![4]);
    }

    #[test]
    fn attribute_axis_and_principal_kind() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        assert_eq!(nodes(doc, 2, Axis::Attribute), vec![3]);
        let id = s.names.get("id").unwrap();
        assert!(node_test_matches(doc, 3, Axis::Attribute, &NodeTest::Name(id)));
        // name test on child axis never matches an attribute
        assert!(!node_test_matches(doc, 3, Axis::Child, &NodeTest::Name(id)));
        assert!(node_test_matches(doc, 3, Axis::Attribute, &NodeTest::Wildcard));
    }

    #[test]
    fn text_and_kind_tests() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        assert!(node_test_matches(doc, 6, Axis::Child, &NodeTest::Text));
        assert!(node_test_matches(doc, 6, Axis::Child, &NodeTest::AnyKind));
        assert!(!node_test_matches(doc, 6, Axis::Child, &NodeTest::Wildcard));
        assert!(!node_test_matches(doc, 4, Axis::Child, &NodeTest::Text));
    }

    #[test]
    fn axis_classification_matches_paper() {
        assert!(Axis::Parent.is_reverse());
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::Following.is_horizontal());
        assert!(Axis::PrecedingSibling.is_horizontal());
        assert!(Axis::Child.is_downward());
        assert!(Axis::Attribute.is_downward());
        // condition iii whitelist
        for ax in [
            Axis::Parent,
            Axis::PrecedingSibling,
            Axis::FollowingSibling,
            Axis::SelfAxis,
            Axis::Child,
            Axis::Attribute,
        ] {
            assert!(ax.is_non_overlapping(), "{ax:?}");
        }
        assert!(!Axis::Descendant.is_non_overlapping());
        assert!(!Axis::Following.is_non_overlapping());
    }

    #[test]
    fn unknown_name_matches_nothing() {
        let mut s = Store::new();
        let d = sample(&mut s);
        let doc = s.doc(d);
        assert!(!node_test_matches(doc, 4, Axis::Child, &NodeTest::UnknownName));
    }
}
