//! XML parser ("shredder" in the paper's vocabulary).
//!
//! A hand-written, non-validating parser covering what the distributed
//! XQuery pipeline needs: elements, attributes, text, comments, processing
//! instructions, CDATA sections, the five predefined entities and numeric
//! character references. Namespace declarations are kept as plain
//! attributes; QNames are stored verbatim (prefix included).

use std::fmt;

use crate::store::{DocBuilder, DocId, Store};

/// Parse failure with byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: msg.into() })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    fn read_until(&mut self, marker: &str) -> Result<&'a str, ParseError> {
        let rest = &self.input[self.pos..];
        match rest.windows(marker.len()).position(|w| w == marker.as_bytes()) {
            Some(i) => {
                let s = std::str::from_utf8(&rest[..i])
                    .map_err(|_| ParseError { offset: self.pos, message: "invalid UTF-8".into() })?;
                self.pos += i + marker.len();
                Ok(s)
            }
            None => self.err(format!("unterminated section, expected {marker:?}")),
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => self.pos += 1,
            _ => return self.err("expected name"),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| ParseError { offset: start, message: "invalid UTF-8 in name".into() })
    }

    /// Decodes entity and character references in `raw` into `out`.
    fn decode_text(&self, raw: &str, raw_offset: usize, out: &mut String) -> Result<(), ParseError> {
        let bytes = raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'&' {
                let rest = &raw[i..];
                let semi = rest.find(';').ok_or(ParseError {
                    offset: raw_offset + i,
                    message: "unterminated entity reference".into(),
                })?;
                let ent = &rest[1..semi];
                match ent {
                    "amp" => out.push('&'),
                    "lt" => out.push('<'),
                    "gt" => out.push('>'),
                    "quot" => out.push('"'),
                    "apos" => out.push('\''),
                    _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                        let cp = u32::from_str_radix(&ent[2..], 16).ok().and_then(char::from_u32);
                        out.push(cp.ok_or(ParseError {
                            offset: raw_offset + i,
                            message: format!("bad character reference &{ent};"),
                        })?);
                    }
                    _ if ent.starts_with('#') => {
                        let cp = ent[1..].parse::<u32>().ok().and_then(char::from_u32);
                        out.push(cp.ok_or(ParseError {
                            offset: raw_offset + i,
                            message: format!("bad character reference &{ent};"),
                        })?);
                    }
                    _ => {
                        return Err(ParseError {
                            offset: raw_offset + i,
                            message: format!("unknown entity &{ent};"),
                        })
                    }
                }
                i += semi + 1;
            } else {
                // copy a full UTF-8 scalar
                let ch_len = utf8_len(bytes[i]);
                out.push_str(&raw[i..i + ch_len]);
                i += ch_len;
            }
        }
        Ok(())
    }

    fn parse_misc(&mut self, b: &mut DocBuilder) -> Result<bool, ParseError> {
        if self.starts_with("<!--") {
            self.bump(4);
            let body = self.read_until("-->")?;
            b.comment(body);
            Ok(true)
        } else if self.starts_with("<?") {
            self.bump(2);
            let target = self.read_name()?;
            self.skip_ws();
            let body = self.read_until("?>")?;
            if !target.eq_ignore_ascii_case("xml") {
                b.pi(target, body.trim_end());
            }
            Ok(true)
        } else if self.starts_with("<!DOCTYPE") {
            // Skip a (non-subset) doctype declaration.
            self.bump(9);
            let mut depth = 0usize;
            loop {
                match self.peek() {
                    Some(b'<') => depth += 1,
                    Some(b'>') => {
                        if depth == 0 {
                            self.bump(1);
                            break;
                        }
                        depth -= 1;
                    }
                    None => return self.err("unterminated DOCTYPE"),
                    _ => {}
                }
                self.bump(1);
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_element(&mut self, b: &mut DocBuilder) -> Result<(), ParseError> {
        self.expect("<")?;
        let name = self.read_name()?;
        b.start_element(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    b.end_element();
                    return Ok(());
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let attr_name = self.read_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return self.err("expected quoted attribute value"),
                    };
                    self.bump(1);
                    let raw_start = self.pos;
                    let raw = self.read_until(if quote == b'"' { "\"" } else { "'" })?;
                    let mut value = String::with_capacity(raw.len());
                    self.decode_text(raw, raw_start, &mut value)?;
                    b.attribute(attr_name, &value);
                }
                None => return self.err("unterminated start tag"),
            }
        }
        // content
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return self.err(format!("unterminated element <{name}>")),
                Some(b'<') => {
                    if self.starts_with("<![CDATA[") {
                        self.bump(9);
                        let body = self.read_until("]]>")?;
                        text.push_str(body);
                        continue;
                    }
                    if !text.is_empty() {
                        b.text(&text);
                        text.clear();
                    }
                    if self.starts_with("</") {
                        self.bump(2);
                        let close = self.read_name()?;
                        if close != name {
                            return self.err(format!("mismatched close tag </{close}>, open <{name}>"));
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        b.end_element();
                        return Ok(());
                    }
                    if self.parse_misc(b)? {
                        continue;
                    }
                    self.parse_element(b)?;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.peek(), Some(b'<') | None) {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| {
                        ParseError { offset: start, message: "invalid UTF-8 in text".into() }
                    })?;
                    self.decode_text(raw, start, &mut text)?;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses `input` into a [`DocBuilder`] (not yet attached to a store).
pub fn parse_to_builder(input: &str, uri: Option<&str>) -> Result<DocBuilder, ParseError> {
    let mut p = Parser { input: input.as_bytes(), pos: 0 };
    let mut b = DocBuilder::new(uri);
    p.skip_ws();
    // prolog + misc
    loop {
        if p.starts_with("<?xml") {
            p.bump(5);
            p.read_until("?>")?;
            p.skip_ws();
            continue;
        }
        if p.parse_misc(&mut b)? {
            p.skip_ws();
            continue;
        }
        break;
    }
    if p.peek() != Some(b'<') {
        return p.err("expected root element");
    }
    p.parse_element(&mut b)?;
    p.skip_ws();
    while p.pos < p.input.len() {
        if !p.parse_misc(&mut b)? {
            return p.err("trailing content after root element");
        }
        p.skip_ws();
    }
    Ok(b.finish())
}

/// Parses `input` and attaches the document to `store` under `uri`.
pub fn parse_document(store: &mut Store, input: &str, uri: Option<&str>) -> Result<DocId, ParseError> {
    let b = parse_to_builder(input, uri)?;
    Ok(store.attach(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{NodeId, NodeKind};

    #[test]
    fn simple_document() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a><b x='1'>hi</b><c/></a>", Some("t.xml")).unwrap();
        let doc = s.doc(d);
        assert_eq!(doc.len(), 6); // doc, a, b, @x, text, c
        assert_eq!(doc.string_value(0), "hi");
        let a = s.node(NodeId::new(d, 1));
        assert_eq!(a.name(), "a");
        let b = a.child_element("b").unwrap();
        assert_eq!(b.attribute("x"), Some("1"));
    }

    #[test]
    fn entities_decoded() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a t='&lt;&amp;&#65;'>x &gt; y &#x41;</a>", None).unwrap();
        let doc = s.doc(d);
        let root = s.node(NodeId::new(d, 1));
        assert_eq!(root.attribute("t"), Some("<&A"));
        assert_eq!(doc.string_value(1), "x > y A");
    }

    #[test]
    fn prolog_comments_pis_cdata() {
        let mut s = Store::new();
        let input = "<?xml version=\"1.0\"?><!-- top --><a><?app do it?><![CDATA[<raw>]]></a><!-- tail -->";
        let d = parse_document(&mut s, input, None).unwrap();
        let doc = s.doc(d);
        assert_eq!(doc.string_value(1 + 1), "<raw>"); // comment shifts root to idx 2
        let kinds: Vec<NodeKind> = (0..doc.len() as u32).map(|i| doc.kind(i)).collect();
        assert!(kinds.contains(&NodeKind::Comment));
        assert!(kinds.contains(&NodeKind::Pi));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let mut s = Store::new();
        assert!(parse_document(&mut s, "<a><b></a></b>", None).is_err());
        assert!(parse_document(&mut s, "<a>", None).is_err());
        assert!(parse_document(&mut s, "text", None).is_err());
        assert!(parse_document(&mut s, "<a/><b/>", None).is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        let mut s = Store::new();
        assert!(parse_document(&mut s, "<a>&nbsp;</a>", None).is_err());
    }

    #[test]
    fn doctype_skipped() {
        let mut s = Store::new();
        let d =
            parse_document(&mut s, "<!DOCTYPE site SYSTEM \"x.dtd\"><site>ok</site>", None).unwrap();
        assert_eq!(s.doc(d).string_value(0), "ok");
    }

    #[test]
    fn whitespace_text_preserved_inside_elements() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a> <b/> </a>", None).unwrap();
        // two whitespace text nodes around <b/>
        let doc = s.doc(d);
        assert_eq!(doc.string_value(1), "  ");
        assert_eq!(doc.len(), 5);
    }

    #[test]
    fn utf8_content() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a name='møller'>grüße 你好</a>", None).unwrap();
        let doc = s.doc(d);
        assert_eq!(doc.string_value(1), "grüße 你好");
        assert_eq!(s.node(NodeId::new(d, 1)).attribute("name"), Some("møller"));
    }
}
