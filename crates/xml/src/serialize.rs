//! XML serializer.
//!
//! Produces compact (no indentation) XML so serialize ∘ parse is the
//! identity on our data model — the property the XRPC message roundtrip and
//! the property tests rely on. Byte counts from this serializer are the
//! bandwidth numbers reported in the Figure 7 / Figure 10 reproductions.

use crate::name::NameTable;
use crate::store::{Document, NodeKind};

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escapes attribute values (also `"`).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serializes the subtree rooted at `idx` into `out`.
///
/// Serializing the document node serializes its children in order; an
/// attribute node on its own serializes as `name="value"` (used only in
/// diagnostics — attributes inside elements are emitted by their element).
pub fn serialize_node_into(doc: &Document, names: &NameTable, idx: u32, out: &mut String) {
    match doc.kind(idx) {
        NodeKind::Document => {
            for c in doc.children(idx) {
                serialize_node_into(doc, names, c, out);
            }
        }
        NodeKind::Element => {
            let name = names.resolve(doc.name(idx));
            out.push('<');
            out.push_str(name);
            for a in doc.attributes(idx) {
                out.push(' ');
                out.push_str(names.resolve(doc.name(a)));
                out.push_str("=\"");
                escape_attr(doc.value(a).unwrap_or(""), out);
                out.push('"');
            }
            if doc.first_child(idx).is_none() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in doc.children(idx) {
                    serialize_node_into(doc, names, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
        NodeKind::Attribute => {
            out.push_str(names.resolve(doc.name(idx)));
            out.push_str("=\"");
            escape_attr(doc.value(idx).unwrap_or(""), out);
            out.push('"');
        }
        NodeKind::Text => escape_text(doc.value(idx).unwrap_or(""), out),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(doc.value(idx).unwrap_or(""));
            out.push_str("-->");
        }
        NodeKind::Pi => {
            out.push_str("<?");
            out.push_str(names.resolve(doc.name(idx)));
            let v = doc.value(idx).unwrap_or("");
            if !v.is_empty() {
                out.push(' ');
                out.push_str(v);
            }
            out.push_str("?>");
        }
    }
}

/// Serializes the subtree rooted at `idx` to a fresh string.
pub fn serialize_node(doc: &Document, names: &NameTable, idx: u32) -> String {
    let mut out = String::new();
    serialize_node_into(doc, names, idx, &mut out);
    out
}

/// Serializes a whole document (no XML declaration, compact form).
pub fn serialize_document(doc: &Document, names: &NameTable) -> String {
    serialize_node(doc, names, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::store::{build_into, Store};

    #[test]
    fn roundtrip_simple() {
        let mut s = Store::new();
        let input = "<a x=\"1\"><b>hi</b><c/>tail</a>";
        let d = parse_document(&mut s, input, None).unwrap();
        assert_eq!(serialize_document(s.doc(d), &s.names), input);
    }

    #[test]
    fn escaping() {
        let mut s = Store::new();
        let d = build_into(&mut s, None, |b| {
            b.start_element("a");
            b.attribute("q", "say \"<hi>\" & bye");
            b.text("1 < 2 & 3 > 2");
            b.end_element();
        });
        let out = serialize_document(s.doc(d), &s.names);
        assert_eq!(
            out,
            "<a q=\"say &quot;&lt;hi&gt;&quot; &amp; bye\">1 &lt; 2 &amp; 3 &gt; 2</a>"
        );
        // and it parses back to the same value
        let mut s2 = Store::new();
        let d2 = parse_document(&mut s2, &out, None).unwrap();
        assert_eq!(s2.doc(d2).string_value(0), "1 < 2 & 3 > 2");
    }

    #[test]
    fn empty_element_self_closes() {
        let mut s = Store::new();
        let d = build_into(&mut s, None, |b| {
            b.start_element("a");
            b.start_element("b");
            b.attribute("k", "v");
            b.end_element();
            b.end_element();
        });
        assert_eq!(serialize_document(s.doc(d), &s.names), "<a><b k=\"v\"/></a>");
    }

    #[test]
    fn comment_and_pi() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a><!--note--><?app run?></a>", None).unwrap();
        assert_eq!(serialize_document(s.doc(d), &s.names), "<a><!--note--><?app run?></a>");
    }

    #[test]
    fn subtree_serialization() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a><b i=\"1\"><c/></b></a>", None).unwrap();
        // node 2 is <b>
        assert_eq!(serialize_node(s.doc(d), &s.names, 2), "<b i=\"1\"><c/></b>");
    }
}
