//! Arena document store.
//!
//! Nodes are stored in **preorder**: a node's arena index is its preorder
//! rank, and every node records the rank of its last descendant
//! (`subtree_end`). This is the pre/size encoding used by MonetDB/XQuery's
//! relational XML storage, and it gives the O(1) structural primitives that
//! both the XQuery evaluator and the runtime projection Algorithm 1 assume:
//!
//! * document order  = integer comparison of preorder ranks,
//! * `a` is ancestor of `d`  ⇔  `a.idx < d.idx && d.idx <= a.subtree_end`,
//! * "skip the subtree of `cur`"  =  jump to `cur.subtree_end + 1`.
//!
//! Attribute nodes are stored contiguously right after their owner element
//! (matching the XDM document-order rule "attributes follow their element and
//! precede its children"); the child/descendant axes skip them.

use std::collections::HashMap;

use crate::index::NameIndex;
use crate::name::{NameId, NameTable};

/// Identifier of a document within a [`Store`].
///
/// Document ids are assigned in load order; document order *across*
/// documents follows `DocId` order (stable and implementation-defined, as
/// XQuery permits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Global node identity: document plus preorder rank.
///
/// Equality of `NodeId`s *is* XQuery node identity (the `is` operator);
/// the derived ordering *is* document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    pub doc: DocId,
    pub idx: u32,
}

impl NodeId {
    pub fn new(doc: DocId, idx: u32) -> Self {
        NodeId { doc, idx }
    }
}

/// The seven XDM node kinds we model (namespace nodes are out of scope,
/// as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    Document,
    Element,
    Attribute,
    Text,
    Comment,
    Pi,
}

const NO_PARENT: u32 = u32::MAX;

/// One arena slot. 24 bytes of fixed fields plus an optional text payload.
#[derive(Debug, Clone)]
pub(crate) struct NodeRecord {
    pub kind: NodeKind,
    pub name: NameId,
    pub parent: u32,
    /// Preorder rank of the last node in this node's subtree (inclusive).
    /// Leaves (and attributes) have `subtree_end == own index`.
    pub subtree_end: u32,
    /// Text content for text/comment/PI nodes and attribute values.
    pub value: Option<Box<str>>,
}

/// Extra per-node metadata attached by XRPC when a fragment is shredded from
/// a message: the paper's "Class 2" context properties (Problem 5), carried
/// as `xrpc:base-uri` / `xrpc:document-uri` attributes on the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeMeta {
    pub base_uri: Option<String>,
    pub document_uri: Option<String>,
}

/// A single XML document (or constructed / shipped fragment).
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) nodes: Vec<NodeRecord>,
    /// `fn:document-uri` of the document; `None` for constructed fragments.
    pub uri: Option<String>,
    /// Static base URI; defaults to `uri`.
    pub base_uri: Option<String>,
    /// Map from ID attribute value to the *element* owning the attribute.
    pub(crate) id_map: HashMap<Box<str>, u32>,
    /// XRPC shipped-node metadata overrides, keyed by node index.
    pub meta: HashMap<u32, NodeMeta>,
    /// Lazily built name index (see [`crate::index`]); `None` until the
    /// first indexed axis step touches this document.
    pub(crate) name_index: Option<NameIndex>,
}

impl Document {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn kind(&self, idx: u32) -> NodeKind {
        self.nodes[idx as usize].kind
    }

    pub fn name(&self, idx: u32) -> NameId {
        self.nodes[idx as usize].name
    }

    pub fn value(&self, idx: u32) -> Option<&str> {
        self.nodes[idx as usize].value.as_deref()
    }

    pub fn parent(&self, idx: u32) -> Option<u32> {
        let p = self.nodes[idx as usize].parent;
        (p != NO_PARENT).then_some(p)
    }

    pub fn subtree_end(&self, idx: u32) -> u32 {
        self.nodes[idx as usize].subtree_end
    }

    /// O(1) ancestor test: is `anc` a proper ancestor of `desc`?
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        anc < desc && desc <= self.subtree_end(anc)
    }

    /// First *attribute* of an element, if any.
    pub fn first_attribute(&self, idx: u32) -> Option<u32> {
        let next = idx + 1;
        if (next as usize) < self.nodes.len()
            && self.nodes[next as usize].parent == idx
            && self.nodes[next as usize].kind == NodeKind::Attribute
        {
            Some(next)
        } else {
            None
        }
    }

    /// Iterates the attributes of `idx` (empty for non-elements).
    pub fn attributes(&self, idx: u32) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.first_attribute(idx);
        std::iter::from_fn(move || {
            let a = cur?;
            let next = a + 1;
            cur = if (next as usize) < self.nodes.len()
                && self.nodes[next as usize].parent == idx
                && self.nodes[next as usize].kind == NodeKind::Attribute
            {
                Some(next)
            } else {
                None
            };
            Some(a)
        })
    }

    /// First non-attribute child.
    pub fn first_child(&self, idx: u32) -> Option<u32> {
        let mut c = idx + 1;
        let end = self.subtree_end(idx);
        while c <= end {
            let rec = &self.nodes[c as usize];
            if rec.kind == NodeKind::Attribute {
                c = rec.subtree_end + 1;
            } else {
                return Some(c);
            }
        }
        None
    }

    /// Next sibling on the child axis (skips nothing: attributes are never
    /// siblings of children because their parent is the element itself).
    pub fn next_sibling(&self, idx: u32) -> Option<u32> {
        let rec = &self.nodes[idx as usize];
        if rec.kind == NodeKind::Attribute || rec.parent == NO_PARENT {
            return None;
        }
        let next = rec.subtree_end + 1;
        if (next as usize) < self.nodes.len() && self.nodes[next as usize].parent == rec.parent {
            Some(next)
        } else {
            None
        }
    }

    /// Previous sibling on the child axis. O(children) via forward scan.
    pub fn prev_sibling(&self, idx: u32) -> Option<u32> {
        let parent = self.parent(idx)?;
        if self.kind(idx) == NodeKind::Attribute {
            return None;
        }
        let mut prev = None;
        let mut c = self.first_child(parent);
        while let Some(ch) = c {
            if ch == idx {
                return prev;
            }
            prev = Some(ch);
            c = self.next_sibling(ch);
        }
        None
    }

    /// Iterates the non-attribute children of `idx`.
    pub fn children(&self, idx: u32) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.first_child(idx);
        std::iter::from_fn(move || {
            let c = cur?;
            cur = self.next_sibling(c);
            Some(c)
        })
    }

    /// Concatenated text content per the XDM `string-value` rules.
    pub fn string_value(&self, idx: u32) -> String {
        let rec = &self.nodes[idx as usize];
        match rec.kind {
            NodeKind::Text | NodeKind::Comment | NodeKind::Pi | NodeKind::Attribute => {
                rec.value.as_deref().unwrap_or("").to_string()
            }
            NodeKind::Document | NodeKind::Element => {
                let mut out = String::new();
                let end = rec.subtree_end;
                let mut i = idx + 1;
                while i <= end {
                    let r = &self.nodes[i as usize];
                    if r.kind == NodeKind::Text {
                        if let Some(v) = &r.value {
                            out.push_str(v);
                        }
                    }
                    if r.kind == NodeKind::Attribute {
                        // attributes do not contribute to element string value
                        i = r.subtree_end + 1;
                        continue;
                    }
                    i += 1;
                }
                out
            }
        }
    }

    /// Element owning an `id="…"` attribute with the given value, if any.
    pub fn element_by_id(&self, id: &str) -> Option<u32> {
        self.id_map.get(id).copied()
    }

    /// All elements owning an ID attribute (unordered).
    pub fn id_map_values(&self) -> Vec<u32> {
        self.id_map.values().copied().collect()
    }

    /// All (element, idref-value) pairs, used by `fn:idref`.
    pub fn idref_attributes<'a>(
        &'a self,
        names: &'a NameTable,
    ) -> impl Iterator<Item = (u32, &'a str)> + 'a {
        let idref = names.get("idref");
        self.nodes.iter().enumerate().filter_map(move |(i, rec)| {
            if rec.kind == NodeKind::Attribute && Some(rec.name) == idref {
                Some((i as u32, rec.value.as_deref().unwrap_or("")))
            } else {
                None
            }
        })
    }

    /// Serialized size heuristic used by tests; real byte counts come from
    /// the serializer.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The cached name index, if [`Store::ensure_name_index`] has run.
    pub fn name_index(&self) -> Option<&NameIndex> {
        self.name_index.as_ref()
    }
}

/// The document store of one peer: a shared name table plus the documents.
/// `Clone` produces an independent snapshot — used by the parallel Bulk-RPC
/// executor to give each worker a read-only copy with identical node ranks.
#[derive(Debug, Clone)]
pub struct Store {
    pub names: NameTable,
    docs: Vec<Document>,
    by_uri: HashMap<String, DocId>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    pub fn new() -> Self {
        Store { names: NameTable::new(), docs: Vec::new(), by_uri: HashMap::new() }
    }

    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.0 as usize]
    }

    pub fn doc_mut(&mut self, id: DocId) -> &mut Document {
        &mut self.docs[id.0 as usize]
    }

    pub fn doc_by_uri(&self, uri: &str) -> Option<DocId> {
        self.by_uri.get(uri).copied()
    }

    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    pub fn docs(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs.iter().enumerate().map(|(i, d)| (DocId(i as u32), d))
    }

    /// Attaches a finished builder, interning its local names into the
    /// store-wide table. Returns the new document's id.
    pub fn attach(&mut self, builder: DocBuilder) -> DocId {
        let DocBuilder { mut nodes, local_names, uri, base_uri, open, .. } = builder;
        assert!(open.len() <= 1, "attach() called with unclosed elements");
        // Remap local name ids to store-wide ids.
        let remap: Vec<NameId> =
            (0..local_names.len()).map(|i| self.names.intern(local_names.resolve(NameId(i as u32)))).collect();
        for rec in &mut nodes {
            rec.name = remap[rec.name.0 as usize];
        }
        // Build the ID map (attributes literally named "id", as the paper's
        // fn:id() treatment scans ID-typed attributes by name).
        let id_name = self.names.get("id");
        let mut id_map = HashMap::new();
        if let Some(id_name) = id_name {
            for rec in &nodes {
                if rec.kind == NodeKind::Attribute && rec.name == id_name {
                    if let Some(v) = &rec.value {
                        id_map.entry(v.clone()).or_insert(rec.parent);
                    }
                }
            }
        }
        let doc =
            Document { nodes, uri: uri.clone(), base_uri, id_map, meta: HashMap::new(), name_index: None };
        let id = DocId(self.docs.len() as u32);
        self.docs.push(doc);
        if let Some(u) = uri {
            self.by_uri.insert(u, id);
        }
        id
    }

    /// Builds and caches the document's name index if absent. Documents are
    /// immutable after [`Store::attach`], so a built index stays valid for
    /// the document's lifetime.
    pub fn ensure_name_index(&mut self, id: DocId) {
        let i = id.0 as usize;
        if self.docs[i].name_index.is_none() {
            let index = NameIndex::build(&self.docs[i]);
            self.docs[i].name_index = Some(index);
        }
    }

    /// Reference wrapper for ergonomic traversal.
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        NodeRef { store: self, id }
    }
}

/// A `(store, node)` pair with convenience accessors.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    pub store: &'a Store,
    pub id: NodeId,
}

impl<'a> NodeRef<'a> {
    pub fn doc(&self) -> &'a Document {
        self.store.doc(self.id.doc)
    }

    pub fn kind(&self) -> NodeKind {
        self.doc().kind(self.id.idx)
    }

    pub fn name(&self) -> &'a str {
        self.store.names.resolve(self.doc().name(self.id.idx))
    }

    pub fn name_id(&self) -> NameId {
        self.doc().name(self.id.idx)
    }

    pub fn parent(&self) -> Option<NodeRef<'a>> {
        self.doc().parent(self.id.idx).map(|p| NodeRef {
            store: self.store,
            id: NodeId::new(self.id.doc, p),
        })
    }

    pub fn string_value(&self) -> String {
        self.doc().string_value(self.id.idx)
    }

    pub fn children(&self) -> impl Iterator<Item = NodeRef<'a>> + 'a {
        let store = self.store;
        let doc = self.id.doc;
        self.doc().children(self.id.idx).map(move |c| NodeRef { store, id: NodeId::new(doc, c) })
    }

    pub fn attributes(&self) -> impl Iterator<Item = NodeRef<'a>> + 'a {
        let store = self.store;
        let doc = self.id.doc;
        self.doc().attributes(self.id.idx).map(move |c| NodeRef { store, id: NodeId::new(doc, c) })
    }

    /// Value of a named attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&'a str> {
        let name_id = self.store.names.get(name)?;
        let doc = self.doc();
        doc.attributes(self.id.idx)
            .find(|&a| doc.name(a) == name_id)
            .and_then(|a| doc.value(a))
    }

    /// First child element with the given name.
    pub fn child_element(&self, name: &str) -> Option<NodeRef<'a>> {
        let name_id = self.store.names.get(name)?;
        self.children().find(|c| c.kind() == NodeKind::Element && c.name_id() == name_id)
    }
}

/// Incremental preorder document builder.
///
/// Owns its data (including a *local* name interner), so it can be driven
/// while the target [`Store`] is still readable — required when deep-copying
/// subtrees from existing documents (element constructors, message
/// serialization).
#[derive(Debug)]
pub struct DocBuilder {
    nodes: Vec<NodeRecord>,
    local_names: NameTable,
    /// Stack of open element indices.
    open: Vec<u32>,
    uri: Option<String>,
    base_uri: Option<String>,
    /// True while attributes may still be added to the innermost element.
    attrs_open: bool,
}

impl DocBuilder {
    /// Starts a document. `uri == None` yields a constructed fragment.
    pub fn new(uri: Option<&str>) -> Self {
        let mut b = DocBuilder {
            nodes: Vec::new(),
            local_names: NameTable::new(),
            open: Vec::new(),
            uri: uri.map(str::to_string),
            base_uri: uri.map(str::to_string),
            attrs_open: false,
        };
        b.nodes.push(NodeRecord {
            kind: NodeKind::Document,
            name: NameId::NONE,
            parent: NO_PARENT,
            subtree_end: 0,
            value: None,
        });
        b.open.push(0);
        b
    }

    pub fn set_base_uri(&mut self, base: &str) {
        self.base_uri = Some(base.to_string());
    }

    fn push(&mut self, rec: NodeRecord) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(rec);
        idx
    }

    fn parent_idx(&self) -> u32 {
        *self.open.last().expect("builder has no open node")
    }

    /// Opens an element.
    pub fn start_element(&mut self, name: &str) -> u32 {
        let name = self.local_names.intern(name);
        let parent = self.parent_idx();
        let idx = self.push(NodeRecord {
            kind: NodeKind::Element,
            name,
            parent,
            subtree_end: 0,
            value: None,
        });
        self.open.push(idx);
        self.attrs_open = true;
        idx
    }

    /// Adds an attribute to the innermost open element. Must precede any
    /// child content, preserving the preorder attribute-block invariant.
    pub fn attribute(&mut self, name: &str, value: &str) -> u32 {
        assert!(
            self.attrs_open,
            "attribute() must be called before child content of the element"
        );
        let name = self.local_names.intern(name);
        let parent = self.parent_idx();
        let idx = self.push(NodeRecord {
            kind: NodeKind::Attribute,
            name,
            parent,
            subtree_end: 0,
            value: Some(value.into()),
        });
        self.nodes[idx as usize].subtree_end = idx;
        idx
    }

    /// Appends a text node (empty strings are dropped, per XDM).
    pub fn text(&mut self, value: &str) -> Option<u32> {
        if value.is_empty() {
            return None;
        }
        self.attrs_open = false;
        let parent = self.parent_idx();
        let idx = self.push(NodeRecord {
            kind: NodeKind::Text,
            name: NameId::NONE,
            parent,
            subtree_end: 0,
            value: Some(value.into()),
        });
        self.nodes[idx as usize].subtree_end = idx;
        Some(idx)
    }

    pub fn comment(&mut self, value: &str) -> u32 {
        self.attrs_open = false;
        let parent = self.parent_idx();
        let idx = self.push(NodeRecord {
            kind: NodeKind::Comment,
            name: NameId::NONE,
            parent,
            subtree_end: 0,
            value: Some(value.into()),
        });
        self.nodes[idx as usize].subtree_end = idx;
        idx
    }

    pub fn pi(&mut self, target: &str, value: &str) -> u32 {
        self.attrs_open = false;
        let name = self.local_names.intern(target);
        let parent = self.parent_idx();
        let idx = self.push(NodeRecord {
            kind: NodeKind::Pi,
            name,
            parent,
            subtree_end: 0,
            value: Some(value.into()),
        });
        self.nodes[idx as usize].subtree_end = idx;
        idx
    }

    /// Closes the innermost element, fixing its `subtree_end`.
    pub fn end_element(&mut self) {
        let idx = self.open.pop().expect("end_element without start_element");
        assert_ne!(idx, 0, "cannot close the document node");
        let end = (self.nodes.len() - 1) as u32;
        self.nodes[idx as usize].subtree_end = end;
        self.attrs_open = false;
    }

    /// Deep-copies the subtree rooted at `src_idx` of `src` (resolving names
    /// through `src_names`) as new content of the innermost open element.
    ///
    /// Copying a document node copies its children instead (XQuery content
    /// semantics). Attribute nodes are copied as attributes of the current
    /// element.
    pub fn copy_subtree(&mut self, src: &Document, src_names: &NameTable, src_idx: u32) {
        match src.kind(src_idx) {
            NodeKind::Document => {
                for c in src.children(src_idx) {
                    self.copy_subtree(src, src_names, c);
                }
            }
            NodeKind::Element => {
                self.start_element(src_names.resolve(src.name(src_idx)));
                for a in src.attributes(src_idx) {
                    self.attribute(
                        src_names.resolve(src.name(a)),
                        src.value(a).unwrap_or(""),
                    );
                }
                for c in src.children(src_idx) {
                    self.copy_subtree(src, src_names, c);
                }
                self.end_element();
            }
            NodeKind::Attribute => {
                self.attribute(
                    src_names.resolve(src.name(src_idx)),
                    src.value(src_idx).unwrap_or(""),
                );
            }
            NodeKind::Text => {
                self.text(src.value(src_idx).unwrap_or(""));
            }
            NodeKind::Comment => {
                self.comment(src.value(src_idx).unwrap_or(""));
            }
            NodeKind::Pi => {
                self.pi(src_names.resolve(src.name(src_idx)), src.value(src_idx).unwrap_or(""));
            }
        }
    }

    /// Finalizes the document-node `subtree_end`. Called by [`Store::attach`].
    pub fn finish(mut self) -> DocBuilder {
        assert_eq!(self.open.len(), 1, "unclosed elements at finish()");
        let end = (self.nodes.len() - 1) as u32;
        self.nodes[0].subtree_end = end;
        self
    }

    /// Number of nodes built so far (including the document node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// Convenience: build + attach in one call for tests and small fixtures.
pub fn build_into(store: &mut Store, uri: Option<&str>, f: impl FnOnce(&mut DocBuilder)) -> DocId {
    let mut b = DocBuilder::new(uri);
    f(&mut b);
    store.attach(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(store: &mut Store) -> DocId {
        // <a><b id="1"><c/>t</b><d/></a>
        build_into(store, Some("sample.xml"), |b| {
            b.start_element("a");
            b.start_element("b");
            b.attribute("id", "1");
            b.start_element("c");
            b.end_element();
            b.text("t");
            b.end_element();
            b.start_element("d");
            b.end_element();
            b.end_element();
        })
    }

    #[test]
    fn preorder_layout_and_subtree_end() {
        let mut store = Store::new();
        let d = sample(&mut store);
        let doc = store.doc(d);
        // 0=doc 1=a 2=b 3=@id 4=c 5=text 6=d
        assert_eq!(doc.len(), 7);
        assert_eq!(doc.kind(0), NodeKind::Document);
        assert_eq!(doc.kind(1), NodeKind::Element);
        assert_eq!(doc.kind(3), NodeKind::Attribute);
        assert_eq!(doc.subtree_end(0), 6);
        assert_eq!(doc.subtree_end(1), 6);
        assert_eq!(doc.subtree_end(2), 5);
        assert_eq!(doc.subtree_end(4), 4);
        assert_eq!(doc.subtree_end(6), 6);
    }

    #[test]
    fn ancestor_test_is_o1() {
        let mut store = Store::new();
        let d = sample(&mut store);
        let doc = store.doc(d);
        assert!(doc.is_ancestor(1, 4));
        assert!(doc.is_ancestor(2, 5));
        assert!(!doc.is_ancestor(4, 2));
        assert!(!doc.is_ancestor(2, 6));
        assert!(!doc.is_ancestor(2, 2), "not a *proper* ancestor of itself");
    }

    #[test]
    fn child_axis_skips_attributes() {
        let mut store = Store::new();
        let d = sample(&mut store);
        let doc = store.doc(d);
        let kids: Vec<u32> = doc.children(2).collect();
        assert_eq!(kids, vec![4, 5]); // c element and text, not @id
        let attrs: Vec<u32> = doc.attributes(2).collect();
        assert_eq!(attrs, vec![3]);
    }

    #[test]
    fn siblings() {
        let mut store = Store::new();
        let d = sample(&mut store);
        let doc = store.doc(d);
        assert_eq!(doc.next_sibling(2), Some(6));
        assert_eq!(doc.next_sibling(6), None);
        assert_eq!(doc.prev_sibling(6), Some(2));
        assert_eq!(doc.prev_sibling(2), None);
        assert_eq!(doc.next_sibling(4), Some(5));
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let mut store = Store::new();
        let d = sample(&mut store);
        let doc = store.doc(d);
        assert_eq!(doc.string_value(1), "t");
        assert_eq!(doc.string_value(2), "t");
        assert_eq!(doc.string_value(3), "1");
        assert_eq!(doc.string_value(4), "");
    }

    #[test]
    fn id_map_is_built_on_attach() {
        let mut store = Store::new();
        let d = sample(&mut store);
        let doc = store.doc(d);
        assert_eq!(doc.element_by_id("1"), Some(2));
        assert_eq!(doc.element_by_id("nope"), None);
    }

    #[test]
    fn uri_lookup() {
        let mut store = Store::new();
        let d = sample(&mut store);
        assert_eq!(store.doc_by_uri("sample.xml"), Some(d));
        assert_eq!(store.doc_by_uri("other.xml"), None);
    }

    #[test]
    fn node_ids_order_across_documents() {
        let mut store = Store::new();
        let d1 = sample(&mut store);
        let d2 = sample(&mut store);
        assert!(NodeId::new(d1, 6) < NodeId::new(d2, 0));
    }

    #[test]
    fn copy_subtree_roundtrip() {
        let mut store = Store::new();
        let d = sample(&mut store);
        let mut b = DocBuilder::new(None);
        b.start_element("wrap");
        {
            let doc = store.doc(d);
            b.copy_subtree(doc, &store.names, 2);
        }
        b.end_element();
        let d2 = store.attach(b.finish());
        let copy = store.doc(d2);
        // wrap > b(@id) > c, text
        assert_eq!(copy.len(), 6);
        let b_el = copy.children(1).next().unwrap();
        assert_eq!(store.names.resolve(copy.name(b_el)), "b");
        assert_eq!(copy.string_value(b_el), "t");
        let attr = copy.attributes(b_el).next().unwrap();
        assert_eq!(copy.value(attr), Some("1"));
    }

    #[test]
    fn noderef_attribute_lookup() {
        let mut store = Store::new();
        let d = sample(&mut store);
        let n = store.node(NodeId::new(d, 2));
        assert_eq!(n.attribute("id"), Some("1"));
        assert_eq!(n.attribute("missing"), None);
        assert_eq!(n.name(), "b");
    }

    #[test]
    fn empty_text_is_dropped() {
        let mut store = Store::new();
        let d = build_into(&mut store, None, |b| {
            b.start_element("a");
            b.text("");
            b.end_element();
        });
        assert_eq!(store.doc(d).len(), 2);
    }
}
