//! Randomized tests for the XML substrate: parse ∘ serialize identity, store
//! invariants, and axis algebra. Cases are generated with the in-tree
//! deterministic PRNG — every run explores the same documents, and a failure
//! message names the case seed so it can be replayed in isolation.

use xqd_prng::Rng;
use xqd_xml::axes::{axis_nodes, Axis};
use xqd_xml::{parse_document, serialize_document, NodeKind, Store};

/// Random well-formed XML: element names from a small alphabet, attributes,
/// text with characters that exercise escaping.
fn arb_xml(rng: &mut Rng) -> String {
    fn node(rng: &mut Rng, depth: u32, out: &mut String) {
        // leaves get likelier as we descend, bottoming out at depth 4
        if depth >= 4 || rng.gen_bool(0.3 + 0.15 * depth as f64) {
            match rng.gen_range(0..2) {
                0 => {
                    let t = rng.choose(&[
                        "plain",
                        "a < b",
                        "x & y",
                        "quote\"quote",
                        "tick'tick",
                        "ünïcode 中文",
                        "  spaces  ",
                    ]);
                    xqd_xml::serialize::escape_text(t, out);
                }
                _ => out.push_str(rng.choose(&[
                    "<x/>",
                    "<y k=\"v\"/>",
                    "<z a=\"1\" b=\"2\"/>",
                    "<!--c-->",
                ])),
            }
            return;
        }
        let name = rng.choose(&["a", "b", "c", "d"]);
        let attr = if rng.gen_bool(0.4) {
            format!(" {}", rng.choose(&["k=\"1\"", "k=\"a&amp;b\""]))
        } else {
            String::new()
        };
        let children = rng.gen_range(0..4);
        if children == 0 {
            out.push_str(&format!("<{name}{attr}/>"));
        } else {
            out.push_str(&format!("<{name}{attr}>"));
            for _ in 0..children {
                node(rng, depth + 1, out);
            }
            out.push_str(&format!("</{name}>"));
        }
    }
    let mut body = String::new();
    node(rng, 0, &mut body);
    format!("<doc>{body}</doc>")
}

const CASES: u64 = 128;
const BASE_SEED: u64 = 0x584D_4C00; // "XML"

fn for_each_case(mut check: impl FnMut(&str)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(BASE_SEED ^ case.wrapping_mul(0x9E37_79B9));
        let xml = arb_xml(&mut rng);
        check(&xml);
    }
}

/// serialize ∘ parse reaches a fixpoint after one round (the first
/// round canonicalizes quote styles and entity forms).
#[test]
fn serialize_parse_fixpoint() {
    for_each_case(|xml| {
        let mut s1 = Store::new();
        let d1 = parse_document(&mut s1, xml, None).unwrap();
        let once = serialize_document(s1.doc(d1), &s1.names);
        let mut s2 = Store::new();
        let d2 = parse_document(&mut s2, &once, None).unwrap();
        let twice = serialize_document(s2.doc(d2), &s2.names);
        assert_eq!(once, twice, "not a fixpoint for {xml}");
        // and the two stores agree structurally
        assert_eq!(s1.doc(d1).len(), s2.doc(d2).len());
        assert_eq!(s1.doc(d1).string_value(0), s2.doc(d2).string_value(0));
    });
}

/// Preorder/subtree invariants of the arena store.
#[test]
fn store_invariants() {
    for_each_case(|xml| {
        let mut s = Store::new();
        let d = parse_document(&mut s, xml, None).unwrap();
        let doc = s.doc(d);
        let n = doc.len() as u32;
        assert_eq!(doc.subtree_end(0), n - 1, "document spans everything");
        for i in 0..n {
            let end = doc.subtree_end(i);
            assert!(end >= i && end < n);
            // parent brackets the child range
            if let Some(p) = doc.parent(i) {
                assert!(p < i);
                assert!(doc.subtree_end(p) >= end);
                assert!(doc.is_ancestor(p, i));
            }
            // children partition the subtree (minus the attribute block)
            if doc.kind(i) == NodeKind::Element {
                let mut covered: u32 = 0;
                for a in doc.attributes(i) {
                    assert_eq!(doc.parent(a), Some(i));
                    covered += 1;
                }
                for c in doc.children(i) {
                    assert_eq!(doc.parent(c), Some(i));
                    covered += doc.subtree_end(c) - c + 1;
                }
                assert_eq!(covered, end - i, "subtree of {i} fully covered in {xml}");
            }
        }
    });
}

/// Axis algebra: parent inverts child; following/preceding partition
/// the document around each node's ancestors and subtree.
#[test]
fn axis_algebra() {
    for_each_case(|xml| {
        let mut s = Store::new();
        let d = parse_document(&mut s, xml, None).unwrap();
        let doc = s.doc(d);
        for i in 0..doc.len() as u32 {
            if doc.kind(i) == NodeKind::Attribute {
                continue;
            }
            // child∘parent identity
            let mut kids = Vec::new();
            axis_nodes(doc, i, Axis::Child, &mut kids);
            for c in kids {
                let mut parent = Vec::new();
                axis_nodes(doc, c, Axis::Parent, &mut parent);
                assert_eq!(parent, vec![i]);
            }
            // ancestors ∪ self ∪ descendants ∪ preceding ∪ following =
            // all non-attribute nodes
            let mut all = Vec::new();
            for axis in [
                Axis::AncestorOrSelf,
                Axis::Descendant,
                Axis::Preceding,
                Axis::Following,
            ] {
                axis_nodes(doc, i, axis, &mut all);
            }
            all.sort_unstable();
            let expected: Vec<u32> = (0..doc.len() as u32)
                .filter(|&x| doc.kind(x) != NodeKind::Attribute)
                .collect();
            assert_eq!(all, expected, "partition around node {i} in {xml}");
        }
    });
}
