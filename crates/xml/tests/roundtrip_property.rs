//! Property tests for the XML substrate: parse ∘ serialize identity, store
//! invariants, and axis algebra.

use proptest::prelude::*;

use xqd_xml::axes::{axis_nodes, Axis};
use xqd_xml::{parse_document, serialize_document, NodeKind, Store};

/// Random well-formed XML: element names from a small alphabet, attributes,
/// text with characters that exercise escaping.
fn arb_xml() -> impl Strategy<Value = String> {
    let text = prop::sample::select(vec![
        "plain", "a < b", "x & y", "quote\"quote", "tick'tick", "ünïcode 中文", "  spaces  ",
    ])
    .prop_map(|t| {
        let mut s = String::new();
        xqd_xml::serialize::escape_text(t, &mut s);
        s
    });
    let leaf = prop_oneof![
        text.clone(),
        prop::sample::select(vec!["<x/>", "<y k=\"v\"/>", "<z a=\"1\" b=\"2\"/>", "<!--c-->"])
            .prop_map(str::to_string),
    ];
    leaf.prop_recursive(4, 32, 4, move |inner| {
        (
            prop::sample::select(vec!["a", "b", "c", "d"]),
            prop::option::of(prop::sample::select(vec!["k=\"1\"", "k=\"a&amp;b\""])),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attr, children)| {
                let attrs = attr.map(|a| format!(" {a}")).unwrap_or_default();
                if children.is_empty() {
                    format!("<{name}{attrs}/>")
                } else {
                    format!("<{name}{attrs}>{}</{name}>", children.join(""))
                }
            })
    })
    .prop_map(|body| format!("<doc>{body}</doc>"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// serialize ∘ parse reaches a fixpoint after one round (the first
    /// round canonicalizes quote styles and entity forms).
    #[test]
    fn serialize_parse_fixpoint(xml in arb_xml()) {
        let mut s1 = Store::new();
        let d1 = parse_document(&mut s1, &xml, None).unwrap();
        let once = serialize_document(s1.doc(d1), &s1.names);
        let mut s2 = Store::new();
        let d2 = parse_document(&mut s2, &once, None).unwrap();
        let twice = serialize_document(s2.doc(d2), &s2.names);
        prop_assert_eq!(&once, &twice, "not a fixpoint for {}", xml);
        // and the two stores agree structurally
        prop_assert_eq!(s1.doc(d1).len(), s2.doc(d2).len());
        prop_assert_eq!(s1.doc(d1).string_value(0), s2.doc(d2).string_value(0));
    }

    /// Preorder/subtree invariants of the arena store.
    #[test]
    fn store_invariants(xml in arb_xml()) {
        let mut s = Store::new();
        let d = parse_document(&mut s, &xml, None).unwrap();
        let doc = s.doc(d);
        let n = doc.len() as u32;
        prop_assert_eq!(doc.subtree_end(0), n - 1, "document spans everything");
        for i in 0..n {
            let end = doc.subtree_end(i);
            prop_assert!(end >= i && end < n);
            // parent brackets the child range
            if let Some(p) = doc.parent(i) {
                prop_assert!(p < i);
                prop_assert!(doc.subtree_end(p) >= end);
                prop_assert!(doc.is_ancestor(p, i));
            }
            // children partition the subtree (minus the attribute block)
            if doc.kind(i) == NodeKind::Element {
                let mut covered: u32 = 0;
                for a in doc.attributes(i) {
                    prop_assert_eq!(doc.parent(a), Some(i));
                    covered += 1;
                }
                for c in doc.children(i) {
                    prop_assert_eq!(doc.parent(c), Some(i));
                    covered += doc.subtree_end(c) - c + 1;
                }
                prop_assert_eq!(covered, end - i, "subtree of {} fully covered", i);
            }
        }
    }

    /// Axis algebra: parent inverts child; following/preceding partition
    /// the document around each node's ancestors and subtree.
    #[test]
    fn axis_algebra(xml in arb_xml()) {
        let mut s = Store::new();
        let d = parse_document(&mut s, &xml, None).unwrap();
        let doc = s.doc(d);
        for i in 0..doc.len() as u32 {
            if doc.kind(i) == NodeKind::Attribute {
                continue;
            }
            // child∘parent identity
            let mut kids = Vec::new();
            axis_nodes(doc, i, Axis::Child, &mut kids);
            for c in kids {
                let mut parent = Vec::new();
                axis_nodes(doc, c, Axis::Parent, &mut parent);
                prop_assert_eq!(parent, vec![i]);
            }
            // ancestors ∪ self ∪ descendants ∪ preceding ∪ following =
            // all non-attribute nodes
            let mut all = Vec::new();
            for axis in [
                Axis::AncestorOrSelf,
                Axis::Descendant,
                Axis::Preceding,
                Axis::Following,
            ] {
                axis_nodes(doc, i, axis, &mut all);
            }
            all.sort_unstable();
            let expected: Vec<u32> = (0..doc.len() as u32)
                .filter(|&x| doc.kind(x) != NodeKind::Attribute)
                .collect();
            prop_assert_eq!(all, expected, "partition around node {}", i);
        }
    }
}
