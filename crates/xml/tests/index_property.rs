//! Randomized equivalence tests for the name-index layer: for every
//! generated document, every name appearing in it (plus one that doesn't),
//! and every context set, the staircase-join step functions must produce
//! exactly the node lists of the naive axis scan. Cases use the in-tree
//! deterministic PRNG, so every run explores the same documents.

use xqd_prng::Rng;
use xqd_xml::axes::{axis_nodes, node_test_matches, Axis, NodeTest};
use xqd_xml::index::{attributes_named, children_named, descendants_named};
use xqd_xml::{parse_document, Document, NameIndex, NodeKind, Store};

/// Random XML with a small name alphabet so element/attribute names repeat
/// across unrelated subtrees — the case where interval pruning and the
/// parent filter actually earn their keep.
fn arb_xml(rng: &mut Rng) -> String {
    fn node(rng: &mut Rng, depth: u32, out: &mut String) {
        if depth >= 5 || rng.gen_bool(0.25 + 0.12 * depth as f64) {
            out.push_str(rng.choose(&["<a/>", "<b k=\"1\"/>", "<c a=\"x\" b=\"y\"/>", "t"]));
            return;
        }
        let name = rng.choose(&["a", "b", "c", "d"]);
        let attr = match rng.gen_range(0..3) {
            0 => "",
            1 => " k=\"v\"",
            _ => " k=\"v\" m=\"w\"",
        };
        out.push_str(&format!("<{name}{attr}>"));
        for _ in 0..rng.gen_range(0..4) {
            node(rng, depth + 1, out);
        }
        out.push_str(&format!("</{name}>"));
    }
    let mut body = String::new();
    node(rng, 0, &mut body);
    format!("<doc>{body}</doc>")
}

const CASES: u64 = 96;
const BASE_SEED: u64 = 0x4944_5800; // "IDX"

fn for_each_doc(mut check: impl FnMut(&Store, &Document, &NameIndex)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(BASE_SEED ^ case.wrapping_mul(0x9E37_79B9));
        let xml = arb_xml(&mut rng);
        let mut store = Store::new();
        // intern a name that never occurs in any generated document
        store.names.intern("absent");
        let id = parse_document(&mut store, &xml, None).unwrap();
        let doc = store.doc(id);
        let index = NameIndex::build(doc);
        check(&store, doc, &index);
    }
}

/// Naive reference: axis scan + name test, per context.
fn scan(doc: &Document, ctx: u32, axis: Axis, test: &NodeTest) -> Vec<u32> {
    let mut tmp = Vec::new();
    axis_nodes(doc, ctx, axis, &mut tmp);
    tmp.retain(|&n| node_test_matches(doc, n, axis, test));
    tmp
}

/// All element ranks of the document (candidate contexts).
fn element_ranks(doc: &Document) -> Vec<u32> {
    (0..doc.len() as u32).filter(|&i| doc.kind(i) == NodeKind::Element).collect()
}

/// Every name to probe: all names interned in the store, including "absent"
/// (never in a document) — the index must return empty, like the scan.
#[test]
fn single_context_steps_match_scan() {
    for_each_doc(|store, doc, index| {
        for name_str in ["doc", "a", "b", "c", "d", "k", "m", "absent"] {
            let Some(name) = store.names.get(name_str) else { continue };
            let test = NodeTest::Name(name);
            for ctx in element_ranks(doc) {
                for (axis, or_self) in
                    [(Axis::Descendant, false), (Axis::DescendantOrSelf, true)]
                {
                    let mut got = Vec::new();
                    descendants_named(doc, index, &[ctx], name, or_self, &mut got);
                    assert_eq!(got, scan(doc, ctx, axis, &test), "{axis:?} {name_str} @{ctx}");
                }
                let mut got = Vec::new();
                children_named(doc, index, &[ctx], name, &mut got);
                assert_eq!(got, scan(doc, ctx, Axis::Child, &test), "child {name_str} @{ctx}");

                let mut got = Vec::new();
                attributes_named(doc, index, &[ctx], name, &mut got);
                assert_eq!(
                    got,
                    scan(doc, ctx, Axis::Attribute, &test),
                    "attribute {name_str} @{ctx}"
                );
            }
        }
    });
}

/// Multi-context descendant steps with nested contexts: the pruned
/// staircase output must equal the sorted, deduplicated union of per-context
/// scans (what the evaluator's document-order pass would produce).
#[test]
fn multi_context_descendants_match_union_of_scans() {
    for_each_doc(|store, doc, index| {
        let ctxs = element_ranks(doc); // sorted, includes nested pairs
        for name_str in ["a", "b", "c", "d", "absent"] {
            let Some(name) = store.names.get(name_str) else { continue };
            let test = NodeTest::Name(name);
            for or_self in [false, true] {
                let axis = if or_self { Axis::DescendantOrSelf } else { Axis::Descendant };
                let mut got = Vec::new();
                descendants_named(doc, index, &ctxs, name, or_self, &mut got);
                let mut expect: Vec<u32> =
                    ctxs.iter().flat_map(|&c| scan(doc, c, axis, &test)).collect();
                expect.sort_unstable();
                expect.dedup();
                assert_eq!(got, expect, "{axis:?} {name_str} over {} contexts", ctxs.len());
            }
        }
    });
}

/// Multi-context child/attribute steps don't prune; their contract is the
/// plain concatenation of per-context results in context order.
#[test]
fn multi_context_child_attribute_match_concatenated_scans() {
    for_each_doc(|store, doc, index| {
        let ctxs = element_ranks(doc);
        for name_str in ["a", "b", "c", "d", "k", "m", "absent"] {
            let Some(name) = store.names.get(name_str) else { continue };
            let test = NodeTest::Name(name);

            let mut got = Vec::new();
            children_named(doc, index, &ctxs, name, &mut got);
            let expect: Vec<u32> =
                ctxs.iter().flat_map(|&c| scan(doc, c, Axis::Child, &test)).collect();
            assert_eq!(got, expect, "child {name_str}");

            let mut got = Vec::new();
            attributes_named(doc, index, &ctxs, name, &mut got);
            let expect: Vec<u32> =
                ctxs.iter().flat_map(|&c| scan(doc, c, Axis::Attribute, &test)).collect();
            assert_eq!(got, expect, "attribute {name_str}");
        }
    });
}

/// The index itself lists exactly the element/attribute ranks of each name,
/// sorted — i.e. it is a permutation-free re-partition of the document.
#[test]
fn index_partitions_the_document() {
    for_each_doc(|store, doc, index| {
        let mut elements = 0usize;
        let mut attributes = 0usize;
        for name_str in ["doc", "a", "b", "c", "d", "k", "m", "x", "y", "absent"] {
            let Some(name) = store.names.get(name_str) else { continue };
            for (list, kind) in [
                (index.elements(name), NodeKind::Element),
                (index.attributes(name), NodeKind::Attribute),
            ] {
                assert!(list.windows(2).all(|w| w[0] < w[1]), "{name_str}: unsorted/dup");
                for &r in list {
                    assert_eq!(doc.kind(r), kind);
                    assert_eq!(doc.name(r), name);
                }
                match kind {
                    NodeKind::Element => elements += list.len(),
                    _ => attributes += list.len(),
                }
            }
        }
        let expect_elements =
            (0..doc.len() as u32).filter(|&i| doc.kind(i) == NodeKind::Element).count();
        let expect_attributes =
            (0..doc.len() as u32).filter(|&i| doc.kind(i) == NodeKind::Attribute).count();
        assert_eq!(elements, expect_elements);
        assert_eq!(attributes, expect_attributes);
    });
}
