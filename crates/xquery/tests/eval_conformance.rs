//! Evaluator conformance vignettes: one test per language feature, each
//! asserting the exact result of a small query over a small fixture.
//! Includes the paper's Q1 (Table I) evaluated *locally* — the ground truth
//! that the distributed semantics in `xqd-xrpc` must reproduce.

use xqd_xml::{parse_document, serialize_node, NodeKind, Store};
use xqd_xquery::value::string_value;
use xqd_xquery::{eval_query, parse_query, Atomic, Item};

fn fixture() -> Store {
    let mut s = Store::new();
    parse_document(
        &mut s,
        "<people><person id=\"p1\"><name>ann</name><age>30</age></person>\
         <person id=\"p2\"><name>bob</name><age>50</age></person>\
         <person id=\"p3\" idref=\"p1\"><name>cid</name><age>39</age></person></people>",
        Some("people.xml"),
    )
    .unwrap();
    parse_document(
        &mut s,
        "<courses><course id=\"c1\"><enroll ref=\"p1\"/><enroll ref=\"p3\"/></course>\
         <course id=\"c2\"><enroll ref=\"p2\"/></course></courses>",
        Some("courses.xml"),
    )
    .unwrap();
    s
}

fn run(store: &mut Store, q: &str) -> Vec<Item> {
    let m = parse_query(q).unwrap_or_else(|e| panic!("parse {q:?}: {e}"));
    eval_query(store, &m).unwrap_or_else(|e| panic!("eval {q:?}: {e}")).into_vec()
}

fn run_strings(store: &mut Store, q: &str) -> Vec<String> {
    let r = run(store, q);
    r.iter().map(|i| string_value(store, i)).collect()
}

fn atoms(seq: &[Item]) -> Vec<Atomic> {
    seq.iter()
        .map(|i| match i {
            Item::Atom(a) => a.clone(),
            Item::Node(_) => panic!("expected atoms, got node"),
        })
        .collect()
}

#[test]
fn path_with_predicate() {
    let mut s = fixture();
    let names = run_strings(&mut s, "doc(\"people.xml\")//person[age < 40]/name");
    assert_eq!(names, vec!["ann", "cid"]);
}

#[test]
fn attribute_axis() {
    let mut s = fixture();
    let ids = run_strings(&mut s, "doc(\"people.xml\")/people/person/@id");
    assert_eq!(ids, vec!["p1", "p2", "p3"]);
}

#[test]
fn descendant_or_self_abbreviation() {
    let mut s = fixture();
    let r = run(&mut s, "count(doc(\"people.xml\")//*)");
    assert_eq!(atoms(&r), vec![Atomic::Int(10)]); // people + 3*(person,name,age)
}

#[test]
fn reverse_axis_parent() {
    let mut s = fixture();
    let r = run_strings(&mut s, "doc(\"people.xml\")//name[. = \"bob\"]/parent::person/@id");
    assert_eq!(r, vec!["p2"]);
}

#[test]
fn sibling_axes() {
    let mut s = fixture();
    let r = run_strings(
        &mut s,
        "doc(\"people.xml\")//person[@id = \"p2\"]/preceding-sibling::person/@id",
    );
    assert_eq!(r, vec!["p1"]);
    let r = run_strings(
        &mut s,
        "doc(\"people.xml\")//person[@id = \"p2\"]/following-sibling::person/@id",
    );
    assert_eq!(r, vec!["p3"]);
}

#[test]
fn path_results_are_document_ordered_and_deduped() {
    let mut s = fixture();
    // both person and people contexts reach the same name nodes
    let r = run(&mut s, "count((doc(\"people.xml\")//person, doc(\"people.xml\")/people)//name)");
    assert_eq!(atoms(&r), vec![Atomic::Int(3)]);
}

#[test]
fn flwor_with_where() {
    let mut s = fixture();
    let r = run_strings(
        &mut s,
        "for $p in doc(\"people.xml\")//person where $p/age > 35 return $p/name",
    );
    assert_eq!(r, vec!["bob", "cid"]);
}

#[test]
fn let_binding_and_sequences() {
    let mut s = fixture();
    let r = run(&mut s, "let $x := (1, 2) return ($x, 3)");
    assert_eq!(atoms(&r), vec![Atomic::Int(1), Atomic::Int(2), Atomic::Int(3)]);
}

#[test]
fn general_comparison_existential() {
    let mut s = fixture();
    let r = run(&mut s, "doc(\"people.xml\")//person/age = 30");
    assert_eq!(atoms(&r), vec![Atomic::Bool(true)]);
    let r = run(&mut s, "doc(\"people.xml\")//person/age = 31");
    assert_eq!(atoms(&r), vec![Atomic::Bool(false)]);
}

#[test]
fn node_identity_is() {
    let mut s = fixture();
    let r = run(
        &mut s,
        "let $a := doc(\"people.xml\")//person[1], $b := doc(\"people.xml\")//name[. = \"ann\"]/.. \
         return $a is $b",
    );
    assert_eq!(atoms(&r), vec![Atomic::Bool(true)]);
}

#[test]
fn node_order_comparisons() {
    let mut s = fixture();
    let r = run(
        &mut s,
        "let $a := doc(\"people.xml\")//person[1], $b := doc(\"people.xml\")//person[2] \
         return ($a << $b, $b >> $a, $a >> $b)",
    );
    assert_eq!(
        atoms(&r),
        vec![Atomic::Bool(true), Atomic::Bool(true), Atomic::Bool(false)]
    );
}

#[test]
fn node_comparison_with_empty_operand_is_empty() {
    let mut s = fixture();
    let r = run(&mut s, "doc(\"people.xml\")//nosuch is doc(\"people.xml\")/people");
    assert!(r.is_empty());
}

#[test]
fn set_operations_in_document_order() {
    let mut s = fixture();
    let r = run_strings(
        &mut s,
        "(doc(\"people.xml\")//person[2] union doc(\"people.xml\")//person[1])/@id",
    );
    assert_eq!(r, vec!["p1", "p2"]);
    let r = run(
        &mut s,
        "count(doc(\"people.xml\")//person intersect doc(\"people.xml\")//person[age < 40])",
    );
    assert_eq!(atoms(&r), vec![Atomic::Int(2)]);
    let r = run_strings(
        &mut s,
        "(doc(\"people.xml\")//person except doc(\"people.xml\")//person[age < 40])/@id",
    );
    assert_eq!(r, vec!["p2"]);
}

#[test]
fn positional_predicates() {
    let mut s = fixture();
    assert_eq!(run_strings(&mut s, "doc(\"people.xml\")//person[2]/name"), vec!["bob"]);
    assert_eq!(run_strings(&mut s, "(doc(\"people.xml\")//person/name)[3]"), vec!["cid"]);
}

#[test]
fn if_then_else() {
    let mut s = fixture();
    let r = run(&mut s, "if (doc(\"people.xml\")//person[age > 100]) then 1 else 2");
    assert_eq!(atoms(&r), vec![Atomic::Int(2)]);
}

#[test]
fn typeswitch_dispatch() {
    let mut s = fixture();
    let r = run(
        &mut s,
        "typeswitch (doc(\"people.xml\")//person[1]) \
           case $a as attribute() return 1 \
           case $e as element(person) return 2 \
           default $d return 3",
    );
    assert_eq!(atoms(&r), vec![Atomic::Int(2)]);
    let r = run(
        &mut s,
        "typeswitch (\"hello\") case $s as xs:string return 1 default $d return 2",
    );
    assert_eq!(atoms(&r), vec![Atomic::Int(1)]);
}

#[test]
fn order_by_ascending_descending() {
    let mut s = fixture();
    let r = run_strings(
        &mut s,
        "for $p in doc(\"people.xml\")//person order by $p/age return $p/name/text()",
    );
    assert_eq!(r, vec!["ann", "cid", "bob"]);
    let r = run_strings(
        &mut s,
        "for $p in doc(\"people.xml\")//person order by $p/age descending return $p/name/text()",
    );
    assert_eq!(r, vec!["bob", "cid", "ann"]);
}

#[test]
fn order_by_string_keys() {
    let mut s = fixture();
    let r = run_strings(
        &mut s,
        "for $p in doc(\"people.xml\")//person order by $p/name descending return $p/@id",
    );
    assert_eq!(r, vec!["p3", "p2", "p1"]);
}

#[test]
fn arithmetic() {
    let mut s = fixture();
    let r = run(&mut s, "(1 + 2 * 3, 7 mod 2, 10 div 4, -(3))");
    assert_eq!(
        atoms(&r),
        vec![Atomic::Int(7), Atomic::Int(1), Atomic::Dbl(2.5), Atomic::Int(-3)]
    );
}

#[test]
fn arithmetic_on_node_values() {
    let mut s = fixture();
    let r = run(&mut s, "sum(doc(\"people.xml\")//age)");
    assert_eq!(atoms(&r), vec![Atomic::Dbl(119.0)]);
}

#[test]
fn and_or_short_circuit() {
    let mut s = fixture();
    // the right operand would error (unknown function) if evaluated
    let r = run(&mut s, "if (false() and boom()) then 1 else 2");
    assert_eq!(atoms(&r), vec![Atomic::Int(2)]);
    let r = run(&mut s, "if (true() or boom()) then 1 else 2");
    assert_eq!(atoms(&r), vec![Atomic::Int(1)]);
}

#[test]
fn element_constructor_copies_content() {
    let mut s = fixture();
    let r = run(&mut s, "element wrap { doc(\"people.xml\")//person[1]/name }");
    match r.as_slice() {
        [Item::Node(n)] => {
            let txt = serialize_node(s.doc(n.doc), &s.names, n.idx);
            assert_eq!(txt, "<wrap><name>ann</name></wrap>");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn constructed_nodes_have_new_identity() {
    let mut s = fixture();
    let r = run(
        &mut s,
        "let $n := (doc(\"people.xml\")//name)[1] \
         let $c := element w { $n } \
         return $c/child::name is $n",
    );
    assert_eq!(atoms(&r), vec![Atomic::Bool(false)]);
}

#[test]
fn attribute_constructor_inside_element() {
    let mut s = fixture();
    let r = run(&mut s, "element e { attribute k { \"v\" }, \"body\" }");
    match r.as_slice() {
        [Item::Node(n)] => {
            assert_eq!(serialize_node(s.doc(n.doc), &s.names, n.idx), "<e k=\"v\">body</e>");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn document_and_text_constructors() {
    let mut s = fixture();
    let r = run(&mut s, "document { element a {()} }");
    match r.as_slice() {
        [Item::Node(n)] => assert_eq!(s.doc(n.doc).kind(n.idx), NodeKind::Document),
        other => panic!("{other:?}"),
    }
    let r = run(&mut s, "text { \"a\", \"b\" }");
    match r.as_slice() {
        [Item::Node(n)] => {
            assert_eq!(s.doc(n.doc).kind(n.idx), NodeKind::Text);
            assert_eq!(s.doc(n.doc).string_value(n.idx), "a b");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn computed_constructor_name() {
    let mut s = fixture();
    let r = run(&mut s, "element { concat(\"pre\", \"fix\") } { () }");
    match r.as_slice() {
        [Item::Node(n)] => {
            assert_eq!(s.node(*n).name(), "prefix");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn adjacent_atoms_join_with_space() {
    let mut s = fixture();
    let r = run(&mut s, "element e { 1, 2, \"x\" }");
    match r.as_slice() {
        [Item::Node(n)] => {
            assert_eq!(s.doc(n.doc).string_value(n.idx), "1 2 x");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn user_defined_functions() {
    let mut s = fixture();
    let r = run(
        &mut s,
        "declare function grownup($p as element(person)) as xs:boolean { $p/age >= 40 }; \
         for $p in doc(\"people.xml\")//person where grownup($p) return $p/@id",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(string_value(&s, &r[0]), "p2");
}

#[test]
fn function_scope_is_isolated() {
    let mut s = fixture();
    let m = parse_query(
        "declare function f() as xs:integer { $leak }; let $leak := 1 return f()",
    )
    .unwrap();
    assert!(eval_query(&mut s, &m).is_err(), "function bodies must not see caller scope");
}

#[test]
fn builtin_id_and_idref() {
    let mut s = fixture();
    let r = run_strings(
        &mut s,
        "id(\"p2\", doc(\"people.xml\"))/name",
    );
    assert_eq!(r, vec!["bob"]);
    let r = run_strings(&mut s, "idref(\"p1\", doc(\"people.xml\"))/../@id");
    assert_eq!(r, vec!["p3"]);
}

#[test]
fn builtin_root() {
    let mut s = fixture();
    let r = run(&mut s, "root((doc(\"people.xml\")//age)[1]) is doc(\"people.xml\")");
    assert_eq!(atoms(&r), vec![Atomic::Bool(true)]);
}

#[test]
fn builtin_document_uri_and_base_uri() {
    let mut s = fixture();
    let r = run(&mut s, "document-uri(doc(\"people.xml\"))");
    assert_eq!(atoms(&r), vec![Atomic::Str("people.xml".into())]);
    let r = run(&mut s, "base-uri(doc(\"people.xml\")//person[1])");
    assert_eq!(atoms(&r), vec![Atomic::Str("people.xml".into())]);
    // constructed fragments have no document-uri
    let r = run(&mut s, "document-uri(document { element a {()} })");
    assert!(r.is_empty());
}

#[test]
fn builtin_static_context() {
    let mut s = fixture();
    let r = run(&mut s, "(static-base-uri(), default-collation(), current-dateTime())");
    assert_eq!(r.len(), 3);
}

#[test]
fn builtin_string_functions() {
    let mut s = fixture();
    let r = run(&mut s, "concat(\"a\", \"b\", \"c\")");
    assert_eq!(atoms(&r), vec![Atomic::Str("abc".into())]);
    let r = run(&mut s, "string-join((\"a\", \"b\"), \"-\")");
    assert_eq!(atoms(&r), vec![Atomic::Str("a-b".into())]);
    let r = run(&mut s, "(contains(\"abc\", \"b\"), starts-with(\"abc\", \"b\"))");
    assert_eq!(atoms(&r), vec![Atomic::Bool(true), Atomic::Bool(false)]);
    let r = run(&mut s, "substring(\"hello\", 2, 3)");
    assert_eq!(atoms(&r), vec![Atomic::Str("ell".into())]);
    let r = run(&mut s, "normalize-space(\"  a   b \")");
    assert_eq!(atoms(&r), vec![Atomic::Str("a b".into())]);
}

#[test]
fn builtin_aggregates() {
    let mut s = fixture();
    let r = run(&mut s, "(count((1,2,3)), sum((1,2,3)), avg((1,2,3)), min((3,1,2)), max((3,1,2)))");
    assert_eq!(
        atoms(&r),
        vec![
            Atomic::Int(3),
            Atomic::Int(6),
            Atomic::Dbl(2.0),
            Atomic::Dbl(1.0),
            Atomic::Dbl(3.0)
        ]
    );
}

#[test]
fn builtin_distinct_values() {
    let mut s = fixture();
    let r = run(&mut s, "distinct-values((1, 2, 1, \"a\", \"a\"))");
    assert_eq!(r.len(), 3);
}

#[test]
fn builtin_deep_equal() {
    let mut s = fixture();
    let r = run(
        &mut s,
        "deep-equal(doc(\"people.xml\")//person[1], element person { attribute id {\"p1\"}, \
         element name {\"ann\"}, element age {\"30\"} })",
    );
    assert_eq!(atoms(&r), vec![Atomic::Bool(true)]);
}

#[test]
fn builtin_name_functions() {
    let mut s = fixture();
    let r = run(&mut s, "name(doc(\"people.xml\")/people)");
    assert_eq!(atoms(&r), vec![Atomic::Str("people".into())]);
}

#[test]
fn unknown_function_errors() {
    let mut s = fixture();
    let m = parse_query("nosuchfn(1)").unwrap();
    assert!(eval_query(&mut s, &m).is_err());
}

#[test]
fn unbound_variable_errors() {
    let mut s = fixture();
    let m = parse_query("$nope").unwrap();
    assert!(eval_query(&mut s, &m).is_err());
}

#[test]
fn execute_without_handler_errors() {
    let mut s = fixture();
    let m = parse_query("execute at { \"peer1\" } params () { 1 }").unwrap();
    let err = eval_query(&mut s, &m).unwrap_err();
    assert!(err.message.contains("no remote handler"), "{err}");
}

#[test]
fn cross_document_join() {
    let mut s = fixture();
    let r = run_strings(
        &mut s,
        "for $c in doc(\"courses.xml\")//course \
         for $e in $c/enroll \
         for $p in doc(\"people.xml\")//person[@id = $e/@ref] \
         return concat($c/@id, \":\", $p/name)",
    );
    assert_eq!(r, vec!["c1:ann", "c1:cid", "c2:bob"]);
}

/// The paper's Q1 (Table I), executed locally. The result is a single <c/>
/// element: `$first` is always `$abc` (the parent), overlap always holds,
/// and the final //c step deduplicates because both loop results come from
/// the same constructed fragment.
#[test]
fn paper_q1_local_semantics() {
    let mut s = Store::new();
    let q1 = r#"
        declare function makenodes() as node()
        { element a { element b { element c {()} } }/b };
        declare function overlap($l as node(), $r as node()) as xs:boolean
        { not(empty($l//* intersect $r//*)) };
        declare function earlier($l as node(), $r as node()) as node()
        { if ($l << $r) then $l else $r };
        let $bc := makenodes(),
            $abc := $bc/parent::a
        return (for $node in ($bc, $abc)
                let $first := earlier($bc, $abc)
                where overlap($first, $node)
                return $node)//c
    "#;
    let r = run(&mut s, q1);
    assert_eq!(r.len(), 1, "local execution returns exactly one <c/>: {r:?}");
    match &r[0] {
        Item::Node(n) => assert_eq!(s.node(*n).name(), "c"),
        other => panic!("{other:?}"),
    }
}

/// Q1 building blocks: makenodes() result keeps its parent (Problem 1 does
/// NOT occur locally).
#[test]
fn paper_q1_parent_is_reachable_locally() {
    let mut s = Store::new();
    let q = r#"
        declare function makenodes() as node()
        { element a { element b { element c {()} } }/b };
        let $bc := makenodes(), $abc := $bc/parent::a
        return (name($abc), count($abc))
    "#;
    let r = run(&mut s, q);
    assert_eq!(atoms(&r), vec![Atomic::Str("a".into()), Atomic::Int(1)]);
}

#[test]
fn filter_on_variable() {
    let mut s = fixture();
    let r = run_strings(
        &mut s,
        "let $s := doc(\"people.xml\")//person return $s[age < 40]/@id",
    );
    assert_eq!(r, vec!["p1", "p3"]);
}

#[test]
fn empty_sequence_propagation() {
    let mut s = fixture();
    assert!(run(&mut s, "()").is_empty());
    assert!(run(&mut s, "1 + ()").is_empty());
    assert!(run(&mut s, "doc(\"people.xml\")//nosuch/child::x").is_empty());
}

#[test]
fn division_by_zero_errors() {
    let mut s = fixture();
    let m = parse_query("1 div 0").unwrap();
    assert!(eval_query(&mut s, &m).is_err());
}

#[test]
fn quantified_expressions() {
    let mut s = fixture();
    let r = run(&mut s, "some $p in doc(\"people.xml\")//person satisfies $p/age > 45");
    assert_eq!(atoms(&r), vec![Atomic::Bool(true)]);
    let r = run(&mut s, "some $p in doc(\"people.xml\")//person satisfies $p/age > 100");
    assert_eq!(atoms(&r), vec![Atomic::Bool(false)]);
    let r = run(&mut s, "every $p in doc(\"people.xml\")//person satisfies $p/age >= 30");
    assert_eq!(atoms(&r), vec![Atomic::Bool(true)]);
    let r = run(&mut s, "every $p in doc(\"people.xml\")//person satisfies $p/age > 30");
    assert_eq!(atoms(&r), vec![Atomic::Bool(false)]);
    // multiple bindings
    let r = run(
        &mut s,
        "some $p in doc(\"people.xml\")//person, $c in doc(\"courses.xml\")//enroll \
         satisfies $p/@id = $c/@ref",
    );
    assert_eq!(atoms(&r), vec![Atomic::Bool(true)]);
    // empty domain: some → false, every → true
    let r = run(&mut s, "(some $x in () satisfies $x, every $x in () satisfies $x)");
    assert_eq!(atoms(&r), vec![Atomic::Bool(false), Atomic::Bool(true)]);
}

#[test]
fn builtin_sequence_functions() {
    let mut s = fixture();
    let r = run(&mut s, "subsequence((1,2,3,4,5), 2, 3)");
    assert_eq!(atoms(&r), vec![Atomic::Int(2), Atomic::Int(3), Atomic::Int(4)]);
    let r = run(&mut s, "subsequence((1,2,3), 2)");
    assert_eq!(atoms(&r), vec![Atomic::Int(2), Atomic::Int(3)]);
    let r = run(&mut s, "insert-before((1,3), 2, (2))");
    assert_eq!(atoms(&r), vec![Atomic::Int(1), Atomic::Int(2), Atomic::Int(3)]);
    let r = run(&mut s, "remove((1,2,3), 2)");
    assert_eq!(atoms(&r), vec![Atomic::Int(1), Atomic::Int(3)]);
    let r = run(&mut s, "index-of((10,20,10), 10)");
    assert_eq!(atoms(&r), vec![Atomic::Int(1), Atomic::Int(3)]);
    let r = run(&mut s, "(head((7,8,9)), count(tail((7,8,9))))");
    assert_eq!(atoms(&r), vec![Atomic::Int(7), Atomic::Int(2)]);
    let r = run(&mut s, "reverse((1,2,3))");
    assert_eq!(atoms(&r), vec![Atomic::Int(3), Atomic::Int(2), Atomic::Int(1)]);
}

#[test]
fn builtin_string_functions_extended() {
    let mut s = fixture();
    let r = run(&mut s, "substring-before(\"a-b-c\", \"-\")");
    assert_eq!(atoms(&r), vec![Atomic::Str("a".into())]);
    let r = run(&mut s, "substring-after(\"a-b-c\", \"-\")");
    assert_eq!(atoms(&r), vec![Atomic::Str("b-c".into())]);
    let r = run(&mut s, "ends-with(\"hello\", \"llo\")");
    assert_eq!(atoms(&r), vec![Atomic::Bool(true)]);
    let r = run(&mut s, "translate(\"abcabc\", \"abc\", \"xy\")");
    assert_eq!(atoms(&r), vec![Atomic::Str("xyxy".into())]);
    let r = run(&mut s, "tokenize(\"a,b,,c\", \",\")");
    assert_eq!(
        atoms(&r),
        vec![
            Atomic::Str("a".into()),
            Atomic::Str("b".into()),
            Atomic::Str("c".into())
        ]
    );
    let r = run(&mut s, "(abs(-2.5), floor(2.7), ceiling(2.1), round(2.5))");
    assert_eq!(
        atoms(&r),
        vec![Atomic::Dbl(2.5), Atomic::Dbl(2.0), Atomic::Dbl(3.0), Atomic::Dbl(3.0)]
    );
}
