//! Printer⇄parser roundtrip property: every expression the generator can
//! produce prints to text that re-parses to a structurally identical
//! expression. This is load-bearing — XRPC ships decomposed function bodies
//! as printed XQuery source. Randomized with the in-tree deterministic PRNG.

use xqd_prng::Rng;
use xqd_xquery::{parse_expr_str, Expr};

/// Random query text built compositionally from parseable pieces.
fn arb_query(rng: &mut Rng, depth: u32) -> String {
    if depth >= 4 || rng.gen_bool(0.35) {
        return rng
            .choose(&[
                "1",
                "2.5",
                "\"str\"",
                "\"qu\"\"ote\"",
                "$v",
                "()",
                "doc(\"d.xml\")",
                "true()",
            ])
            .to_string();
    }
    let d = depth + 1;
    match rng.gen_range(0..11) {
        // paths
        0 => {
            let base = arb_query(rng, d);
            let step = rng.choose(&[
                "/child::a",
                "//b",
                "/parent::c",
                "/@id",
                "/descendant::d",
                "/following-sibling::e",
                "/child::text()",
                "/child::node()",
            ]);
            format!("({base}){step}")
        }
        // binary operators
        1 => {
            let l = arb_query(rng, d);
            let op = rng.choose(&[
                "=", "!=", "<", ">=", "is", "<<", ">>", "union", "intersect", "except", "+",
                "*", "and", "or",
            ]);
            let r = arb_query(rng, d);
            format!("({l}) {op} ({r})")
        }
        // control flow
        2 => {
            let (c, t, e) = (arb_query(rng, d), arb_query(rng, d), arb_query(rng, d));
            format!("if ({c}) then ({t}) else ({e})")
        }
        3 => {
            let (s, r) = (arb_query(rng, d), arb_query(rng, d));
            format!("for $x in ({s}) return ({r})")
        }
        4 => {
            let (v, r) = (arb_query(rng, d), arb_query(rng, d));
            format!("let $y := ({v}) return ({r})")
        }
        // constructors and functions
        5 => format!("element w {{ {} }}", arb_query(rng, d)),
        6 => format!("count({})", arb_query(rng, d)),
        7 => format!("concat(\"p\", string({}))", arb_query(rng, d)),
        // order by and sequences
        8 => {
            let (a, b) = (arb_query(rng, d), arb_query(rng, d));
            if rng.gen_bool(0.5) {
                format!("(({a}), ({b}))")
            } else {
                format!("($v) order by ({a}) descending")
            }
        }
        // execute-at (the shipped-body shape)
        9 => format!(
            "execute at {{ \"p\" }} params ($q := $outer) {{ {} }}",
            arb_query(rng, d)
        ),
        // typeswitch
        _ => {
            let (i, b) = (arb_query(rng, d), arb_query(rng, d));
            format!("typeswitch ({i}) case $n as node() return ({b}) default $d return ()")
        }
    }
}

/// Structural normalization for comparison: drop projections and flatten
/// nested path spines (`(E/a)/b` ≡ `E/a/b` — the printer always emits the
/// flat form).
fn canon(e: &Expr) -> Expr {
    let rebuilt = xqd_xquery::normalize::map_children_infallible(e, &mut canon);
    match rebuilt {
        Expr::Execute { peer, params, body, .. } => Expr::Execute {
            peer,
            params,
            body,
            projection: None,
        },
        Expr::Path { start: Some(start), steps } => match *start {
            Expr::Path { start: inner_start, steps: mut inner_steps } => {
                inner_steps.extend(steps);
                Expr::Path { start: inner_start, steps: inner_steps }
            }
            other => Expr::Path { start: Some(other.boxed()), steps },
        },
        other => other,
    }
}

#[test]
fn print_parse_roundtrip() {
    for case in 0..192u64 {
        let mut rng = Rng::seed_from_u64(0x5052_494E_5400 ^ case.wrapping_mul(0x9E37_79B9));
        let q = arb_query(&mut rng, 0);
        // generator composes only parseable pieces; a parse failure is a bug
        let parsed = parse_expr_str(&q)
            .unwrap_or_else(|e| panic!("generated query failed to parse (case {case}): {q}\n{e}"));
        let printed = parsed.to_string();
        let reparsed = parse_expr_str(&printed)
            .unwrap_or_else(|e| panic!("printed form does not reparse: {printed}\n{e}"));
        assert_eq!(
            canon(&reparsed),
            canon(&parsed),
            "roundtrip changed structure (case {case}):\n  input: {q}\n  printed: {printed}"
        );
        // printing is idempotent
        assert_eq!(reparsed.to_string(), printed);
    }
}
