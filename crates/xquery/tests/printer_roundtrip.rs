//! Printer⇄parser roundtrip property: every expression the generator can
//! produce prints to text that re-parses to a structurally identical
//! expression. This is load-bearing — XRPC ships decomposed function bodies
//! as printed XQuery source.

use proptest::prelude::*;
use proptest::strategy::Strategy as PStrategy;

use xqd_xquery::{parse_expr_str, Expr};

/// Random query text built compositionally from parseable pieces.
fn arb_query() -> impl PStrategy<Value = String> {
    let atom = prop::sample::select(vec![
        "1".to_string(),
        "2.5".to_string(),
        "\"str\"".to_string(),
        "\"qu\"\"ote\"".to_string(),
        "$v".to_string(),
        "()".to_string(),
        "doc(\"d.xml\")".to_string(),
        "true()".to_string(),
    ]);
    atom.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            // paths
            (inner.clone(), prop::sample::select(vec![
                "/child::a", "//b", "/parent::c", "/@id", "/descendant::d",
                "/following-sibling::e", "/child::text()", "/child::node()",
            ]))
                .prop_map(|(base, step)| format!("({base}){step}")),
            // binary operators
            (inner.clone(), prop::sample::select(vec![
                "=", "!=", "<", ">=", "is", "<<", ">>", "union", "intersect",
                "except", "+", "*", "and", "or",
            ]), inner.clone())
                .prop_map(|(l, op, r)| format!("({l}) {op} ({r})")),
            // control flow
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("if ({c}) then ({t}) else ({e})")),
            (inner.clone(), inner.clone())
                .prop_map(|(s, r)| format!("for $x in ({s}) return ({r})")),
            (inner.clone(), inner.clone())
                .prop_map(|(v, r)| format!("let $y := ({v}) return ({r})")),
            // constructors and functions
            inner.clone().prop_map(|c| format!("element w {{ {c} }}")),
            inner.clone().prop_map(|c| format!("count({c})")),
            inner.clone().prop_map(|c| format!("concat(\"p\", string({c}))")),
            // order by and sequences
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(({a}), ({b}))")),
            inner.clone().prop_map(|c| format!("($v) order by ({c}) descending")),
            // execute-at (the shipped-body shape)
            (inner.clone())
                .prop_map(|b| format!("execute at {{ \"p\" }} params ($q := $outer) {{ {b} }}")),
            // typeswitch
            (inner.clone(), inner)
                .prop_map(|(i, b)| format!(
                    "typeswitch ({i}) case $n as node() return ({b}) default $d return ()"
                )),
        ]
    })
}

/// Structural normalization for comparison: drop projections and flatten
/// nested path spines (`(E/a)/b` ≡ `E/a/b` — the printer always emits the
/// flat form).
fn canon(e: &Expr) -> Expr {
    let rebuilt = xqd_xquery::normalize::map_children_infallible(e, &mut canon);
    match rebuilt {
        Expr::Execute { peer, params, body, .. } => Expr::Execute {
            peer,
            params,
            body,
            projection: None,
        },
        Expr::Path { start: Some(start), steps } => match *start {
            Expr::Path { start: inner_start, steps: mut inner_steps } => {
                inner_steps.extend(steps);
                Expr::Path { start: inner_start, steps: inner_steps }
            }
            other => Expr::Path { start: Some(other.boxed()), steps },
        },
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_roundtrip(q in arb_query()) {
        let Ok(parsed) = parse_expr_str(&q) else {
            // generator composes only parseable pieces; a parse failure is a bug
            return Err(TestCaseError::fail(format!("generated query failed to parse: {q}")));
        };
        let printed = parsed.to_string();
        let reparsed = parse_expr_str(&printed).map_err(|e| {
            TestCaseError::fail(format!("printed form does not reparse: {printed}\n{e}"))
        })?;
        prop_assert_eq!(
            canon(&reparsed),
            canon(&parsed),
            "roundtrip changed structure:\n  input: {}\n  printed: {}",
            q,
            printed
        );
        // printing is idempotent
        prop_assert_eq!(reparsed.to_string(), printed);
    }
}
