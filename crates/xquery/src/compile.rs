//! AST → flat plan IR compiler and the compiled-plan evaluator.
//!
//! The tree-walk interpreter ([`crate::eval`]) re-derives everything per
//! run: QName lookups, indexed-vs-scan step choices, scatter/bulk shapes,
//! even constant subexpressions. This module lowers a (normalized or
//! surface) module once into a flat arena of [`Op`]s — children are `u32`
//! operand indices instead of `Box`es — with those decisions baked in:
//!
//! * names interned into a plan-local symbol table, resolved to the
//!   executing store's [`xqd_xml::NameId`]s through a per-run [`NameCache`]
//!   (hits cached forever — interned ids are immutable; misses re-probed
//!   because constructors can intern names mid-run),
//! * indexed-vs-scan selection per axis step, including the
//!   `descendant-or-self::node()/child::n` fusion for `//n`,
//! * constant subexpressions pre-evaluated (only when they evaluate
//!   cleanly: a subexpression that would raise a dynamic error is lowered
//!   unfolded so the error surfaces at the same point, with the same
//!   message, as under the interpreter),
//! * the scatter-round / Bulk-RPC shapes recorded per op instead of
//!   re-pattern-matched on every evaluation.
//!
//! The compiled engine drives the *same* [`Evaluator`] — environment,
//! context stack, scratch buffers, builtins, remote hooks — so the two
//! engines cannot diverge in book-keeping. `Plan::eval` is bit-identical
//! to interpreting the source expression: results, errors and the exact
//! network messages (the equivalence property suite in the workspace root
//! asserts all three across every wire strategy).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xqd_xml::axes::{axis_nodes, node_test_matches, NodeTest};
use xqd_xml::{Axis, NameId, NodeId, Store};

use crate::ast::*;
use crate::builtins;
use crate::eval::{
    binary_scatter, bulk_pattern, compare_order_keys, let_scatter, matches_seq_type,
    sequence_scatter, single_node, Evaluator, LocalResolver, ScatterCall, StaticContext,
    MAX_CALL_DEPTH,
};
use crate::value::*;

/// Index of an [`Op`] in [`Plan::ops`].
pub type OpRef = u32;
/// Index of an interned string in [`Plan::syms`].
pub type SymId = u32;

/// Node test of a compiled axis step; names are interned symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanTest {
    Named(SymId),
    Wildcard,
    AnyKind,
    Text,
    Comment,
}

/// One compiled axis step with the index strategy baked in.
#[derive(Debug, Clone)]
pub struct PlanStep {
    pub axis: Axis,
    pub test: PlanTest,
    pub preds: Vec<OpRef>,
    /// Answer this step from the per-document name indexes (staircase
    /// join). Decided at compile time from the axis/test/predicate shape
    /// and the session's index toggle.
    pub indexed: bool,
    /// This step is the collapsed `descendant-or-self::node()/child::n`
    /// pair — the expansion of `//n` — rewritten to `descendant::n`.
    pub fused: bool,
}

/// Static or computed constructor name.
#[derive(Debug, Clone)]
pub enum PlanName {
    Static(String),
    Computed(OpRef),
}

#[derive(Debug, Clone)]
pub enum PlanConstructor {
    Document { content: OpRef },
    Text { content: OpRef },
    Element { name: PlanName, content: OpRef },
    Attribute { name: PlanName, content: OpRef },
}

#[derive(Debug, Clone)]
pub struct PlanCase {
    pub var: SymId,
    pub seq_type: SeqType,
    pub body: OpRef,
}

#[derive(Debug, Clone)]
pub struct PlanOrderSpec {
    pub key: OpRef,
    pub descending: bool,
}

/// A compiled `execute at`. The body ships over the wire as XQuery source
/// and is re-parsed (and re-compiled) by the receiving peer, so it stays
/// an AST on this side.
#[derive(Debug, Clone)]
pub struct PlanExec {
    pub peer: OpRef,
    /// Pre-extracted literal peer URI — the compile-time half of the
    /// scatter / Bulk-RPC eligibility tests.
    pub literal_peer: Option<String>,
    pub params: Vec<XrpcParam>,
    pub body: Box<Expr>,
    pub projection: Option<Box<ExecProjection>>,
}

/// A `for`-return clause amenable to Bulk RPC, detected at compile time:
/// a chain of local lets ending in an `Op::Execute` at a literal peer.
/// The let value ops are shared with the plain compiled return chain.
#[derive(Debug, Clone)]
pub struct PlanBulk {
    pub lets: Vec<(SymId, OpRef)>,
    pub exec: OpRef,
}

/// A compiled user-defined function; `params.len()` is the arity.
#[derive(Debug, Clone)]
pub struct PlanFunc {
    pub name: SymId,
    pub params: Vec<SymId>,
    pub body: OpRef,
}

/// Decomposer routing metadata recorded in the plan: one entry per remote
/// call site with its replica candidates, resolved once at plan-build time
/// instead of rediscovered per run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanRoute {
    pub peer: String,
    pub replicas: Vec<String>,
}

/// Semi-join metadata recorded in the plan by the distributed executor:
/// one entry per producer call rewritten to harvest a distinct sorted key
/// column, with the peer the resulting key filter is shipped to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanSemijoin {
    /// Variable bound to the key-harvest call.
    pub var: String,
    /// The key column the producer extracts (e.g. `child::id`).
    pub key_path: String,
    pub producer_peer: String,
    /// `None` when the join closes at the coordinator.
    pub consumer_peer: Option<String>,
}

/// One instruction of the flat plan. Operands are [`OpRef`] indices into
/// the owning [`Plan::ops`] arena.
#[derive(Debug, Clone)]
pub enum Op {
    /// A pre-evaluated constant sequence (literals, `()`, folded pure
    /// subexpressions). Never contains nodes.
    Const(Sequence),
    VarRef(SymId),
    ContextItem,
    /// `scatter` lists the element indices forming a scatter round
    /// (≥2 `Execute`s at ≥2 distinct literal peers).
    Seq { items: Vec<OpRef>, scatter: Option<Vec<usize>> },
    /// `bulk` is the compile-time Bulk-RPC shape of the return clause.
    For { var: SymId, seq: OpRef, ret: OpRef, bulk: Option<PlanBulk> },
    Let { var: SymId, value: OpRef, ret: OpRef },
    /// A `let`-chain of independent remote calls to ≥2 distinct peers:
    /// one scatter round, bound in order. Falls back to the sequential
    /// chain when no remote handler is attached.
    LetScatter { binds: Vec<(SymId, OpRef)>, tail: OpRef },
    If { cond: OpRef, then: OpRef, els: OpRef },
    Typeswitch { input: OpRef, cases: Vec<PlanCase>, default_var: SymId, default: OpRef },
    Comparison { op: CompOp, lhs: OpRef, rhs: OpRef, scatter: bool },
    NodeComparison { op: NodeCompOp, lhs: OpRef, rhs: OpRef, scatter: bool },
    NodeSet { op: NodeSetOp, lhs: OpRef, rhs: OpRef, scatter: bool },
    Arith { op: ArithOp, lhs: OpRef, rhs: OpRef, scatter: bool },
    OrderBy { input: OpRef, specs: Vec<PlanOrderSpec> },
    Construct(PlanConstructor),
    Path { start: Option<OpRef>, steps: Vec<PlanStep> },
    Filter { input: OpRef, pred: OpRef },
    /// `user` is the pre-resolved index into [`Plan::funcs`]; builtins
    /// still dispatch first at runtime, exactly like the interpreter.
    FunCall { name: SymId, args: Vec<OpRef>, user: Option<u32> },
    And(OpRef, OpRef),
    Or(OpRef, OpRef),
    Execute(Box<PlanExec>),
}

/// A compiled, immutable, shareable query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    pub ops: Vec<Op>,
    pub root: OpRef,
    pub funcs: Vec<PlanFunc>,
    /// Plan-local string table: variable names, QNames, function names.
    pub syms: Vec<String>,
    /// Index strategy the plan was compiled for (the per-step decisions in
    /// [`PlanStep::indexed`] were made under this toggle).
    pub use_indexes: bool,
    /// Scatter-round sizes statically detectable in the body — the same
    /// predicate the runtime applies, recorded for explain output.
    pub scatter_rounds: Vec<usize>,
    /// Remote call sites with replica candidates, filled in by the
    /// distributed executor when it plans a decomposed query.
    pub routes: Vec<PlanRoute>,
    /// Semi-join edges baked into the plan's call bodies, recorded by the
    /// distributed executor for explain/metrics.
    pub semijoins: Vec<PlanSemijoin>,
    /// Number of non-trivial subexpressions pre-evaluated at compile time.
    pub consts_folded: u32,
}

impl Plan {
    fn op(&self, r: OpRef) -> &Op {
        &self.ops[r as usize]
    }

    fn sym(&self, s: SymId) -> &str {
        &self.syms[s as usize]
    }

    /// Executes the plan with the given evaluator. Bit-identical to
    /// `ev.eval(&body)` on the source expression — results, errors and
    /// remote messages.
    pub fn eval(&self, ev: &mut Evaluator<'_>) -> EvalResult {
        let mut nc = NameCache::new(self.syms.len());
        ev.eval_op(self, &mut nc, self.root)
    }

    /// Attaches decomposer routing metadata (builder style).
    pub fn with_routes(mut self, routes: Vec<PlanRoute>) -> Self {
        self.routes = routes;
        self
    }

    /// Attaches semi-join metadata (builder style).
    pub fn with_semijoins(mut self, semijoins: Vec<PlanSemijoin>) -> Self {
        self.semijoins = semijoins;
        self
    }

    /// Human-readable op listing (explain output): header, functions,
    /// one line per op with the chosen axis strategy per path step.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan: {} ops, {} syms, {} funcs, {} consts folded, indexes {}\n",
            self.ops.len(),
            self.syms.len(),
            self.funcs.len(),
            self.consts_folded,
            if self.use_indexes { "on" } else { "off" },
        ));
        if !self.scatter_rounds.is_empty() {
            out.push_str(&format!("scatter rounds: {:?}\n", self.scatter_rounds));
        }
        for r in &self.routes {
            if r.replicas.is_empty() {
                out.push_str(&format!("route: {}\n", r.peer));
            } else {
                out.push_str(&format!("route: {} replicas[{}]\n", r.peer, r.replicas.join(", ")));
            }
        }
        for s in &self.semijoins {
            out.push_str(&format!(
                "semijoin: ${} keys {} from {} -> {}\n",
                s.var,
                s.key_path,
                s.producer_peer,
                s.consumer_peer.as_deref().unwrap_or("(coordinator)"),
            ));
        }
        for f in &self.funcs {
            let params: Vec<String> =
                f.params.iter().map(|&p| format!("${}", self.sym(p))).collect();
            out.push_str(&format!(
                "func {}({}) = @{}\n",
                self.sym(f.name),
                params.join(", "),
                f.body
            ));
        }
        for (i, op) in self.ops.iter().enumerate() {
            out.push_str(&format!("{i:>4}: {}\n", self.dump_op(op)));
        }
        out.push_str(&format!("root: @{}\n", self.root));
        out
    }

    fn dump_test(&self, t: &PlanTest) -> String {
        match t {
            PlanTest::Named(s) => self.sym(*s).to_string(),
            PlanTest::Wildcard => "*".into(),
            PlanTest::AnyKind => "node()".into(),
            PlanTest::Text => "text()".into(),
            PlanTest::Comment => "comment()".into(),
        }
    }

    fn dump_refs(refs: &[OpRef]) -> String {
        refs.iter().map(|r| format!("@{r}")).collect::<Vec<_>>().join(", ")
    }

    fn dump_op(&self, op: &Op) -> String {
        match op {
            Op::Const(seq) => format!("const {seq:?}"),
            Op::VarRef(v) => format!("var ${}", self.sym(*v)),
            Op::ContextItem => "context-item".into(),
            Op::Seq { items, scatter } => {
                let mut s = format!("seq [{}]", Self::dump_refs(items));
                if let Some(idxs) = scatter {
                    s.push_str(&format!(" scatter{idxs:?}"));
                }
                s
            }
            Op::For { var, seq, ret, bulk } => {
                let mut s = format!("for ${} in @{seq} return @{ret}", self.sym(*var));
                if let Some(b) = bulk {
                    s.push_str(&format!(" bulk(exec @{})", b.exec));
                }
                s
            }
            Op::Let { var, value, ret } => {
                format!("let ${} := @{value} return @{ret}", self.sym(*var))
            }
            Op::LetScatter { binds, tail } => {
                let bs: Vec<String> = binds
                    .iter()
                    .map(|(v, e)| format!("${} := @{e}", self.sym(*v)))
                    .collect();
                format!("let-scatter [{}] return @{tail}", bs.join(", "))
            }
            Op::If { cond, then, els } => format!("if @{cond} then @{then} else @{els}"),
            Op::Typeswitch { input, cases, default_var, default } => {
                let cs: Vec<String> = cases
                    .iter()
                    .map(|c| format!("${} as {} => @{}", self.sym(c.var), c.seq_type, c.body))
                    .collect();
                format!(
                    "typeswitch @{input} [{}] default ${} => @{default}",
                    cs.join(", "),
                    self.sym(*default_var)
                )
            }
            Op::Comparison { op, lhs, rhs, scatter } => format!(
                "cmp @{lhs} {} @{rhs}{}",
                op.symbol(),
                if *scatter { " scatter" } else { "" }
            ),
            Op::NodeComparison { op, lhs, rhs, scatter } => format!(
                "node-cmp @{lhs} {} @{rhs}{}",
                op.symbol(),
                if *scatter { " scatter" } else { "" }
            ),
            Op::NodeSet { op, lhs, rhs, scatter } => format!(
                "node-set @{lhs} {} @{rhs}{}",
                op.keyword(),
                if *scatter { " scatter" } else { "" }
            ),
            Op::Arith { op, lhs, rhs, scatter } => format!(
                "arith @{lhs} {} @{rhs}{}",
                op.symbol(),
                if *scatter { " scatter" } else { "" }
            ),
            Op::OrderBy { input, specs } => {
                let ss: Vec<String> = specs
                    .iter()
                    .map(|s| format!("@{}{}", s.key, if s.descending { " desc" } else { "" }))
                    .collect();
                format!("order-by @{input} [{}]", ss.join(", "))
            }
            Op::Construct(c) => match c {
                PlanConstructor::Document { content } => format!("document {{ @{content} }}"),
                PlanConstructor::Text { content } => format!("text {{ @{content} }}"),
                PlanConstructor::Element { name, content } => {
                    format!("element {} {{ @{content} }}", self.dump_name(name))
                }
                PlanConstructor::Attribute { name, content } => {
                    format!("attribute {} {{ @{content} }}", self.dump_name(name))
                }
            },
            Op::Path { start, steps } => {
                let mut s = match start {
                    Some(r) => format!("path @{r}"),
                    None => "path (root)".to_string(),
                };
                for st in steps {
                    s.push_str(&format!(
                        " / {}::{} [{}{}{}]",
                        st.axis.name(),
                        self.dump_test(&st.test),
                        if st.indexed { "indexed" } else { "scan" },
                        if st.fused { ", fused //" } else { "" },
                        if st.preds.is_empty() {
                            String::new()
                        } else {
                            format!(", preds {}", Self::dump_refs(&st.preds))
                        },
                    ));
                }
                s
            }
            Op::Filter { input, pred } => format!("filter @{input} [@{pred}]"),
            Op::FunCall { name, args, user } => format!(
                "call {}({}){}",
                self.sym(*name),
                Self::dump_refs(args),
                match user {
                    Some(i) => format!(" user#{i}"),
                    None => String::new(),
                }
            ),
            Op::And(l, r) => format!("and @{l} @{r}"),
            Op::Or(l, r) => format!("or @{l} @{r}"),
            Op::Execute(pe) => {
                let ps: Vec<String> = pe
                    .params
                    .iter()
                    .map(|p| format!("${} := ${}", p.var, p.outer))
                    .collect();
                format!(
                    "execute at @{}{} params ({}){}",
                    pe.peer,
                    match &pe.literal_peer {
                        Some(p) => format!(" ({p})"),
                        None => String::new(),
                    },
                    ps.join(", "),
                    if pe.projection.is_some() { " projected" } else { "" }
                )
            }
        }
    }

    fn dump_name(&self, n: &PlanName) -> String {
        match n {
            PlanName::Static(s) => s.clone(),
            PlanName::Computed(r) => format!("{{ @{r} }}"),
        }
    }

    /// `EXPLAIN ANALYZE` output: the op listing annotated with the
    /// execution profile of one run — calls, items produced, and inclusive
    /// simulated-time attribution per op (percentages against the root
    /// op's inclusive time, which covers the whole evaluation by
    /// construction). The static index-vs-scan choice stays visible in
    /// each path op's step annotations.
    pub fn dump_analyze(&self, prof: &OpProfile) -> String {
        let total = prof.sim_ns[self.root as usize];
        let mut out = String::new();
        out.push_str(&format!(
            "plan profile: {} ops, root @{}, total sim {:?}\n",
            self.ops.len(),
            self.root,
            Duration::from_nanos(total),
        ));
        for (i, op) in self.ops.iter().enumerate() {
            let line = self.dump_op(op);
            if prof.calls[i] == 0 {
                out.push_str(&format!("{i:>4}: {line}\n      (never executed)\n"));
                continue;
            }
            let pct = if total == 0 {
                0.0
            } else {
                prof.sim_ns[i] as f64 * 100.0 / total as f64
            };
            out.push_str(&format!(
                "{i:>4}: {line}\n      calls={} items={} sim={:?} ({:.1}%)\n",
                prof.calls[i],
                prof.items[i],
                Duration::from_nanos(prof.sim_ns[i]),
                pct,
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// per-op execution profiles (EXPLAIN ANALYZE)
// ---------------------------------------------------------------------------

/// Execution profile of one plan run: per-[`Op`] counters plus inclusive
/// simulated-time attribution. Indexed like [`Plan::ops`].
///
/// Time is read from a shared simulated-clock cell (the tracer's) at op
/// entry and exit, so attribution uses exactly the timeline the executor
/// bills to the network metrics — wall-clock CPU never leaks in, which is
/// what keeps profiled chaos replays byte-identical. Re-entrant
/// activations of the same op (recursive functions, loop bodies) accrue
/// inclusive time only for the outermost activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Times each op was entered.
    pub calls: Vec<u64>,
    /// Items produced, summed over each op's successful evaluations.
    pub items: Vec<u64>,
    /// Inclusive simulated nanoseconds per op.
    pub sim_ns: Vec<u64>,
    /// Live activation count per op (recursion guard).
    active: Vec<u32>,
    /// Clock reading at each op's outermost entry.
    started: Vec<u64>,
}

impl OpProfile {
    pub fn new(ops: usize) -> OpProfile {
        OpProfile {
            calls: vec![0; ops],
            items: vec![0; ops],
            sim_ns: vec![0; ops],
            active: vec![0; ops],
            started: vec![0; ops],
        }
    }

    fn enter(&mut self, op: usize, now_ns: u64) {
        self.calls[op] += 1;
        if self.active[op] == 0 {
            self.started[op] = now_ns;
        }
        self.active[op] += 1;
    }

    fn exit(&mut self, op: usize, now_ns: u64, items: Option<u64>) {
        self.active[op] -= 1;
        if self.active[op] == 0 {
            self.sim_ns[op] += now_ns.saturating_sub(self.started[op]);
        }
        if let Some(n) = items {
            self.items[op] += n;
        }
    }

    /// Inclusive simulated time of `op`.
    pub fn op_ns(&self, op: OpRef) -> u64 {
        self.sim_ns[op as usize]
    }
}

/// The evaluator-side profiling hook: where the per-op counters accrue and
/// which simulated clock they read. Cheap to clone (two pointers); absent
/// on unprofiled runs so the fast path stays a single branch.
#[derive(Clone)]
pub struct ProfileHook {
    pub data: Rc<RefCell<OpProfile>>,
    /// Shared simulated-clock cell — the tracer's, when tracing is on.
    pub clock: Arc<AtomicU64>,
}

// ---------------------------------------------------------------------------
// Compiler: AST → plan
// ---------------------------------------------------------------------------

/// Builtins whose result is a pure function of their arguments and the
/// static context — eligible for compile-time constant folding. Everything
/// touching the store, the resolver or the dynamic context (`doc`, `root`,
/// `id`, `base-uri`, `name`, `position`, …) is excluded.
const PURE_BUILTINS: &[&str] = &[
    "true", "false", "not", "boolean", "string", "data", "number", "count", "empty", "exists",
    "concat", "string-join", "contains", "starts-with", "ends-with", "string-length", "substring",
    "substring-before", "substring-after", "upper-case", "lower-case", "normalize-space",
    "translate", "tokenize", "abs", "floor", "ceiling", "round", "sum", "avg", "min", "max",
    "distinct-values", "reverse", "subsequence", "insert-before", "remove", "index-of", "head",
    "tail", "exactly-one", "zero-or-one", "static-base-uri", "default-collation",
    "current-dateTime", "xqd:distinct-keys",
];

fn is_pure_builtin(name: &str) -> bool {
    let bare = name.strip_prefix("fn:").unwrap_or(name);
    PURE_BUILTINS.contains(&bare)
}

/// Is `e` a compile-time constant: built from literals via operators and
/// pure builtins only? (Constant *candidates* — a candidate only folds if
/// it also evaluates without error.)
fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Empty => true,
        Expr::Sequence(es) => es.iter().all(is_const),
        Expr::If { cond, then, els } => is_const(cond) && is_const(then) && is_const(els),
        Expr::And(l, r) | Expr::Or(l, r) => is_const(l) && is_const(r),
        Expr::Comparison { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
            is_const(lhs) && is_const(rhs)
        }
        Expr::FunCall { name, args } => is_pure_builtin(name) && args.iter().all(is_const),
        _ => false,
    }
}

struct Compiler<'c> {
    ops: Vec<Op>,
    syms: Vec<String>,
    sym_ids: HashMap<String, SymId>,
    functions: &'c [FunctionDef],
    use_indexes: bool,
    static_ctx: StaticContext,
    consts_folded: u32,
}

impl<'c> Compiler<'c> {
    fn sym(&mut self, s: &str) -> SymId {
        if let Some(&id) = self.sym_ids.get(s) {
            return id;
        }
        let id = self.syms.len() as SymId;
        self.syms.push(s.to_string());
        self.sym_ids.insert(s.to_string(), id);
        id
    }

    fn push(&mut self, op: Op) -> OpRef {
        self.ops.push(op);
        (self.ops.len() - 1) as OpRef
    }

    /// Pre-evaluates a constant subexpression with a throwaway evaluator
    /// under the compile-time static context. Only an `Ok` result folds:
    /// erroring expressions (`1 div 0`) are lowered unfolded so the error
    /// surfaces at runtime exactly where the interpreter raises it.
    fn try_fold(&mut self, e: &Expr) -> Option<Sequence> {
        if !is_const(e) {
            return None;
        }
        let mut store = Store::new();
        let mut resolver = LocalResolver;
        let mut ev = Evaluator::new(&mut store, &[], &mut resolver)
            .with_static_context(self.static_ctx.clone());
        let folded = ev.eval(e).ok()?;
        // const expressions cannot construct nodes, but keep the invariant
        // explicit: a NodeId would dangle outside the throwaway store
        if folded.iter().any(|i| matches!(i, Item::Node(_))) {
            return None;
        }
        Some(folded)
    }

    fn compile(&mut self, e: &Expr) -> OpRef {
        match e {
            Expr::Literal(a) => {
                return self.push(Op::Const(Sequence::unit(Item::Atom(a.clone()))))
            }
            Expr::Empty => return self.push(Op::Const(Sequence::new())),
            _ => {}
        }
        if let Some(seq) = self.try_fold(e) {
            self.consts_folded += 1;
            return self.push(Op::Const(seq));
        }
        match e {
            Expr::Literal(_) | Expr::Empty => unreachable!("handled above"),
            Expr::Sequence(es) => {
                let scatter = sequence_scatter(es);
                let mut items = Vec::with_capacity(es.len());
                for x in es {
                    items.push(self.compile(x));
                }
                self.push(Op::Seq { items, scatter })
            }
            Expr::VarRef(v) => {
                let s = self.sym(v);
                self.push(Op::VarRef(s))
            }
            Expr::ContextItem => self.push(Op::ContextItem),
            Expr::For { var, seq, ret } => {
                let var = self.sym(var);
                let seq = self.compile(seq);
                let (ret, bulk) = self.compile_for_ret(ret);
                self.push(Op::For { var, seq, ret, bulk })
            }
            Expr::Let { .. } => self.compile_let(e),
            Expr::If { cond, then, els } => {
                let cond = self.compile(cond);
                let then = self.compile(then);
                let els = self.compile(els);
                self.push(Op::If { cond, then, els })
            }
            Expr::Typeswitch { input, cases, default_var, default } => {
                let input = self.compile(input);
                let mut pcases = Vec::with_capacity(cases.len());
                for c in cases {
                    let var = self.sym(&c.var);
                    let body = self.compile(&c.body);
                    pcases.push(PlanCase { var, seq_type: c.seq_type.clone(), body });
                }
                let default_var = self.sym(default_var);
                let default = self.compile(default);
                self.push(Op::Typeswitch { input, cases: pcases, default_var, default })
            }
            Expr::Comparison { op, lhs, rhs } => {
                let scatter = binary_scatter(lhs, rhs);
                let lhs = self.compile(lhs);
                let rhs = self.compile(rhs);
                self.push(Op::Comparison { op: *op, lhs, rhs, scatter })
            }
            Expr::NodeComparison { op, lhs, rhs } => {
                let scatter = binary_scatter(lhs, rhs);
                let lhs = self.compile(lhs);
                let rhs = self.compile(rhs);
                self.push(Op::NodeComparison { op: *op, lhs, rhs, scatter })
            }
            Expr::NodeSet { op, lhs, rhs } => {
                let scatter = binary_scatter(lhs, rhs);
                let lhs = self.compile(lhs);
                let rhs = self.compile(rhs);
                self.push(Op::NodeSet { op: *op, lhs, rhs, scatter })
            }
            Expr::Arith { op, lhs, rhs } => {
                let scatter = binary_scatter(lhs, rhs);
                let lhs = self.compile(lhs);
                let rhs = self.compile(rhs);
                self.push(Op::Arith { op: *op, lhs, rhs, scatter })
            }
            Expr::OrderBy { input, specs } => {
                let input = self.compile(input);
                let mut pspecs = Vec::with_capacity(specs.len());
                for s in specs {
                    let key = self.compile(&s.key);
                    pspecs.push(PlanOrderSpec { key, descending: s.descending });
                }
                self.push(Op::OrderBy { input, specs: pspecs })
            }
            Expr::Construct(c) => {
                let pc = self.compile_constructor(c);
                self.push(Op::Construct(pc))
            }
            Expr::Path { start, steps } => {
                let start = start.as_ref().map(|s| self.compile(s));
                let steps = self.compile_steps(steps);
                self.push(Op::Path { start, steps })
            }
            Expr::Filter { input, predicate } => {
                let input = self.compile(input);
                let pred = self.compile(predicate);
                self.push(Op::Filter { input, pred })
            }
            Expr::FunCall { name, args } => {
                let user = self.functions.iter().position(|f| f.name == *name).map(|i| i as u32);
                let name = self.sym(name);
                let mut cargs = Vec::with_capacity(args.len());
                for a in args {
                    cargs.push(self.compile(a));
                }
                self.push(Op::FunCall { name, args: cargs, user })
            }
            Expr::And(l, r) => {
                let l = self.compile(l);
                let r = self.compile(r);
                self.push(Op::And(l, r))
            }
            Expr::Or(l, r) => {
                let l = self.compile(l);
                let r = self.compile(r);
                self.push(Op::Or(l, r))
            }
            Expr::Execute { .. } => self.compile_execute(e),
        }
    }

    /// A `Let` node: the scatter-chain detection runs here at compile time
    /// with the same predicate the interpreter applies per evaluation.
    fn compile_let(&mut self, e: &Expr) -> OpRef {
        if let Some(chain) = let_scatter(e) {
            let mut binds = Vec::with_capacity(chain.binds.len());
            for (v, exec) in &chain.binds {
                let s = self.sym(v);
                let op = self.compile_execute(exec);
                binds.push((s, op));
            }
            let tail = self.compile(chain.tail);
            return self.push(Op::LetScatter { binds, tail });
        }
        let Expr::Let { var, value, ret } = e else { unreachable!("compile_let takes Let") };
        let var = self.sym(var);
        let value = self.compile(value);
        let ret = self.compile(ret);
        self.push(Op::Let { var, value, ret })
    }

    /// The return clause of a `for`: when it matches the Bulk-RPC shape
    /// (local lets ending in an `Execute` at a literal peer), record the
    /// shape alongside the plain compiled chain. The plain chain is the
    /// no-remote fallback and shares the very same value ops.
    fn compile_for_ret(&mut self, ret: &Expr) -> (OpRef, Option<PlanBulk>) {
        if bulk_pattern(ret).is_none() {
            return (self.compile(ret), None);
        }
        let mut lets: Vec<(SymId, OpRef)> = Vec::new();
        let mut cur = ret;
        while let Expr::Let { var, value, ret } = cur {
            let s = self.sym(var);
            let v = self.compile(value);
            lets.push((s, v));
            cur = ret;
        }
        let exec = self.compile_execute(cur);
        let mut chain = exec;
        for &(var, value) in lets.iter().rev() {
            chain = self.push(Op::Let { var, value, ret: chain });
        }
        (chain, Some(PlanBulk { lets, exec }))
    }

    fn compile_execute(&mut self, e: &Expr) -> OpRef {
        let Expr::Execute { peer, params, body, projection } = e else {
            unreachable!("compile_execute takes Execute")
        };
        let literal_peer = match peer.as_ref() {
            Expr::Literal(a) => Some(a.to_lexical()),
            _ => None,
        };
        let peer = self.compile(peer);
        self.push(Op::Execute(Box::new(PlanExec {
            peer,
            literal_peer,
            params: params.clone(),
            body: body.clone(),
            projection: projection.clone(),
        })))
    }

    fn compile_constructor(&mut self, c: &Constructor) -> PlanConstructor {
        match c {
            Constructor::Document { content } => {
                PlanConstructor::Document { content: self.compile(content) }
            }
            Constructor::Text { content } => {
                PlanConstructor::Text { content: self.compile(content) }
            }
            Constructor::Element { name, content } => {
                let name = self.compile_elem_name(name);
                PlanConstructor::Element { name, content: self.compile(content) }
            }
            Constructor::Attribute { name, content } => {
                let name = self.compile_elem_name(name);
                PlanConstructor::Attribute { name, content: self.compile(content) }
            }
        }
    }

    fn compile_elem_name(&mut self, n: &ElemName) -> PlanName {
        match n {
            ElemName::Static(s) => PlanName::Static(s.clone()),
            ElemName::Computed(e) => PlanName::Computed(self.compile(e)),
        }
    }

    /// Lowers the steps of a path, baking the indexed-vs-scan choice per
    /// step and collapsing the `//n` expansion into one indexed
    /// `descendant::n` — the same two decisions `Evaluator::eval_path`
    /// makes per evaluation.
    fn compile_steps(&mut self, steps: &[Step]) -> Vec<PlanStep> {
        let mut out = Vec::with_capacity(steps.len());
        let mut i = 0;
        while i < steps.len() {
            let step = &steps[i];
            if self.use_indexes
                && step.axis == Axis::DescendantOrSelf
                && matches!(step.test, NameTest::AnyKind)
                && step.predicates.is_empty()
            {
                if let Some(next) = steps.get(i + 1) {
                    if next.axis == Axis::Child
                        && matches!(next.test, NameTest::Name(_))
                        && next.predicates.is_empty()
                    {
                        let NameTest::Name(name) = &next.test else { unreachable!() };
                        let s = self.sym(name);
                        out.push(PlanStep {
                            axis: Axis::Descendant,
                            test: PlanTest::Named(s),
                            preds: Vec::new(),
                            indexed: true,
                            fused: true,
                        });
                        i += 2;
                        continue;
                    }
                }
            }
            let indexed = self.use_indexes
                && step.predicates.is_empty()
                && matches!(
                    step.axis,
                    Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute
                )
                && matches!(step.test, NameTest::Name(_));
            let test = match &step.test {
                NameTest::Name(n) => PlanTest::Named(self.sym(n)),
                NameTest::Wildcard => PlanTest::Wildcard,
                NameTest::AnyKind => PlanTest::AnyKind,
                NameTest::Text => PlanTest::Text,
                NameTest::Comment => PlanTest::Comment,
            };
            let mut preds = Vec::with_capacity(step.predicates.len());
            for p in &step.predicates {
                preds.push(self.compile(p));
            }
            out.push(PlanStep { axis: step.axis, test, preds, indexed, fused: false });
            i += 1;
        }
        out
    }
}

/// Compiles a module (function declarations + body) into a [`Plan`].
///
/// `use_indexes` bakes the per-step index strategy; `static_ctx` is the
/// context constants fold under — both are part of the plan-cache key, so
/// a cached plan is only ever replayed under the context it was built for.
pub fn compile_module(
    functions: &[FunctionDef],
    body: &Expr,
    use_indexes: bool,
    static_ctx: &StaticContext,
) -> Plan {
    let mut c = Compiler {
        ops: Vec::new(),
        syms: Vec::new(),
        sym_ids: HashMap::new(),
        functions,
        use_indexes,
        static_ctx: static_ctx.clone(),
        consts_folded: 0,
    };
    let mut funcs = Vec::with_capacity(functions.len());
    for f in functions {
        let name = c.sym(&f.name);
        let params = f.params.iter().map(|(p, _)| c.sym(p)).collect();
        let body = c.compile(&f.body);
        funcs.push(PlanFunc { name, params, body });
    }
    let root = c.compile(body);
    Plan {
        ops: c.ops,
        root,
        funcs,
        syms: c.syms,
        use_indexes,
        scatter_rounds: crate::eval::scatter_rounds(body),
        routes: Vec::new(),
        semijoins: Vec::new(),
        consts_folded: c.consts_folded,
    }
}

/// [`compile_module`] over a parsed [`QueryModule`].
pub fn compile_query(module: &QueryModule, use_indexes: bool, static_ctx: &StaticContext) -> Plan {
    compile_module(&module.functions, &module.body, use_indexes, static_ctx)
}

// ---------------------------------------------------------------------------
// Plan evaluator
// ---------------------------------------------------------------------------

/// Per-run cache mapping plan symbols to the executing store's interned
/// [`NameId`]s. A hit is cached for the rest of the run (interned ids are
/// immutable), but a miss is re-probed on every use: node constructors can
/// intern new names mid-run, exactly as the interpreter observes when it
/// re-resolves QNames per step.
struct NameCache(Vec<Option<NameId>>);

impl NameCache {
    fn new(n: usize) -> Self {
        NameCache(vec![None; n])
    }

    fn resolve(&mut self, syms: &[String], store: &Store, sym: SymId) -> Option<NameId> {
        if let Some(id) = self.0[sym as usize] {
            return Some(id);
        }
        let id = store.names.get(&syms[sym as usize])?;
        self.0[sym as usize] = Some(id);
        Some(id)
    }
}

/// The compiled engine reuses the interpreter's `Evaluator` state wholesale
/// (environment, context stack, scratch buffers, hooks); every arm below
/// mirrors the corresponding `Evaluator::eval` arm op-for-op so results,
/// errors and remote messages stay bit-identical.
impl<'a> Evaluator<'a> {
    /// Single dispatch point of the compiled engine. When a [`ProfileHook`]
    /// is attached, wraps the real dispatch with per-op accounting — one
    /// branch and no other work on unprofiled runs.
    fn eval_op(&mut self, plan: &Plan, nc: &mut NameCache, op: OpRef) -> EvalResult {
        let Some(hook) = self.profile.clone() else {
            return self.eval_op_inner(plan, nc, op);
        };
        hook.data.borrow_mut().enter(op as usize, hook.clock.load(Ordering::SeqCst));
        let result = self.eval_op_inner(plan, nc, op);
        hook.data.borrow_mut().exit(
            op as usize,
            hook.clock.load(Ordering::SeqCst),
            result.as_ref().ok().map(|seq| seq.len() as u64),
        );
        result
    }

    fn eval_op_inner(&mut self, plan: &Plan, nc: &mut NameCache, op: OpRef) -> EvalResult {
        match plan.op(op) {
            Op::Const(seq) => Ok(seq.clone()),
            Op::VarRef(v) => self.lookup(plan.sym(*v)),
            Op::ContextItem => Ok(Sequence::unit(self.context_item()?)),
            Op::Seq { items, scatter } => {
                if self.remote.is_some() {
                    if let Some(idxs) = scatter {
                        return self.eval_sequence_scatter_plan(plan, nc, items, idxs);
                    }
                }
                let mut out = Vec::new();
                for &x in items {
                    out.extend(self.eval_op(plan, nc, x)?);
                }
                Ok(out.into())
            }
            Op::For { var, seq, ret, bulk } => {
                let input = self.eval_op(plan, nc, *seq)?;
                if self.remote.is_some() {
                    if let Some(b) = bulk {
                        return self.eval_bulk_for_plan(plan, nc, *var, input, b);
                    }
                }
                let mut out = Vec::new();
                for item in input.iter() {
                    self.env.push((plan.sym(*var).to_string(), Sequence::unit(item.clone())));
                    let r = self.eval_op(plan, nc, *ret);
                    self.env.pop();
                    out.extend(r?);
                }
                Ok(out.into())
            }
            Op::Let { var, value, ret } => {
                let v = self.eval_op(plan, nc, *value)?;
                self.env.push((plan.sym(*var).to_string(), v));
                let r = self.eval_op(plan, nc, *ret);
                self.env.pop();
                r
            }
            Op::LetScatter { binds, tail } => {
                if self.remote.is_some() {
                    let mut calls = Vec::with_capacity(binds.len());
                    for (_, exec) in binds {
                        calls.push(self.bind_scatter_call_plan(plan, *exec)?);
                    }
                    let handler =
                        self.remote.as_mut().expect("scatter path requires a handler");
                    let gathered =
                        handler.execute_scatter(self.store, &self.static_ctx, &calls)?;
                    for ((var, _), seq) in binds.iter().zip(gathered) {
                        self.env.push((plan.sym(*var).to_string(), seq));
                    }
                    let r = self.eval_op(plan, nc, *tail);
                    for _ in 0..binds.len() {
                        self.env.pop();
                    }
                    return r;
                }
                // no remote handler: the chain degrades to plain nested
                // lets, exactly as the interpreter's gate does
                let mut pushed = 0usize;
                let mut err = None;
                for (var, exec) in binds {
                    match self.eval_op(plan, nc, *exec) {
                        Ok(v) => {
                            self.env.push((plan.sym(*var).to_string(), v));
                            pushed += 1;
                        }
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                let r = match err {
                    Some(e) => Err(e),
                    None => self.eval_op(plan, nc, *tail),
                };
                for _ in 0..pushed {
                    self.env.pop();
                }
                r
            }
            Op::If { cond, then, els } => {
                let c = self.eval_op(plan, nc, *cond)?;
                if effective_boolean_value(&c)? {
                    self.eval_op(plan, nc, *then)
                } else {
                    self.eval_op(plan, nc, *els)
                }
            }
            Op::Typeswitch { input, cases, default_var, default } => {
                let v = self.eval_op(plan, nc, *input)?;
                for case in cases {
                    if matches_seq_type(self.store, &v, &case.seq_type) {
                        self.env.push((plan.sym(case.var).to_string(), v));
                        let r = self.eval_op(plan, nc, case.body);
                        self.env.pop();
                        return r;
                    }
                }
                self.env.push((plan.sym(*default_var).to_string(), v));
                let r = self.eval_op(plan, nc, *default);
                self.env.pop();
                r
            }
            Op::Comparison { op, lhs, rhs, scatter } => {
                let (l, r) = self.eval_operand_pair_plan(plan, nc, *lhs, *rhs, *scatter)?;
                let b = general_compare(self.store, *op, &l, &r)?;
                Ok(Sequence::unit(Item::Atom(Atomic::Bool(b))))
            }
            Op::NodeComparison { op, lhs, rhs, scatter } => {
                let (l, r) = self.eval_operand_pair_plan(plan, nc, *lhs, *rhs, *scatter)?;
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::new());
                }
                let ln = single_node(&l, "node comparison")?;
                let rn = single_node(&r, "node comparison")?;
                let b = match op {
                    NodeCompOp::Is => ln == rn,
                    NodeCompOp::Before => ln < rn,
                    NodeCompOp::After => ln > rn,
                };
                Ok(Sequence::unit(Item::Atom(Atomic::Bool(b))))
            }
            Op::NodeSet { op, lhs, rhs, scatter } => {
                let (l, r) = self.eval_operand_pair_plan(plan, nc, *lhs, *rhs, *scatter)?;
                let (mut l, mut r) = (l.into_vec(), r.into_vec());
                sort_document_order(&mut l)?;
                sort_document_order(&mut r)?;
                let rset: std::collections::HashSet<NodeId> = r
                    .iter()
                    .map(|i| match i {
                        Item::Node(n) => *n,
                        Item::Atom(_) => unreachable!(),
                    })
                    .collect();
                let mut out = Vec::new();
                match op {
                    NodeSetOp::Union => {
                        out = l;
                        out.extend(r);
                        sort_document_order(&mut out)?;
                    }
                    NodeSetOp::Intersect => {
                        for i in l {
                            if matches!(&i, Item::Node(n) if rset.contains(n)) {
                                out.push(i);
                            }
                        }
                    }
                    NodeSetOp::Except => {
                        for i in l {
                            if matches!(&i, Item::Node(n) if !rset.contains(n)) {
                                out.push(i);
                            }
                        }
                    }
                }
                Ok(out.into())
            }
            Op::Arith { op, lhs, rhs, scatter } => {
                let (l, r) = self.eval_operand_pair_plan(plan, nc, *lhs, *rhs, *scatter)?;
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::new());
                }
                let la = atomize(self.store, &l);
                let ra = atomize(self.store, &r);
                if la.len() != 1 || ra.len() != 1 {
                    return Err(EvalError::new("arithmetic on a multi-item sequence"));
                }
                let a = to_number(&la[0])
                    .ok_or_else(|| EvalError::new("left operand is not numeric"))?;
                let b = to_number(&ra[0])
                    .ok_or_else(|| EvalError::new("right operand is not numeric"))?;
                let result = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => {
                        if b == 0.0 {
                            return Err(EvalError::new("division by zero"));
                        }
                        a / b
                    }
                    ArithOp::Mod => {
                        if b == 0.0 {
                            return Err(EvalError::new("modulo by zero"));
                        }
                        a % b
                    }
                };
                let int_inputs = matches!((&la[0], &ra[0]), (Atomic::Int(_), Atomic::Int(_)))
                    && *op != ArithOp::Div;
                Ok(Sequence::unit(Item::Atom(if int_inputs && result.fract() == 0.0 {
                    Atomic::Int(result as i64)
                } else {
                    Atomic::Dbl(result)
                })))
            }
            Op::OrderBy { input, specs } => self.eval_order_by_plan(plan, nc, *input, specs),
            Op::Construct(c) => self.eval_constructor_plan(plan, nc, c),
            Op::Path { start, steps } => self.eval_path_plan(plan, nc, *start, steps),
            Op::Filter { input, pred } => {
                let input = self.eval_op(plan, nc, *input)?;
                Ok(self.apply_predicate_plan(plan, nc, &input, *pred)?.into())
            }
            Op::FunCall { name, args, user } => self.eval_funcall_plan(plan, nc, *name, args, *user),
            Op::And(l, r) => {
                let lv = self.eval_op(plan, nc, *l)?;
                if !effective_boolean_value(&lv)? {
                    return Ok(Sequence::unit(Item::Atom(Atomic::Bool(false))));
                }
                let rv = self.eval_op(plan, nc, *r)?;
                Ok(Sequence::unit(Item::Atom(Atomic::Bool(effective_boolean_value(&rv)?))))
            }
            Op::Or(l, r) => {
                let lv = self.eval_op(plan, nc, *l)?;
                if effective_boolean_value(&lv)? {
                    return Ok(Sequence::unit(Item::Atom(Atomic::Bool(true))));
                }
                let rv = self.eval_op(plan, nc, *r)?;
                Ok(Sequence::unit(Item::Atom(Atomic::Bool(effective_boolean_value(&rv)?))))
            }
            Op::Execute(pe) => self.eval_execute_plan(plan, nc, pe),
        }
    }

    fn eval_execute_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        pe: &PlanExec,
    ) -> EvalResult {
        let peer_seq = self.eval_op(plan, nc, pe.peer)?;
        let peer_uri = match peer_seq.as_slice() {
            [item] => string_value(self.store, item),
            _ => return Err(EvalError::new("execute at peer must be a single item")),
        };
        let mut bound = Vec::with_capacity(pe.params.len());
        for p in &pe.params {
            bound.push((p.var.clone(), self.lookup(&p.outer)?));
        }
        match &mut self.remote {
            Some(handler) => handler.execute(
                self.store,
                &self.static_ctx,
                &peer_uri,
                &bound,
                &pe.body,
                pe.projection.as_deref(),
            ),
            None => Err(EvalError::new(
                "execute at: no remote handler configured (local-only evaluator)",
            )),
        }
    }

    /// Mirror of `bind_scatter_call` over a compiled `Op::Execute`.
    fn bind_scatter_call_plan<'p>(
        &self,
        plan: &'p Plan,
        exec: OpRef,
    ) -> EvalResult<ScatterCall<'p>> {
        let Op::Execute(pe) = plan.op(exec) else {
            unreachable!("scatter detection only selects Execute expressions");
        };
        let peer =
            pe.literal_peer.clone().expect("scatter detection requires a literal peer");
        let mut bound = Vec::with_capacity(pe.params.len());
        for p in &pe.params {
            bound.push((p.var.clone(), self.lookup(&p.outer)?));
        }
        Ok(ScatterCall { peer, params: bound, body: &pe.body, projection: pe.projection.as_deref() })
    }

    fn eval_sequence_scatter_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        items: &[OpRef],
        idxs: &[usize],
    ) -> EvalResult {
        let mut calls = Vec::with_capacity(idxs.len());
        for &i in idxs {
            calls.push(self.bind_scatter_call_plan(plan, items[i])?);
        }
        let handler = self.remote.as_mut().expect("scatter path requires a handler");
        let gathered = handler.execute_scatter(self.store, &self.static_ctx, &calls)?;
        let mut by_idx: Vec<Option<Sequence>> = vec![None; items.len()];
        for (&i, seq) in idxs.iter().zip(gathered) {
            by_idx[i] = Some(seq);
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            match by_idx[i].take() {
                Some(seq) => out.extend(seq),
                None => out.extend(self.eval_op(plan, nc, x)?),
            }
        }
        Ok(out.into())
    }

    /// Mirror of `eval_operand_pair`: both operands of a binary op fan out
    /// as a two-call scatter round when the compile-time flag is set and a
    /// remote handler is attached.
    fn eval_operand_pair_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        lhs: OpRef,
        rhs: OpRef,
        scatter: bool,
    ) -> EvalResult<(Sequence, Sequence)> {
        let fan_out = scatter && self.remote.is_some();
        if fan_out {
            let calls = vec![
                self.bind_scatter_call_plan(plan, lhs)?,
                self.bind_scatter_call_plan(plan, rhs)?,
            ];
            let handler = self.remote.as_mut().expect("scatter path requires a handler");
            let mut gathered = handler.execute_scatter(self.store, &self.static_ctx, &calls)?;
            let r = gathered.pop().expect("two results for two calls");
            let l = gathered.pop().expect("two results for two calls");
            return Ok((l, r));
        }
        Ok((self.eval_op(plan, nc, lhs)?, self.eval_op(plan, nc, rhs)?))
    }

    /// Mirror of `eval_bulk_for`: one Bulk RPC for the whole loop, with the
    /// identical per-iteration binding and error-unwinding order.
    fn eval_bulk_for_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        var: SymId,
        input: Sequence,
        b: &PlanBulk,
    ) -> EvalResult {
        let Op::Execute(pe) = plan.op(b.exec) else {
            unreachable!("bulk detection records an Execute op");
        };
        let peer = pe.literal_peer.as_deref().expect("bulk detection requires a literal peer");
        let mut calls: Vec<Vec<(String, Sequence)>> = Vec::with_capacity(input.len());
        for item in input.iter() {
            self.env.push((plan.sym(var).to_string(), Sequence::unit(item.clone())));
            let mut pushed = 1usize;
            let mut bound: EvalResult<Vec<(String, Sequence)>> = Ok(Vec::new());
            for (lv, lval) in &b.lets {
                match self.eval_op(plan, nc, *lval) {
                    Ok(v) => {
                        self.env.push((plan.sym(*lv).to_string(), v));
                        pushed += 1;
                    }
                    Err(e) => {
                        bound = Err(e);
                        break;
                    }
                }
            }
            if bound.is_ok() {
                let mut params = Vec::with_capacity(pe.params.len());
                for p in &pe.params {
                    match self.lookup(&p.outer) {
                        Ok(v) => params.push((p.var.clone(), v)),
                        Err(e) => {
                            bound = Err(e);
                            break;
                        }
                    }
                }
                if bound.is_ok() {
                    bound = Ok(params);
                }
            }
            for _ in 0..pushed {
                self.env.pop();
            }
            calls.push(bound?);
        }
        let handler = self.remote.as_mut().expect("bulk path requires a handler");
        let results = handler.execute_bulk(
            self.store,
            &self.static_ctx,
            peer,
            &calls,
            &pe.body,
            pe.projection.as_deref(),
        )?;
        Ok(results.into_iter().flatten().collect())
    }

    fn eval_order_by_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        input: OpRef,
        specs: &[PlanOrderSpec],
    ) -> EvalResult {
        let items = self.eval_op(plan, nc, input)?;
        let mut keyed: Vec<(Vec<Option<Atomic>>, usize, Item)> = Vec::with_capacity(items.len());
        for (i, item) in items.into_iter().enumerate() {
            let mut keys = Vec::with_capacity(specs.len());
            self.context.push(item.clone());
            for spec in specs {
                let k = self.eval_op(plan, nc, spec.key);
                match k {
                    Ok(seq) => {
                        let atoms = atomize(self.store, &seq);
                        keys.push(atoms.into_iter().next());
                    }
                    Err(e) => {
                        self.context.pop();
                        return Err(e);
                    }
                }
            }
            self.context.pop();
            keyed.push((keys, i, item));
        }
        keyed.sort_by(|(ka, ia, _), (kb, ib, _)| {
            for (idx, spec) in specs.iter().enumerate() {
                let ord = compare_order_keys(&ka[idx], &kb[idx]);
                let ord = if spec.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            ia.cmp(ib) // stable
        });
        Ok(keyed.into_iter().map(|(_, _, item)| item).collect())
    }

    fn eval_constructor_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        c: &PlanConstructor,
    ) -> EvalResult {
        use xqd_xml::DocBuilder;
        match c {
            PlanConstructor::Element { name, content } => {
                let name = self.constructor_name_plan(plan, nc, name)?;
                let content = self.eval_op(plan, nc, *content)?;
                let mut b = DocBuilder::new(None);
                b.start_element(&name);
                self.append_content(&mut b, &content)?;
                b.end_element();
                let doc = self.store.attach(b.finish());
                Ok(Sequence::unit(Item::Node(NodeId::new(doc, 1))))
            }
            PlanConstructor::Document { content } => {
                let content = self.eval_op(plan, nc, *content)?;
                let mut b = DocBuilder::new(None);
                self.append_content(&mut b, &content)?;
                let doc = self.store.attach(b.finish());
                Ok(Sequence::unit(Item::Node(NodeId::new(doc, 0))))
            }
            PlanConstructor::Text { content } => {
                let content = self.eval_op(plan, nc, *content)?;
                if content.is_empty() {
                    return Ok(Sequence::new());
                }
                let text = content
                    .iter()
                    .map(|i| string_value(self.store, i))
                    .collect::<Vec<_>>()
                    .join(" ");
                let mut b = DocBuilder::new(None);
                b.text(&text);
                let doc = self.store.attach(b.finish());
                Ok(Sequence::unit(Item::Node(NodeId::new(doc, 1))))
            }
            PlanConstructor::Attribute { name, content } => {
                let name = self.constructor_name_plan(plan, nc, name)?;
                let content = self.eval_op(plan, nc, *content)?;
                let value = content
                    .iter()
                    .map(|i| string_value(self.store, i))
                    .collect::<Vec<_>>()
                    .join(" ");
                let mut b = DocBuilder::new(None);
                b.start_element("attribute-holder");
                b.attribute(&name, &value);
                b.end_element();
                let doc = self.store.attach(b.finish());
                Ok(Sequence::unit(Item::Node(NodeId::new(doc, 2))))
            }
        }
    }

    fn constructor_name_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        name: &PlanName,
    ) -> EvalResult<String> {
        match name {
            PlanName::Static(n) => Ok(n.clone()),
            PlanName::Computed(e) => {
                let v = self.eval_op(plan, nc, *e)?;
                match v.as_slice() {
                    [item] => Ok(string_value(self.store, item)),
                    _ => Err(EvalError::new("computed constructor name must be a single item")),
                }
            }
        }
    }

    fn eval_path_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        start: Option<OpRef>,
        steps: &[PlanStep],
    ) -> EvalResult {
        let mut current: Sequence = match start {
            Some(op) => self.eval_op(plan, nc, op)?,
            None => {
                // leading "/": root of the context item's document
                let ctx = self.context_item()?;
                match ctx {
                    Item::Node(n) => Sequence::unit(Item::Node(NodeId::new(n.doc, 0))),
                    Item::Atom(_) => {
                        return Err(EvalError::new("leading / requires a node context item"))
                    }
                }
            }
        };
        for step in steps {
            if step.indexed {
                let PlanTest::Named(sym) = step.test else {
                    unreachable!("compile gates indexed steps to named tests")
                };
                // same error the scan path raises on an atomic context item
                if current.iter().any(|i| matches!(i, Item::Atom(_))) {
                    return Err(EvalError::new("axis step applied to an atomic value"));
                }
                current = match nc.resolve(&plan.syms, self.store, sym) {
                    // QName not interned in this store: matches nothing
                    None => Sequence::new(),
                    Some(id) => self.staircase_named(&current, step.axis, id)?,
                };
                continue;
            }
            let mut result: Vec<Item> = Vec::new();
            for item in current.iter() {
                let node = match item {
                    Item::Node(n) => *n,
                    Item::Atom(_) => {
                        return Err(EvalError::new("axis step applied to an atomic value"))
                    }
                };
                let candidates = self.step_candidates_plan(plan, nc, node, step)?;
                result.extend(candidates);
            }
            sort_document_order(&mut result)?;
            current = result.into();
        }
        Ok(current)
    }

    /// Mirror of `step_candidates`: the node test is re-resolved per
    /// context node (through the cache) because constructors can intern
    /// names mid-step, exactly as the interpreter observes.
    fn step_candidates_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        node: NodeId,
        step: &PlanStep,
    ) -> EvalResult<Vec<Item>> {
        let test = match step.test {
            PlanTest::Named(s) => nc
                .resolve(&plan.syms, self.store, s)
                .map(NodeTest::Name)
                .unwrap_or(NodeTest::UnknownName),
            PlanTest::Wildcard => NodeTest::Wildcard,
            PlanTest::AnyKind => NodeTest::AnyKind,
            PlanTest::Text => NodeTest::Text,
            PlanTest::Comment => NodeTest::Comment,
        };
        let mut raw = Vec::new();
        let mut reached = std::mem::take(&mut self.scratch);
        reached.clear();
        {
            let doc = self.store.doc(node.doc);
            axis_nodes(doc, node.idx, step.axis, &mut reached);
            for &r in &reached {
                if node_test_matches(doc, r, step.axis, &test) {
                    raw.push(Item::Node(NodeId::new(node.doc, r)));
                }
            }
        }
        reached.clear();
        self.scratch = reached;
        let mut filtered = raw;
        for &pred in &step.preds {
            filtered = self.apply_predicate_plan(plan, nc, &filtered, pred)?;
        }
        Ok(filtered)
    }

    /// Mirror of `apply_predicate`: numeric → positional, else EBV.
    fn apply_predicate_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        input: &[Item],
        pred: OpRef,
    ) -> EvalResult<Vec<Item>> {
        let mut out = Vec::new();
        for (i, item) in input.iter().enumerate() {
            self.context.push(item.clone());
            let v = self.eval_op(plan, nc, pred);
            self.context.pop();
            let v = v?;
            let keep = match v.as_slice() {
                [Item::Atom(a @ (Atomic::Int(_) | Atomic::Dbl(_)))] => {
                    let pos = to_number(a).unwrap();
                    (i + 1) as f64 == pos
                }
                _ => effective_boolean_value(&v)?,
            };
            if keep {
                out.push(item.clone());
            }
        }
        Ok(out)
    }

    /// Mirror of `eval_funcall`: builtins dispatch first (by name string),
    /// then the pre-resolved user function with the identical arity, depth
    /// and scoping discipline.
    fn eval_funcall_plan(
        &mut self,
        plan: &Plan,
        nc: &mut NameCache,
        name: SymId,
        args: &[OpRef],
        user: Option<u32>,
    ) -> EvalResult {
        let mut arg_values = Vec::with_capacity(args.len());
        for &a in args {
            arg_values.push(self.eval_op(plan, nc, a)?);
        }
        let name = plan.sym(name);
        if let Some(result) = builtins::eval_builtin(self, name, &arg_values)? {
            return Ok(result);
        }
        let func = user
            .map(|i| &plan.funcs[i as usize])
            .ok_or_else(|| EvalError::new(format!("unknown function {name}()")))?;
        if func.params.len() != arg_values.len() {
            return Err(EvalError::new(format!(
                "{name}() expects {} arguments, got {}",
                func.params.len(),
                arg_values.len()
            )));
        }
        if self.call_depth >= MAX_CALL_DEPTH {
            return Err(EvalError::new(format!("call depth exceeded in {name}()")));
        }
        // function bodies see only their parameters (fresh scope)
        let saved_env = std::mem::take(&mut self.env);
        let saved_ctx = std::mem::take(&mut self.context);
        for (&p, v) in func.params.iter().zip(arg_values) {
            self.env.push((plan.sym(p).to_string(), v));
        }
        self.call_depth += 1;
        let result = self.eval_op(plan, nc, func.body);
        self.call_depth -= 1;
        self.env = saved_env;
        self.context = saved_ctx;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn store_with(doc: &str) -> Store {
        let mut s = Store::new();
        xqd_xml::parse_document(&mut s, doc, Some("d.xml")).unwrap();
        s
    }

    /// Interpreter vs compiled plan over the same document, both engines'
    /// results (or errors) returned for comparison.
    fn run_both(src: &str, doc: &str, use_indexes: bool) -> (EvalResult, EvalResult) {
        let module = parse_query(src).unwrap();
        let interp = {
            let mut s = store_with(doc);
            crate::eval::eval_query_with_indexes(&mut s, &module, use_indexes)
        };
        let compiled = {
            let mut s = store_with(doc);
            let plan = compile_query(&module, use_indexes, &StaticContext::default());
            let mut resolver = LocalResolver;
            let mut ev = Evaluator::new(&mut s, &module.functions, &mut resolver)
                .with_indexes(use_indexes);
            plan.eval(&mut ev)
        };
        (interp, compiled)
    }

    const DOC: &str = r#"<root><group id="g1"><item id="k1"><v>7</v></item>
        <item id="k2"><v>12</v></item></group>
        <group id="g2"><item id="k3"><v>30</v></item><entry>x</entry></group></root>"#;

    #[test]
    fn compiled_matches_interpreter_on_core_shapes() {
        let queries = [
            "count(doc(\"d.xml\")//item)",
            "doc(\"d.xml\")//item/@id",
            "for $x in doc(\"d.xml\")//v order by $x descending return $x/text()",
            "sum(for $v in doc(\"d.xml\")//v return $v)",
            "(doc(\"d.xml\")//v)[2]",
            "count(doc(\"d.xml\")//item[v > 10])",
            "doc(\"d.xml\")//group except doc(\"d.xml\")//group[@id = \"g2\"]",
            "element out { doc(\"d.xml\")//item/@id }",
            "string-join(for $i in doc(\"d.xml\")//item return name($i), \",\")",
            "typeswitch ((doc(\"d.xml\")//item)[1]) case $e as element(item) \
             return name($e) default $d return \"none\"",
            "declare function f($n as node()) as xs:string { name($n) }; \
             for $g in doc(\"d.xml\")//group return f($g)",
            "some $x in doc(\"d.xml\")//item satisfies $x/@id = \"k2\"",
            "(doc(\"d.xml\")//item)[1] << (doc(\"d.xml\")//item)[2]",
        ];
        for q in queries {
            for idx in [true, false] {
                let (interp, compiled) = run_both(q, DOC, idx);
                assert_eq!(
                    format!("{interp:?}"),
                    format!("{compiled:?}"),
                    "engines diverged on {q} (indexes={idx})"
                );
            }
        }
    }

    #[test]
    fn errors_match_verbatim() {
        let cases = [
            "1 div 0",
            "nosuchfn(1)",
            "count(1, 2)",     // wrong builtin arity -> unknown function
            "sum(doc(\"d.xml\")//item) + missing()",
            "(1)/child::a",    // axis step on an atomic
            "declare function g($a) { g($a) }; g(1)", // depth exceeded
        ];
        for q in cases {
            let (interp, compiled) = run_both(q, DOC, true);
            assert_eq!(
                interp.unwrap_err(),
                compiled.unwrap_err(),
                "error divergence on {q}"
            );
        }
    }

    #[test]
    fn constants_fold_to_single_op() {
        let module = parse_query("1 + 2 * 3").unwrap();
        let plan = compile_query(&module, true, &StaticContext::default());
        assert_eq!(plan.consts_folded, 1, "one folded root constant");
        assert_eq!(plan.ops.len(), 1);
        assert!(matches!(plan.op(plan.root), Op::Const(s) if s.len() == 1));
    }

    #[test]
    fn erroring_constant_is_not_folded() {
        let module = parse_query("1 div 0").unwrap();
        let plan = compile_query(&module, true, &StaticContext::default());
        assert_eq!(plan.consts_folded, 0);
        assert!(matches!(plan.op(plan.root), Op::Arith { .. }));
    }

    #[test]
    fn static_context_constants_fold() {
        let module = parse_query("concat(static-base-uri(), \"!\")").unwrap();
        let ctx =
            StaticContext { base_uri: "http://example.org/q".into(), ..Default::default() };
        let plan = compile_query(&module, true, &ctx);
        assert_eq!(plan.consts_folded, 1);
        let Op::Const(seq) = plan.op(plan.root) else { panic!("expected folded const") };
        assert_eq!(
            format!("{seq:?}"),
            "[Atom(Str(\"http://example.org/q!\"))]"
        );
    }

    #[test]
    fn index_strategy_is_baked_per_step() {
        let module = parse_query("doc(\"d.xml\")//item[v > 5]/child::v").unwrap();
        let plan = compile_query(&module, true, &StaticContext::default());
        let path = plan
            .ops
            .iter()
            .find_map(|op| match op {
                Op::Path { steps, .. } if steps.len() > 1 => Some(steps),
                _ => None,
            })
            .expect("the outer multi-step path op");
        // //item[v > 5] cannot fuse (predicate) -> descendant-or-self scan,
        // then predicated child::item scan, then indexed child::v
        assert!(path.iter().any(|s| s.indexed && !s.fused), "child::v should be indexed");
        assert!(path.iter().any(|s| !s.indexed), "predicated step must scan");

        let nofuse = compile_query(&module, false, &StaticContext::default());
        for op in &nofuse.ops {
            if let Op::Path { steps, .. } = op {
                assert!(
                    steps.iter().all(|s| !s.indexed && !s.fused),
                    "indexes off must compile every step as a scan"
                );
            }
        }
    }

    #[test]
    fn descendant_fusion_is_baked() {
        let module = parse_query("doc(\"d.xml\")//item").unwrap();
        let plan = compile_query(&module, true, &StaticContext::default());
        let fused: Vec<&PlanStep> = plan
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Path { steps, .. } => Some(steps.iter().filter(|s| s.fused)),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(fused.len(), 1, "//item collapses into one fused step");
        assert_eq!(fused[0].axis, Axis::Descendant);
        assert!(fused[0].indexed);
    }

    #[test]
    fn names_resolve_lazily_for_constructed_docs() {
        // "made" is interned only when the constructor runs; the compiled
        // plan must still find the constructed element afterwards
        let q = "count(element wrap { element made { } }//made)";
        let (interp, compiled) = run_both(q, DOC, true);
        assert_eq!(format!("{interp:?}"), format!("{compiled:?}"));
        assert_eq!(format!("{compiled:?}"), "Ok([Atom(Int(1))])");
    }

    #[test]
    fn dump_lists_ops_and_step_strategies() {
        let module = parse_query("doc(\"d.xml\")//item[v > 5]").unwrap();
        let plan = compile_query(&module, true, &StaticContext::default());
        let dump = plan.dump();
        assert!(dump.contains("plan:"), "{dump}");
        assert!(dump.contains("[scan"), "scan strategy shown: {dump}");
        assert!(dump.contains("call doc"), "{dump}");
        assert!(dump.contains("root: @"), "{dump}");
    }

    #[test]
    fn scatter_rounds_recorded_in_plan() {
        let q = "let $a := execute at { \"p1\" } params () { 1 } \
                 let $b := execute at { \"p2\" } params () { 2 } \
                 return ($a, $b)";
        let module = parse_query(q).unwrap();
        let plan = compile_query(&module, true, &StaticContext::default());
        assert_eq!(plan.scatter_rounds, vec![2]);
        assert!(
            plan.ops.iter().any(|op| matches!(op, Op::LetScatter { binds, .. } if binds.len() == 2)),
            "let-chain compiles to a scatter op:\n{}",
            plan.dump()
        );
    }

    #[test]
    fn bulk_shape_recorded_on_for() {
        let q = "for $x in (1, 2) return execute at { \"p1\" } params () { 0 }";
        let module = parse_query(q).unwrap();
        let plan = compile_query(&module, true, &StaticContext::default());
        assert!(
            plan.ops.iter().any(|op| matches!(op, Op::For { bulk: Some(_), .. })),
            "bulk shape detected at compile time:\n{}",
            plan.dump()
        );
    }
}
