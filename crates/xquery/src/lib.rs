//! # xqd-xquery — the XQuery (extended XCore) engine
//!
//! Lexer, parser, normalizer and evaluator for the XCore dialect of Table II
//! of *"Efficient Distribution of Full-Fledged XQuery"* (ICDE 2009), plus
//! the XRPC extension rules 27–28 (`execute at`).
//!
//! The engine is deliberately **network-agnostic**: `fn:doc` resolution and
//! `execute at` dispatch go through the [`eval::DocResolver`] and
//! [`eval::RemoteHandler`] traits, which `xqd-xrpc` implements with the
//! paper's three message-passing semantics (pass-by-value, pass-by-fragment,
//! pass-by-projection). Running the same evaluator over shipped fragments is
//! what makes the paper's semantic Problems 1–5 faithfully observable.
//!
//! ```
//! use xqd_xml::Store;
//! use xqd_xquery::{parse_query, eval_query};
//!
//! let mut store = Store::new();
//! xqd_xml::parse_document(&mut store, "<people><p age='30'/><p age='50'/></people>",
//!                         Some("people.xml")).unwrap();
//! let q = parse_query("count(doc(\"people.xml\")//p[@age < 40])").unwrap();
//! let result = eval_query(&mut store, &q).unwrap();
//! assert_eq!(format!("{result:?}"), "[Atom(Int(1))]");
//! ```

pub mod ast;
pub mod builtins;
pub mod compile;
pub mod eval;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod value;

pub use ast::{Atomic, Expr, FunctionDef, QueryModule, XrpcParam};
pub use compile::{
    compile_module, compile_query, Op, OpProfile, OpRef, Plan, PlanRoute, PlanSemijoin, PlanStep,
    ProfileHook, SymId,
};
pub use eval::{
    eval_query, eval_query_with_indexes, scatter_rounds, DocResolver, Evaluator, LocalResolver,
    RemoteHandler, ScatterCall, StaticContext,
};
pub use normalize::{free_vars, inline_functions, lower_filters, normalize, rename_var};
pub use parser::{parse_expr_str, parse_query, ParseError};
pub use value::{
    deep_equal, effective_boolean_value, EvalError, EvalResult, Item, Sequence,
};
