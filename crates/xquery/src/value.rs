//! XDM values: items, sequences, atomization, effective boolean value,
//! comparison semantics and `fn:deep-equal`.

use std::fmt;
use std::sync::Arc;

use xqd_xml::{NodeId, NodeKind, Store};

use crate::ast::{Atomic, CompOp};

/// One XDM item: a node reference or an atomic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Node(NodeId),
    Atom(Atomic),
}

/// An XDM sequence. Flat by construction (nesting is impossible in XDM).
///
/// Backed by an `Arc<Vec<Item>>` so that variable lookups, FLWOR bindings
/// and scatter-round request building share one allocation instead of
/// deep-cloning item vectors; `Arc` rather than `Rc` because bound sequences
/// cross threads in the parallel Bulk-RPC executor. Sequences are
/// copy-on-write: construction sites build a plain `Vec<Item>` and convert
/// once via `From`, and the rare mutating consumers go through
/// [`Sequence::to_vec`] / [`Sequence::into_vec`].
#[derive(Clone, Default)]
pub struct Sequence(Arc<Vec<Item>>);

impl Sequence {
    /// The empty sequence `()`.
    pub fn new() -> Self {
        Sequence::default()
    }

    /// A singleton sequence.
    pub fn unit(item: Item) -> Self {
        Sequence(Arc::new(vec![item]))
    }

    pub fn as_slice(&self) -> &[Item] {
        &self.0
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Item> {
        self.0.iter()
    }

    /// Owned copy of the items (always clones).
    pub fn to_vec(&self) -> Vec<Item> {
        self.0.as_ref().clone()
    }

    /// Owned items; reuses the allocation when this is the only handle.
    pub fn into_vec(self) -> Vec<Item> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| shared.as_ref().clone())
    }
}

// Debug matches `Vec<Item>` so diagnostics and doctest expectations read as
// the plain item list.
impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl std::ops::Deref for Sequence {
    type Target = [Item];

    fn deref(&self) -> &[Item] {
        &self.0
    }
}

impl From<Vec<Item>> for Sequence {
    fn from(items: Vec<Item>) -> Self {
        Sequence(Arc::new(items))
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        Sequence(Arc::new(iter.into_iter().collect()))
    }
}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = std::vec::IntoIter<Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl PartialEq for Sequence {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<Item>> for Sequence {
    fn eq(&self, other: &Vec<Item>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Sequence> for Vec<Item> {
    fn eq(&self, other: &Sequence) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Item]> for Sequence {
    fn eq(&self, other: &[Item]) -> bool {
        self.as_slice() == other
    }
}

/// Evaluation errors (dynamic errors per XQuery, with err:-style codes
/// collapsed into a message).
///
/// `code` is an optional machine-readable error code. Plain dynamic errors
/// carry `None`; the XRPC layer tags transport failures with `xrpc:*` codes
/// so typed failure semantics survive the `EvalResult` plumbing between the
/// evaluator and the distributed executor (the `xquery` crate cannot depend
/// on `xqd-xrpc`, so the taxonomy itself lives there and round-trips
/// through this field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    pub message: String,
    pub code: Option<String>,
}

impl EvalError {
    pub fn new(msg: impl Into<String>) -> Self {
        EvalError { message: msg.into(), code: None }
    }

    /// An error with a machine-readable code (e.g. `xrpc:timeout`).
    pub fn with_code(code: impl Into<String>, msg: impl Into<String>) -> Self {
        EvalError { message: msg.into(), code: Some(code.into()) }
    }

    /// True if the error carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.code.as_deref() == Some(code)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.code {
            Some(c) => write!(f, "evaluation error [{c}]: {}", self.message),
            None => write!(f, "evaluation error: {}", self.message),
        }
    }
}

impl std::error::Error for EvalError {}

pub type EvalResult<T = Sequence> = Result<T, EvalError>;

/// Atomizes one item (node → untyped atomic of its string value).
pub fn atomize_item(store: &Store, item: &Item) -> Atomic {
    match item {
        Item::Atom(a) => a.clone(),
        Item::Node(n) => Atomic::Untyped(store.doc(n.doc).string_value(n.idx)),
    }
}

/// Atomizes a sequence.
pub fn atomize(store: &Store, seq: &[Item]) -> Vec<Atomic> {
    seq.iter().map(|i| atomize_item(store, i)).collect()
}

/// String value of one item (`fn:string`).
pub fn string_value(store: &Store, item: &Item) -> String {
    match item {
        Item::Atom(a) => a.to_lexical(),
        Item::Node(n) => store.doc(n.doc).string_value(n.idx),
    }
}

/// Numeric promotion of an atomic, if possible.
pub fn to_number(a: &Atomic) -> Option<f64> {
    match a {
        Atomic::Int(i) => Some(*i as f64),
        Atomic::Dbl(d) => Some(*d),
        Atomic::Str(s) | Atomic::Untyped(s) => s.trim().parse::<f64>().ok(),
        Atomic::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
    }
}

/// Effective boolean value (XPath 2.0 §2.4.3).
pub fn effective_boolean_value(seq: &[Item]) -> EvalResult<bool> {
    match seq {
        [] => Ok(false),
        [Item::Node(_), ..] => Ok(true),
        [Item::Atom(a)] => Ok(match a {
            Atomic::Bool(b) => *b,
            Atomic::Str(s) | Atomic::Untyped(s) => !s.is_empty(),
            Atomic::Int(i) => *i != 0,
            Atomic::Dbl(d) => *d != 0.0 && !d.is_nan(),
        }),
        _ => Err(EvalError::new("effective boolean value of a multi-atom sequence")),
    }
}

/// Compares two atomics under general-comparison casting rules:
/// untyped vs numeric → numeric, untyped vs string/untyped → string,
/// untyped vs boolean → boolean.
pub fn compare_atomics(op: CompOp, l: &Atomic, r: &Atomic) -> EvalResult<bool> {
    use Atomic::*;
    let ord = match (l, r) {
        (Int(a), Int(b)) => a.partial_cmp(b),
        (Int(_) | Dbl(_), Int(_) | Dbl(_)) => {
            to_number(l).unwrap().partial_cmp(&to_number(r).unwrap())
        }
        (Untyped(_), Int(_) | Dbl(_)) | (Int(_) | Dbl(_), Untyped(_)) => {
            let a = to_number(l)
                .ok_or_else(|| EvalError::new(format!("cannot cast {l:?} to number")))?;
            let b = to_number(r)
                .ok_or_else(|| EvalError::new(format!("cannot cast {r:?} to number")))?;
            a.partial_cmp(&b)
        }
        (Bool(a), Bool(b)) => a.partial_cmp(b),
        (Untyped(s), Bool(b)) | (Bool(b), Untyped(s)) => {
            let parsed = match s.trim() {
                "true" | "1" => true,
                "false" | "0" => false,
                _ => return Err(EvalError::new(format!("cannot cast {s:?} to boolean"))),
            };
            if matches!(l, Bool(_)) {
                b.partial_cmp(&parsed)
            } else {
                parsed.partial_cmp(b)
            }
        }
        (Str(a) | Untyped(a), Str(b) | Untyped(b)) => a.partial_cmp(b),
        (Str(_), Int(_) | Dbl(_)) | (Int(_) | Dbl(_), Str(_)) => {
            return Err(EvalError::new("cannot compare xs:string with a number"))
        }
        (Str(_), Bool(_)) | (Bool(_), Str(_)) => {
            return Err(EvalError::new("cannot compare xs:string with xs:boolean"))
        }
        (Bool(_), Int(_) | Dbl(_)) | (Int(_) | Dbl(_), Bool(_)) => {
            return Err(EvalError::new("cannot compare xs:boolean with a number"))
        }
    };
    let Some(ord) = ord else {
        return Ok(false); // NaN comparisons are false
    };
    Ok(match op {
        CompOp::Eq => ord == std::cmp::Ordering::Equal,
        CompOp::Ne => ord != std::cmp::Ordering::Equal,
        CompOp::Lt => ord == std::cmp::Ordering::Less,
        CompOp::Le => ord != std::cmp::Ordering::Greater,
        CompOp::Gt => ord == std::cmp::Ordering::Greater,
        CompOp::Ge => ord != std::cmp::Ordering::Less,
    })
}

/// General comparison: existential over the atomized operand sequences.
pub fn general_compare(
    store: &Store,
    op: CompOp,
    lhs: &[Item],
    rhs: &[Item],
) -> EvalResult<bool> {
    let l = atomize(store, lhs);
    let r = atomize(store, rhs);
    for a in &l {
        for b in &r {
            if compare_atomics(op, a, b)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Sorts a node sequence into document order and removes duplicates.
/// Errors if the sequence contains atomic items. Operates on the plain item
/// vector: builders sort before converting into a shared [`Sequence`].
pub fn sort_document_order(seq: &mut Vec<Item>) -> EvalResult<()> {
    for item in seq.iter() {
        if matches!(item, Item::Atom(_)) {
            return Err(EvalError::new("document-order sort of a non-node sequence"));
        }
    }
    seq.sort_by_key(|i| match i {
        Item::Node(n) => *n,
        Item::Atom(_) => unreachable!(),
    });
    seq.dedup();
    Ok(())
}

/// `fn:deep-equal` over two sequences (default collation, no NaN-equals
/// subtleties: our atomics compare with general `Eq` semantics).
pub fn deep_equal(store: &Store, lhs: &[Item], rhs: &[Item]) -> bool {
    if lhs.len() != rhs.len() {
        return false;
    }
    lhs.iter().zip(rhs).all(|(l, r)| deep_equal_item(store, l, r))
}

fn deep_equal_item(store: &Store, l: &Item, r: &Item) -> bool {
    match (l, r) {
        (Item::Atom(a), Item::Atom(b)) => {
            compare_atomics(CompOp::Eq, a, b).unwrap_or(false)
        }
        (Item::Node(a), Item::Node(b)) => deep_equal_node(store, *a, *b),
        _ => false,
    }
}

fn deep_equal_node(store: &Store, a: NodeId, b: NodeId) -> bool {
    let da = store.doc(a.doc);
    let db = store.doc(b.doc);
    let (ka, kb) = (da.kind(a.idx), db.kind(b.idx));
    if ka != kb {
        return false;
    }
    match ka {
        NodeKind::Text | NodeKind::Comment => da.value(a.idx) == db.value(b.idx),
        NodeKind::Pi => da.name(a.idx) == db.name(b.idx) && da.value(a.idx) == db.value(b.idx),
        NodeKind::Attribute => {
            store.names.resolve(da.name(a.idx)) == store.names.resolve(db.name(b.idx))
                && da.value(a.idx) == db.value(b.idx)
        }
        NodeKind::Element => {
            if store.names.resolve(da.name(a.idx)) != store.names.resolve(db.name(b.idx)) {
                return false;
            }
            // attribute sets must match (order-insensitive)
            let attrs_a: Vec<(String, String)> = da
                .attributes(a.idx)
                .map(|x| {
                    (
                        store.names.resolve(da.name(x)).to_string(),
                        da.value(x).unwrap_or("").to_string(),
                    )
                })
                .collect();
            let attrs_b: Vec<(String, String)> = db
                .attributes(b.idx)
                .map(|x| {
                    (
                        store.names.resolve(db.name(x)).to_string(),
                        db.value(x).unwrap_or("").to_string(),
                    )
                })
                .collect();
            if attrs_a.len() != attrs_b.len() {
                return false;
            }
            for pair in &attrs_a {
                if !attrs_b.contains(pair) {
                    return false;
                }
            }
            deep_equal_children(store, a, b)
        }
        NodeKind::Document => deep_equal_children(store, a, b),
    }
}

fn deep_equal_children(store: &Store, a: NodeId, b: NodeId) -> bool {
    // comparable children: elements and text (XQuery F&O deep-equal ignores
    // comments and PIs)
    let da = store.doc(a.doc);
    let db = store.doc(b.doc);
    let ca: Vec<u32> = da
        .children(a.idx)
        .filter(|&c| matches!(da.kind(c), NodeKind::Element | NodeKind::Text))
        .collect();
    let cb: Vec<u32> = db
        .children(b.idx)
        .filter(|&c| matches!(db.kind(c), NodeKind::Element | NodeKind::Text))
        .collect();
    if ca.len() != cb.len() {
        return false;
    }
    ca.iter().zip(&cb).all(|(&x, &y)| {
        deep_equal_node(store, NodeId::new(a.doc, x), NodeId::new(b.doc, y))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqd_xml::parse_document;

    #[test]
    fn ebv_rules() {
        assert!(!effective_boolean_value(&[]).unwrap());
        assert!(effective_boolean_value(&[Item::Atom(Atomic::Bool(true))]).unwrap());
        assert!(!effective_boolean_value(&[Item::Atom(Atomic::Str("".into()))]).unwrap());
        assert!(effective_boolean_value(&[Item::Atom(Atomic::Str("x".into()))]).unwrap());
        assert!(!effective_boolean_value(&[Item::Atom(Atomic::Int(0))]).unwrap());
        assert!(effective_boolean_value(&[Item::Atom(Atomic::Dbl(0.5))]).unwrap());
        assert!(effective_boolean_value(&[
            Item::Atom(Atomic::Int(1)),
            Item::Atom(Atomic::Int(2))
        ])
        .is_err());
    }

    #[test]
    fn untyped_casting_in_comparisons() {
        // untyped vs number → numeric
        assert!(compare_atomics(CompOp::Lt, &Atomic::Untyped("39".into()), &Atomic::Int(40))
            .unwrap());
        assert!(!compare_atomics(CompOp::Lt, &Atomic::Untyped("41".into()), &Atomic::Int(40))
            .unwrap());
        // untyped vs untyped → string
        assert!(compare_atomics(
            CompOp::Eq,
            &Atomic::Untyped("abc".into()),
            &Atomic::Untyped("abc".into())
        )
        .unwrap());
        // "10" < "9" as strings
        assert!(compare_atomics(
            CompOp::Lt,
            &Atomic::Untyped("10".into()),
            &Atomic::Untyped("9".into())
        )
        .unwrap());
        // string vs number is a type error
        assert!(compare_atomics(CompOp::Eq, &Atomic::Str("1".into()), &Atomic::Int(1)).is_err());
    }

    #[test]
    fn general_comparison_is_existential() {
        let store = Store::new();
        let lhs = vec![Item::Atom(Atomic::Int(1)), Item::Atom(Atomic::Int(5))];
        let rhs = vec![Item::Atom(Atomic::Int(5))];
        assert!(general_compare(&store, CompOp::Eq, &lhs, &rhs).unwrap());
        assert!(general_compare(&store, CompOp::Lt, &lhs, &rhs).unwrap());
        assert!(!general_compare(&store, CompOp::Gt, &lhs, &rhs).unwrap());
        assert!(!general_compare(&store, CompOp::Eq, &[], &rhs).unwrap());
    }

    #[test]
    fn deep_equal_structural() {
        let mut s = Store::new();
        let d1 = parse_document(&mut s, "<a x=\"1\" y=\"2\"><b>t</b></a>", None).unwrap();
        let d2 = parse_document(&mut s, "<a y=\"2\" x=\"1\"><b>t</b></a>", None).unwrap();
        let d3 = parse_document(&mut s, "<a x=\"1\"><b>t</b></a>", None).unwrap();
        let n1 = Item::Node(NodeId::new(d1, 1));
        let n2 = Item::Node(NodeId::new(d2, 1));
        let n3 = Item::Node(NodeId::new(d3, 1));
        assert!(deep_equal(&s, std::slice::from_ref(&n1), std::slice::from_ref(&n2)));
        assert!(!deep_equal(&s, std::slice::from_ref(&n1), std::slice::from_ref(&n3)));
        assert!(!deep_equal(&s, std::slice::from_ref(&n1), &[n1.clone(), n2.clone()]));
    }

    #[test]
    fn deep_equal_ignores_comments() {
        let mut s = Store::new();
        let d1 = parse_document(&mut s, "<a><!--x--><b/></a>", None).unwrap();
        let d2 = parse_document(&mut s, "<a><b/></a>", None).unwrap();
        assert!(deep_equal(
            &s,
            &[Item::Node(NodeId::new(d1, 1))],
            &[Item::Node(NodeId::new(d2, 1))]
        ));
    }

    #[test]
    fn deep_equal_atom_vs_node_is_false() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a>1</a>", None).unwrap();
        assert!(!deep_equal(
            &s,
            &[Item::Node(NodeId::new(d, 1))],
            &[Item::Atom(Atomic::Int(1))]
        ));
    }

    #[test]
    fn sort_document_order_dedups() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a><b/><c/></a>", None).unwrap();
        let mut seq = vec![
            Item::Node(NodeId::new(d, 3)),
            Item::Node(NodeId::new(d, 2)),
            Item::Node(NodeId::new(d, 3)),
        ];
        sort_document_order(&mut seq).unwrap();
        assert_eq!(seq, vec![Item::Node(NodeId::new(d, 2)), Item::Node(NodeId::new(d, 3))]);
        let mut bad = vec![Item::Atom(Atomic::Int(1))];
        assert!(sort_document_order(&mut bad).is_err());
    }

    #[test]
    fn nan_comparisons_are_false() {
        assert!(!compare_atomics(CompOp::Eq, &Atomic::Dbl(f64::NAN), &Atomic::Dbl(1.0)).unwrap());
        assert!(!compare_atomics(CompOp::Lt, &Atomic::Dbl(f64::NAN), &Atomic::Dbl(1.0)).unwrap());
    }
}
