//! Built-in function library.
//!
//! Covers the functions the paper's analysis singles out (Problem 5):
//!
//! * class 1 — `static-base-uri`, `default-collation`, `current-dateTime`
//!   read the [`crate::eval::StaticContext`] (which XRPC ships in message
//!   headers so remote executions agree),
//! * class 2 — `base-uri` / `document-uri` consult the per-node
//!   [`xqd_xml::store::NodeMeta`] overrides that XRPC attaches to shredded
//!   fragments (the `xrpc:base-uri` / `xrpc:document-uri` wrappers of the
//!   paper are aliases of the same lookup),
//! * classes 3–4 — `root`, `id`, `idref`, which return non-descendants and
//!   therefore drive the by-projection machinery,
//!
//! plus the general-purpose F&O subset the examples and benchmarks use.

use xqd_xml::{NodeId, NodeKind};

use crate::ast::Atomic;
use crate::eval::Evaluator;
use crate::value::*;

/// Dispatches a built-in call. Returns `Ok(None)` if `name` is not a
/// built-in (the evaluator then tries user-defined functions).
pub fn eval_builtin(
    ev: &mut Evaluator,
    name: &str,
    args: &[Sequence],
) -> EvalResult<Option<Sequence>> {
    let bare = name.strip_prefix("fn:").unwrap_or(name);
    let result = match (bare, args.len()) {
        ("true", 0) => vec![Item::Atom(Atomic::Bool(true))],
        ("false", 0) => vec![Item::Atom(Atomic::Bool(false))],
        ("doc", 1) => {
            let uri = single_string(ev, &args[0])?;
            let doc = ev.resolver.resolve(ev.store, &uri)?;
            vec![Item::Node(NodeId::new(doc, 0))]
        }
        ("root", 1) => match args[0].as_slice() {
            [] => vec![],
            [Item::Node(n)] => vec![Item::Node(NodeId::new(n.doc, 0))],
            _ => return Err(EvalError::new("root() requires a single node")),
        },
        ("id", 2) => {
            let values = atomize(ev.store, &args[0]);
            let node = single_node_arg(&args[1], "id")?;
            let doc = ev.store.doc(node.doc);
            let mut out = Vec::new();
            for v in values {
                for tok in v.to_lexical().split_whitespace() {
                    if let Some(el) = doc.element_by_id(tok) {
                        out.push(Item::Node(NodeId::new(node.doc, el)));
                    }
                }
            }
            sort_document_order(&mut out)?;
            out
        }
        ("idref", 2) => {
            let values: Vec<String> = atomize(ev.store, &args[0])
                .iter()
                .flat_map(|a| {
                    a.to_lexical().split_whitespace().map(str::to_string).collect::<Vec<_>>()
                })
                .collect();
            let node = single_node_arg(&args[1], "idref")?;
            let doc = ev.store.doc(node.doc);
            let mut out = Vec::new();
            for (attr, val) in doc.idref_attributes(&ev.store.names) {
                if val.split_whitespace().any(|t| values.iter().any(|v| v == t)) {
                    out.push(Item::Node(NodeId::new(node.doc, attr)));
                }
            }
            sort_document_order(&mut out)?;
            out
        }
        ("base-uri", 1) | ("xrpc:base-uri", 1) => match args[0].as_slice() {
            [] => vec![],
            [Item::Node(n)] => {
                let doc = ev.store.doc(n.doc);
                let meta = doc.meta.get(&n.idx).and_then(|m| m.base_uri.clone());
                match meta.or_else(|| doc.base_uri.clone()) {
                    Some(u) => vec![Item::Atom(Atomic::Str(u))],
                    None => vec![],
                }
            }
            _ => return Err(EvalError::new("base-uri() requires a single node")),
        },
        ("document-uri", 1) | ("xrpc:document-uri", 1) => match args[0].as_slice() {
            [] => vec![],
            [Item::Node(n)] => {
                let doc = ev.store.doc(n.doc);
                let meta = doc.meta.get(&n.idx).and_then(|m| m.document_uri.clone());
                let effective = if doc.kind(n.idx) == NodeKind::Document || meta.is_some() {
                    meta.or_else(|| doc.uri.clone())
                } else {
                    None
                };
                match effective {
                    Some(u) => vec![Item::Atom(Atomic::Str(u))],
                    None => vec![],
                }
            }
            _ => return Err(EvalError::new("document-uri() requires a single node")),
        },
        ("static-base-uri", 0) => {
            vec![Item::Atom(Atomic::Str(ev.static_ctx.base_uri.clone()))]
        }
        ("default-collation", 0) => {
            vec![Item::Atom(Atomic::Str(ev.static_ctx.default_collation.clone()))]
        }
        ("current-dateTime", 0) => {
            vec![Item::Atom(Atomic::Str(ev.static_ctx.current_datetime.clone()))]
        }
        ("count", 1) => vec![Item::Atom(Atomic::Int(args[0].len() as i64))],
        ("empty", 1) => vec![Item::Atom(Atomic::Bool(args[0].is_empty()))],
        ("exists", 1) => vec![Item::Atom(Atomic::Bool(!args[0].is_empty()))],
        ("not", 1) => {
            vec![Item::Atom(Atomic::Bool(!effective_boolean_value(&args[0])?))]
        }
        ("boolean", 1) => {
            vec![Item::Atom(Atomic::Bool(effective_boolean_value(&args[0])?))]
        }
        ("string", 1) => match args[0].as_slice() {
            [] => vec![Item::Atom(Atomic::Str(String::new()))],
            [item] => vec![Item::Atom(Atomic::Str(string_value(ev.store, item)))],
            _ => return Err(EvalError::new("string() requires at most one item")),
        },
        ("data", 1) => atomize(ev.store, &args[0]).into_iter().map(Item::Atom).collect(),
        ("number", 1) => match args[0].as_slice() {
            [] => vec![Item::Atom(Atomic::Dbl(f64::NAN))],
            [item] => {
                let a = atomize_item(ev.store, item);
                vec![Item::Atom(Atomic::Dbl(to_number(&a).unwrap_or(f64::NAN)))]
            }
            _ => return Err(EvalError::new("number() requires at most one item")),
        },
        ("sum", 1) => {
            let mut total = 0.0;
            let mut all_int = true;
            for a in atomize(ev.store, &args[0]) {
                if !matches!(a, Atomic::Int(_)) {
                    all_int = false;
                }
                total += to_number(&a)
                    .ok_or_else(|| EvalError::new("sum() over non-numeric values"))?;
            }
            vec![Item::Atom(if all_int { Atomic::Int(total as i64) } else { Atomic::Dbl(total) })]
        }
        ("avg", 1) => {
            if args[0].is_empty() {
                vec![]
            } else {
                let atoms = atomize(ev.store, &args[0]);
                let mut total = 0.0;
                for a in &atoms {
                    total +=
                        to_number(a).ok_or_else(|| EvalError::new("avg() over non-numeric"))?;
                }
                vec![Item::Atom(Atomic::Dbl(total / atoms.len() as f64))]
            }
        }
        ("min", 1) | ("max", 1) => {
            let atoms = atomize(ev.store, &args[0]);
            if atoms.is_empty() {
                vec![]
            } else {
                let mut nums = Vec::with_capacity(atoms.len());
                for a in &atoms {
                    nums.push(
                        to_number(a)
                            .ok_or_else(|| EvalError::new(format!("{bare}() over non-numeric")))?,
                    );
                }
                let v = if bare == "min" {
                    nums.iter().cloned().fold(f64::INFINITY, f64::min)
                } else {
                    nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                };
                vec![Item::Atom(Atomic::Dbl(v))]
            }
        }
        ("concat", _) if args.len() >= 2 => {
            let mut s = String::new();
            for a in args {
                match a.as_slice() {
                    [] => {}
                    [item] => s.push_str(&string_value(ev.store, item)),
                    _ => return Err(EvalError::new("concat() arguments must be single items")),
                }
            }
            vec![Item::Atom(Atomic::Str(s))]
        }
        ("string-join", 2) => {
            let sep = single_string(ev, &args[1])?;
            let parts: Vec<String> =
                args[0].iter().map(|i| string_value(ev.store, i)).collect();
            vec![Item::Atom(Atomic::Str(parts.join(&sep)))]
        }
        ("contains", 2) => {
            let s = optional_string(ev, &args[0])?;
            let sub = optional_string(ev, &args[1])?;
            vec![Item::Atom(Atomic::Bool(s.contains(&sub)))]
        }
        ("starts-with", 2) => {
            let s = optional_string(ev, &args[0])?;
            let sub = optional_string(ev, &args[1])?;
            vec![Item::Atom(Atomic::Bool(s.starts_with(&sub)))]
        }
        ("string-length", 1) => {
            let s = optional_string(ev, &args[0])?;
            vec![Item::Atom(Atomic::Int(s.chars().count() as i64))]
        }
        ("substring", 2) | ("substring", 3) => {
            let s = optional_string(ev, &args[0])?;
            let start = single_number(ev, &args[1])?.round() as i64;
            let chars: Vec<char> = s.chars().collect();
            let len = if args.len() == 3 {
                single_number(ev, &args[2])?.round() as i64
            } else {
                chars.len() as i64
            };
            let from = (start - 1).max(0) as usize;
            let to = ((start - 1 + len).max(0) as usize).min(chars.len());
            let out: String = if from < to { chars[from..to].iter().collect() } else { String::new() };
            vec![Item::Atom(Atomic::Str(out))]
        }
        ("upper-case", 1) => {
            vec![Item::Atom(Atomic::Str(optional_string(ev, &args[0])?.to_uppercase()))]
        }
        ("lower-case", 1) => {
            vec![Item::Atom(Atomic::Str(optional_string(ev, &args[0])?.to_lowercase()))]
        }
        ("normalize-space", 1) => {
            let s = optional_string(ev, &args[0])?;
            vec![Item::Atom(Atomic::Str(s.split_whitespace().collect::<Vec<_>>().join(" ")))]
        }
        ("name", 1) | ("local-name", 1) => match args[0].as_slice() {
            [] => vec![Item::Atom(Atomic::Str(String::new()))],
            [Item::Node(n)] => {
                let full = ev.store.names.resolve(ev.store.doc(n.doc).name(n.idx));
                let s = if bare == "local-name" {
                    full.rsplit(':').next().unwrap_or(full)
                } else {
                    full
                };
                vec![Item::Atom(Atomic::Str(s.to_string()))]
            }
            _ => return Err(EvalError::new(format!("{bare}() requires a node"))),
        },
        ("deep-equal", 2) => {
            vec![Item::Atom(Atomic::Bool(deep_equal(ev.store, &args[0], &args[1])))]
        }
        ("distinct-values", 1) => {
            let mut out: Vec<Atomic> = Vec::new();
            for a in atomize(ev.store, &args[0]) {
                let dup = out.iter().any(|b| {
                    compare_atomics(crate::ast::CompOp::Eq, &a, b).unwrap_or(false)
                });
                if !dup {
                    out.push(a);
                }
            }
            out.into_iter().map(Item::Atom).collect()
        }
        // Semi-join key-set reduction (xqd extension): atomize, then dedup
        // and sort by the exact (type, lexical) pair. `distinct-values` is
        // NOT usable for shipped join keys — its Eq merges across types
        // (integer 1 absorbs untyped "1"), which could flip a downstream
        // general comparison; exact-pair dedup is lossless for existential
        // consumption, and the canonical order makes the wire bytes
        // deterministic.
        ("xqd:distinct-keys", 1) => {
            let mut keys = atomize(ev.store, &args[0]);
            keys.sort_by(|a, b| {
                key_rank(a).cmp(&key_rank(b)).then_with(|| a.to_lexical().cmp(&b.to_lexical()))
            });
            keys.dedup_by(|a, b| key_rank(a) == key_rank(b) && a.to_lexical() == b.to_lexical());
            keys.into_iter().map(Item::Atom).collect()
        }
        ("reverse", 1) => {
            let mut v = args[0].to_vec();
            v.reverse();
            v
        }
        ("subsequence", 2) | ("subsequence", 3) => {
            let start = single_number(ev, &args[1])?.round() as i64;
            let len = if args.len() == 3 {
                single_number(ev, &args[2])?.round() as i64
            } else {
                i64::MAX
            };
            args[0]
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let pos = *i as i64 + 1;
                    pos >= start && (len == i64::MAX || pos < start + len)
                })
                .map(|(_, item)| item.clone())
                .collect()
        }
        ("insert-before", 3) => {
            let pos = (single_number(ev, &args[1])?.round() as i64).max(1) as usize;
            let mut out = args[0].to_vec();
            let at = (pos - 1).min(out.len());
            out.splice(at..at, args[2].iter().cloned());
            out
        }
        ("remove", 2) => {
            let pos = single_number(ev, &args[1])?.round() as i64;
            args[0]
                .iter()
                .enumerate()
                .filter(|(i, _)| *i as i64 + 1 != pos)
                .map(|(_, item)| item.clone())
                .collect()
        }
        ("index-of", 2) => {
            let needle = match atomize(ev.store, &args[1]).into_iter().next() {
                Some(a) => a,
                None => return Err(EvalError::new("index-of() needs a search value")),
            };
            atomize(ev.store, &args[0])
                .iter()
                .enumerate()
                .filter(|(_, a)| {
                    compare_atomics(crate::ast::CompOp::Eq, a, &needle).unwrap_or(false)
                })
                .map(|(i, _)| Item::Atom(Atomic::Int(i as i64 + 1)))
                .collect()
        }
        ("head", 1) => args[0].first().cloned().into_iter().collect(),
        ("tail", 1) => args[0].iter().skip(1).cloned().collect(),
        ("substring-before", 2) => {
            let s = optional_string(ev, &args[0])?;
            let sep = optional_string(ev, &args[1])?;
            let out = s.find(&sep).map(|i| s[..i].to_string()).unwrap_or_default();
            vec![Item::Atom(Atomic::Str(out))]
        }
        ("substring-after", 2) => {
            let s = optional_string(ev, &args[0])?;
            let sep = optional_string(ev, &args[1])?;
            let out =
                s.find(&sep).map(|i| s[i + sep.len()..].to_string()).unwrap_or_default();
            vec![Item::Atom(Atomic::Str(out))]
        }
        ("ends-with", 2) => {
            let s = optional_string(ev, &args[0])?;
            let suffix = optional_string(ev, &args[1])?;
            vec![Item::Atom(Atomic::Bool(s.ends_with(&suffix)))]
        }
        ("translate", 3) => {
            let s = optional_string(ev, &args[0])?;
            let from: Vec<char> = optional_string(ev, &args[1])?.chars().collect();
            let to: Vec<char> = optional_string(ev, &args[2])?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            vec![Item::Atom(Atomic::Str(out))]
        }
        ("tokenize", 2) => {
            // simplified: the separator is a literal delimiter, not a regex
            let s = optional_string(ev, &args[0])?;
            let sep = optional_string(ev, &args[1])?;
            if sep.is_empty() {
                return Err(EvalError::new("tokenize() separator must be non-empty"));
            }
            s.split(&sep)
                .filter(|t| !t.is_empty())
                .map(|t| Item::Atom(Atomic::Str(t.to_string())))
                .collect()
        }
        ("abs", 1) => {
            vec![Item::Atom(Atomic::Dbl(single_number(ev, &args[0])?.abs()))]
        }
        ("floor", 1) => {
            vec![Item::Atom(Atomic::Dbl(single_number(ev, &args[0])?.floor()))]
        }
        ("ceiling", 1) => {
            vec![Item::Atom(Atomic::Dbl(single_number(ev, &args[0])?.ceil()))]
        }
        ("round", 1) => {
            vec![Item::Atom(Atomic::Dbl(single_number(ev, &args[0])?.round()))]
        }
        ("exactly-one", 1) => {
            if args[0].len() == 1 {
                args[0].to_vec()
            } else {
                return Err(EvalError::new("exactly-one() got a non-singleton"));
            }
        }
        ("zero-or-one", 1) => {
            if args[0].len() <= 1 {
                args[0].to_vec()
            } else {
                return Err(EvalError::new("zero-or-one() got multiple items"));
            }
        }
        ("position", 0) | ("last", 0) => {
            return Err(EvalError::new(format!(
                "{bare}() is not supported: positional predicates must be literal numbers \
                 (XCore keeps paths position()-free, Section III)"
            )))
        }
        ("collection", _) => {
            return Err(EvalError::new(
                "collection() is treated as doc(*) by the analysis and cannot be evaluated",
            ))
        }
        _ => return Ok(None),
    };
    Ok(Some(result.into()))
}

/// Type ordinal for the canonical key sort of `xqd:distinct-keys`.
fn key_rank(a: &Atomic) -> u8 {
    match a {
        Atomic::Str(_) => 0,
        Atomic::Int(_) => 1,
        Atomic::Dbl(_) => 2,
        Atomic::Bool(_) => 3,
        Atomic::Untyped(_) => 4,
    }
}

fn single_string(ev: &Evaluator, seq: &Sequence) -> EvalResult<String> {
    match seq.as_slice() {
        [item] => Ok(string_value(ev.store, item)),
        _ => Err(EvalError::new("expected a single item")),
    }
}

fn optional_string(ev: &Evaluator, seq: &Sequence) -> EvalResult<String> {
    match seq.as_slice() {
        [] => Ok(String::new()),
        [item] => Ok(string_value(ev.store, item)),
        _ => Err(EvalError::new("expected at most one item")),
    }
}

fn single_number(ev: &Evaluator, seq: &Sequence) -> EvalResult<f64> {
    match seq.as_slice() {
        [item] => {
            let a = atomize_item(ev.store, item);
            to_number(&a).ok_or_else(|| EvalError::new("expected a number"))
        }
        _ => Err(EvalError::new("expected a single number")),
    }
}

fn single_node_arg(seq: &Sequence, what: &str) -> EvalResult<NodeId> {
    match seq.as_slice() {
        [Item::Node(n)] => Ok(*n),
        _ => Err(EvalError::new(format!("{what}() requires a single node argument"))),
    }
}
