//! Tokenizer for the XQuery surface syntax.
//!
//! Keywords are not distinguished here — XQuery keywords are contextual, so
//! the parser matches them against [`Token::Name`] as needed. QNames may
//! contain a single prefix colon (`xs:string`, `xrpc:base-uri`); the axis
//! separator `::` is its own token.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// NCName or prefixed QName.
    Name(String),
    StringLit(String),
    IntLit(i64),
    DblLit(f64),
    /// `$`
    Dollar,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    /// `:=`
    Assign,
    /// `::`
    AxisSep,
    Slash,
    DoubleSlash,
    Dot,
    DotDot,
    At,
    Star,
    Pipe,
    Plus,
    Minus,
    Question,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `<<`
    Before,
    /// `>>`
    After,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Name(n) => write!(f, "{n}"),
            Token::StringLit(s) => write!(f, "\"{s}\""),
            Token::IntLit(i) => write!(f, "{i}"),
            Token::DblLit(d) => write!(f, "{d}"),
            Token::Dollar => write!(f, "$"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Assign => write!(f, ":="),
            Token::AxisSep => write!(f, "::"),
            Token::Slash => write!(f, "/"),
            Token::DoubleSlash => write!(f, "//"),
            Token::Dot => write!(f, "."),
            Token::DotDot => write!(f, ".."),
            Token::At => write!(f, "@"),
            Token::Star => write!(f, "*"),
            Token::Pipe => write!(f, "|"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Question => write!(f, "?"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Before => write!(f, "<<"),
            Token::After => write!(f, ">>"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexical error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Tokenizes `input`, appending a final [`Token::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    // byte offsets for error messages
    let byte_offset: Vec<usize> = {
        let mut v = Vec::with_capacity(chars.len() + 1);
        let mut b = 0;
        for c in &chars {
            v.push(b);
            b += c.len_utf8();
        }
        v.push(b);
        v
    };
    macro_rules! err {
        ($pos:expr, $($msg:tt)*) => {
            return Err(LexError { offset: byte_offset[$pos], message: format!($($msg)*) })
        };
    }
    while i < chars.len() {
        let c = chars[i];
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
                continue;
            }
            '(' => {
                if chars.get(i + 1) == Some(&':') {
                    // nested comment (: ... :)
                    let mut depth = 1;
                    i += 2;
                    while depth > 0 {
                        match (chars.get(i), chars.get(i + 1)) {
                            (Some('('), Some(':')) => {
                                depth += 1;
                                i += 2;
                            }
                            (Some(':'), Some(')')) => {
                                depth -= 1;
                                i += 2;
                            }
                            (Some(_), _) => i += 1,
                            (None, _) => err!(start, "unterminated comment"),
                        }
                    }
                    continue;
                }
                out.push((Token::LParen, byte_offset[i]));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, byte_offset[i]));
                i += 1;
            }
            '{' => {
                out.push((Token::LBrace, byte_offset[i]));
                i += 1;
            }
            '}' => {
                out.push((Token::RBrace, byte_offset[i]));
                i += 1;
            }
            '[' => {
                out.push((Token::LBracket, byte_offset[i]));
                i += 1;
            }
            ']' => {
                out.push((Token::RBracket, byte_offset[i]));
                i += 1;
            }
            ',' => {
                out.push((Token::Comma, byte_offset[i]));
                i += 1;
            }
            ';' => {
                out.push((Token::Semicolon, byte_offset[i]));
                i += 1;
            }
            '$' => {
                out.push((Token::Dollar, byte_offset[i]));
                i += 1;
            }
            '@' => {
                out.push((Token::At, byte_offset[i]));
                i += 1;
            }
            '*' => {
                out.push((Token::Star, byte_offset[i]));
                i += 1;
            }
            '|' => {
                out.push((Token::Pipe, byte_offset[i]));
                i += 1;
            }
            '+' => {
                out.push((Token::Plus, byte_offset[i]));
                i += 1;
            }
            '-' => {
                out.push((Token::Minus, byte_offset[i]));
                i += 1;
            }
            '?' => {
                out.push((Token::Question, byte_offset[i]));
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Token::Assign, byte_offset[i]));
                    i += 2;
                } else if chars.get(i + 1) == Some(&':') {
                    out.push((Token::AxisSep, byte_offset[i]));
                    i += 2;
                } else {
                    err!(i, "unexpected ':'");
                }
            }
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    out.push((Token::DoubleSlash, byte_offset[i]));
                    i += 2;
                } else {
                    out.push((Token::Slash, byte_offset[i]));
                    i += 1;
                }
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    out.push((Token::DotDot, byte_offset[i]));
                    i += 2;
                } else {
                    out.push((Token::Dot, byte_offset[i]));
                    i += 1;
                }
            }
            '=' => {
                out.push((Token::Eq, byte_offset[i]));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Token::Ne, byte_offset[i]));
                    i += 2;
                } else {
                    err!(i, "unexpected '!'");
                }
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push((Token::Le, byte_offset[i]));
                    i += 2;
                }
                Some('<') => {
                    out.push((Token::Before, byte_offset[i]));
                    i += 2;
                }
                _ => {
                    out.push((Token::Lt, byte_offset[i]));
                    i += 1;
                }
            },
            '>' => match chars.get(i + 1) {
                Some('=') => {
                    out.push((Token::Ge, byte_offset[i]));
                    i += 2;
                }
                Some('>') => {
                    out.push((Token::After, byte_offset[i]));
                    i += 2;
                }
                _ => {
                    out.push((Token::Gt, byte_offset[i]));
                    i += 1;
                }
            },
            '"' | '\'' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => err!(start, "unterminated string literal"),
                        Some(&q) if q == quote => {
                            // doubled quote is an escape
                            if chars.get(i + 1) == Some(&quote) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push((Token::StringLit(s), byte_offset[start]));
            }
            '0'..='9' => {
                let mut j = i;
                while matches!(chars.get(j), Some(d) if d.is_ascii_digit()) {
                    j += 1;
                }
                let is_dbl = chars.get(j) == Some(&'.')
                    && matches!(chars.get(j + 1), Some(d) if d.is_ascii_digit());
                if is_dbl {
                    j += 1;
                    while matches!(chars.get(j), Some(d) if d.is_ascii_digit()) {
                        j += 1;
                    }
                }
                if matches!(chars.get(j), Some('e' | 'E')) {
                    let mut k = j + 1;
                    if matches!(chars.get(k), Some('+' | '-')) {
                        k += 1;
                    }
                    if matches!(chars.get(k), Some(d) if d.is_ascii_digit()) {
                        let mut m = k;
                        while matches!(chars.get(m), Some(d) if d.is_ascii_digit()) {
                            m += 1;
                        }
                        let text: String = chars[i..m].iter().collect();
                        let v: f64 = text.parse().map_err(|_| LexError {
                            offset: byte_offset[i],
                            message: format!("bad number {text}"),
                        })?;
                        out.push((Token::DblLit(v), byte_offset[i]));
                        i = m;
                        continue;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                if is_dbl {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        offset: byte_offset[i],
                        message: format!("bad number {text}"),
                    })?;
                    out.push((Token::DblLit(v), byte_offset[i]));
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        offset: byte_offset[i],
                        message: format!("bad integer {text}"),
                    })?;
                    out.push((Token::IntLit(v), byte_offset[i]));
                }
                i = j;
            }
            c if is_name_start(c) => {
                let mut j = i + 1;
                while matches!(chars.get(j), Some(&ch) if is_name_char(ch)) {
                    j += 1;
                }
                // optional single prefix colon, not an axis separator
                if chars.get(j) == Some(&':')
                    && chars.get(j + 1) != Some(&':')
                    && chars.get(j + 1) != Some(&'=')
                    && matches!(chars.get(j + 1), Some(&ch) if is_name_start(ch))
                {
                    j += 1;
                    while matches!(chars.get(j), Some(&ch) if is_name_char(ch)) {
                        j += 1;
                    }
                }
                let name: String = chars[i..j].iter().collect();
                out.push((Token::Name(name), byte_offset[i]));
                i = j;
            }
            other => err!(i, "unexpected character {other:?}"),
        }
    }
    out.push((Token::Eof, byte_offset[chars.len()]));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn names_and_axes() {
        assert_eq!(
            toks("child::a"),
            vec![Token::Name("child".into()), Token::AxisSep, Token::Name("a".into()), Token::Eof]
        );
        assert_eq!(
            toks("xs:string"),
            vec![Token::Name("xs:string".into()), Token::Eof]
        );
        // ':=' after a name must not be folded into a QName
        assert_eq!(
            toks("x:= 1"),
            vec![Token::Name("x".into()), Token::Assign, Token::IntLit(1), Token::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a << b >> c <= d >= e != f"),
            vec![
                Token::Name("a".into()),
                Token::Before,
                Token::Name("b".into()),
                Token::After,
                Token::Name("c".into()),
                Token::Le,
                Token::Name("d".into()),
                Token::Ge,
                Token::Name("e".into()),
                Token::Ne,
                Token::Name("f".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("\"a\"\"b\""), vec![Token::StringLit("a\"b".into()), Token::Eof]);
        assert_eq!(toks("'it''s'"), vec![Token::StringLit("it's".into()), Token::Eof]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::IntLit(42), Token::Eof]);
        assert_eq!(toks("4.5"), vec![Token::DblLit(4.5), Token::Eof]);
        assert_eq!(toks("1e3"), vec![Token::DblLit(1000.0), Token::Eof]);
        // "1." followed by ".." is a dot-dot, not a decimal
        assert_eq!(toks("1 .."), vec![Token::IntLit(1), Token::DotDot, Token::Eof]);
    }

    #[test]
    fn slashes_and_dots() {
        assert_eq!(
            toks("//a/.."),
            vec![
                Token::DoubleSlash,
                Token::Name("a".into()),
                Token::Slash,
                Token::DotDot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("1 (: comment (: nested :) done :) 2"), vec![
            Token::IntLit(1),
            Token::IntLit(2),
            Token::Eof
        ]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("(: abc").is_err());
    }
}
