//! Normalization to XCore (Section III / IV preliminaries).
//!
//! Two passes run before any d-graph is built:
//!
//! 1. **Function inlining** — the paper's XCore has no user-defined function
//!    declarations ("our simple XCore rule … allows to express all queries
//!    in a single Expr"); every `FunCall` to a declared function becomes
//!    hygienic `let`-bindings of the arguments plus the renamed body.
//!    Recursive functions are rejected (decomposition never generates them).
//! 2. **Filter lowering** — surface predicates on non-step expressions
//!    (`$s[tutor = $s/name]`) become `for`/`if` as in the paper's Qc2;
//!    positional (numeric-literal) predicates are kept as filters because
//!    XCore keeps paths position()-free.
//!
//! The *let-motion* normalization of Section IV (moving `let`-bindings down
//! to the lowest common ancestor of their uses) lives in
//! `xqd-core::letmotion`, next to the decomposer that motivates it.

use std::collections::HashSet;

use crate::ast::*;
use crate::value::EvalError;

/// Inlines every user-defined function call, producing a single XCore
/// expression. Fails on recursion or unknown arity.
pub fn inline_functions(module: &QueryModule) -> Result<Expr, EvalError> {
    let mut fresh = 0u32;
    let mut stack = Vec::new();
    inline_expr(&module.body, module, &mut fresh, &mut stack)
}

fn inline_expr(
    e: &Expr,
    module: &QueryModule,
    fresh: &mut u32,
    stack: &mut Vec<String>,
) -> Result<Expr, EvalError> {
    // rebuild bottom-up
    let rebuilt = map_children(e, &mut |child| inline_expr(child, module, fresh, stack))?;
    if let Expr::FunCall { name, args } = &rebuilt {
        if let Some(func) = module.function(name) {
            if stack.iter().any(|n| n == name) {
                return Err(EvalError::new(format!(
                    "recursive function {name}() cannot be normalized to XCore"
                )));
            }
            if func.params.len() != args.len() {
                return Err(EvalError::new(format!(
                    "{name}() expects {} arguments, got {}",
                    func.params.len(),
                    args.len()
                )));
            }
            stack.push(name.clone());
            let mut body = inline_expr(&func.body, module, fresh, stack)?;
            stack.pop();
            let mut lets: Vec<(String, Expr)> = Vec::new();
            for ((param, _), arg) in func.params.iter().zip(args) {
                *fresh += 1;
                let fresh_name = format!("{param}_inl{fresh}");
                body = rename_var(&body, param, &fresh_name);
                lets.push((fresh_name, arg.clone()));
            }
            let mut out = body;
            for (var, value) in lets.into_iter().rev() {
                out = Expr::Let { var, value: value.boxed(), ret: out.boxed() };
            }
            return Ok(out);
        }
    }
    Ok(rebuilt)
}

/// Lowers non-positional `Filter` expressions to `for`/`if` (Qc2-style).
pub fn lower_filters(e: &Expr) -> Expr {
    let rebuilt = map_children_infallible(e, &mut lower_filters);
    if let Expr::Filter { input, predicate } = &rebuilt {
        if !is_positional(predicate) {
            let var = fresh_filter_var(predicate);
            let pred = substitute_context(predicate, &var);
            return Expr::For {
                var: var.clone(),
                seq: input.clone(),
                ret: Expr::If {
                    cond: pred.boxed(),
                    then: Expr::VarRef(var).boxed(),
                    els: Expr::Empty.boxed(),
                }
                .boxed(),
            };
        }
    }
    rebuilt
}

/// Full normalization pipeline: inline functions, then lower filters.
pub fn normalize(module: &QueryModule) -> Result<Expr, EvalError> {
    let inlined = inline_functions(module)?;
    Ok(lower_filters(&inlined))
}

fn is_positional(pred: &Expr) -> bool {
    matches!(pred, Expr::Literal(Atomic::Int(_)) | Expr::Literal(Atomic::Dbl(_)))
}

fn fresh_filter_var(pred: &Expr) -> String {
    // derive a stable name from the predicate's pointer-free shape
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{pred:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    format!("flt_{:x}", h & 0xffff_ffff)
}

/// Replaces free occurrences of the context item with `$var`. Stops at
/// constructs that rebind the context item (nested filters, step
/// predicates, order-by keys).
pub fn substitute_context(e: &Expr, var: &str) -> Expr {
    match e {
        Expr::ContextItem => Expr::VarRef(var.to_string()),
        Expr::Filter { input, predicate } => Expr::Filter {
            input: substitute_context(input, var).boxed(),
            predicate: predicate.clone(), // context rebound inside
        },
        Expr::Path { start, steps } => Expr::Path {
            start: start.as_ref().map(|s| substitute_context(s, var).boxed()),
            steps: steps.clone(), // step predicates rebind context
        },
        Expr::OrderBy { input, specs } => Expr::OrderBy {
            input: substitute_context(input, var).boxed(),
            specs: specs.clone(), // keys rebind context
        },
        other => map_children_infallible(other, &mut |c| substitute_context(c, var)),
    }
}

/// Hygienic variable rename: `$from` → `$to`, stopping at shadowing
/// rebindings of `$from`.
pub fn rename_var(e: &Expr, from: &str, to: &str) -> Expr {
    match e {
        Expr::VarRef(v) if v == from => Expr::VarRef(to.to_string()),
        Expr::For { var, seq, ret } => Expr::For {
            var: var.clone(),
            seq: rename_var(seq, from, to).boxed(),
            ret: if var == from { ret.clone() } else { rename_var(ret, from, to).boxed() },
        },
        Expr::Let { var, value, ret } => Expr::Let {
            var: var.clone(),
            value: rename_var(value, from, to).boxed(),
            ret: if var == from { ret.clone() } else { rename_var(ret, from, to).boxed() },
        },
        Expr::Typeswitch { input, cases, default_var, default } => Expr::Typeswitch {
            input: rename_var(input, from, to).boxed(),
            cases: cases
                .iter()
                .map(|c| CaseClause {
                    var: c.var.clone(),
                    seq_type: c.seq_type.clone(),
                    body: if c.var == from { c.body.clone() } else { rename_var(&c.body, from, to) },
                })
                .collect(),
            default_var: default_var.clone(),
            default: if default_var == from {
                default.clone()
            } else {
                rename_var(default, from, to).boxed()
            },
        },
        Expr::Execute { peer, params, body, projection } => {
            let new_params: Vec<XrpcParam> = params
                .iter()
                .map(|p| XrpcParam {
                    var: p.var.clone(),
                    outer: if p.outer == from { to.to_string() } else { p.outer.clone() },
                })
                .collect();
            // params shadow inside the body
            let body_shadowed = params.iter().any(|p| p.var == from);
            Expr::Execute {
                peer: rename_var(peer, from, to).boxed(),
                params: new_params,
                body: if body_shadowed { body.clone() } else { rename_var(body, from, to).boxed() },
                projection: projection.clone(),
            }
        }
        other => map_children_infallible(other, &mut |c| rename_var(c, from, to)),
    }
}

/// Free variables of an expression (referenced but not bound within).
pub fn free_vars(e: &Expr) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_free(e, &mut Vec::new(), &mut out);
    out
}

fn collect_free(e: &Expr, bound: &mut Vec<String>, out: &mut HashSet<String>) {
    match e {
        Expr::VarRef(v) => {
            if !bound.iter().any(|b| b == v) {
                out.insert(v.clone());
            }
        }
        Expr::For { var, seq, ret } => {
            collect_free(seq, bound, out);
            bound.push(var.clone());
            collect_free(ret, bound, out);
            bound.pop();
        }
        Expr::Let { var, value, ret } => {
            collect_free(value, bound, out);
            bound.push(var.clone());
            collect_free(ret, bound, out);
            bound.pop();
        }
        Expr::Typeswitch { input, cases, default_var, default } => {
            collect_free(input, bound, out);
            for c in cases {
                bound.push(c.var.clone());
                collect_free(&c.body, bound, out);
                bound.pop();
            }
            bound.push(default_var.clone());
            collect_free(default, bound, out);
            bound.pop();
        }
        Expr::Execute { peer, params, body, .. } => {
            collect_free(peer, bound, out);
            for p in params {
                if !bound.iter().any(|b| b == &p.outer) {
                    out.insert(p.outer.clone());
                }
            }
            let mut inner: Vec<String> = params.iter().map(|p| p.var.clone()).collect();
            let n = inner.len();
            bound.append(&mut inner);
            collect_free(body, bound, out);
            bound.truncate(bound.len() - n);
        }
        other => {
            let mut kids: Vec<&Expr> = Vec::new();
            collect_children(other, &mut kids);
            for k in kids {
                collect_free(k, bound, out);
            }
        }
    }
}

/// Collects the direct sub-expressions of `e` (no binder handling).
fn collect_children<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Literal(_) | Expr::Empty | Expr::VarRef(_) | Expr::ContextItem => {}
        Expr::Sequence(es) => out.extend(es.iter()),
        Expr::For { seq, ret, .. } => {
            out.push(seq);
            out.push(ret);
        }
        Expr::Let { value, ret, .. } => {
            out.push(value);
            out.push(ret);
        }
        Expr::If { cond, then, els } => {
            out.push(cond);
            out.push(then);
            out.push(els);
        }
        Expr::Typeswitch { input, cases, default, .. } => {
            out.push(input);
            out.extend(cases.iter().map(|c| &c.body));
            out.push(default);
        }
        Expr::Comparison { lhs, rhs, .. }
        | Expr::NodeComparison { lhs, rhs, .. }
        | Expr::NodeSet { lhs, rhs, .. }
        | Expr::Arith { lhs, rhs, .. } => {
            out.push(lhs);
            out.push(rhs);
        }
        Expr::OrderBy { input, specs } => {
            out.push(input);
            out.extend(specs.iter().map(|s| &s.key));
        }
        Expr::Construct(c) => match c {
            Constructor::Document { content } | Constructor::Text { content } => out.push(content),
            Constructor::Element { name, content } | Constructor::Attribute { name, content } => {
                if let ElemName::Computed(e) = name {
                    out.push(e);
                }
                out.push(content);
            }
        },
        Expr::Path { start, steps } => {
            if let Some(s) = start {
                out.push(s);
            }
            for st in steps {
                out.extend(st.predicates.iter());
            }
        }
        Expr::Filter { input, predicate } => {
            out.push(input);
            out.push(predicate);
        }
        Expr::FunCall { args, .. } => out.extend(args.iter()),
        Expr::And(l, r) | Expr::Or(l, r) => {
            out.push(l);
            out.push(r);
        }
        Expr::Execute { peer, body, .. } => {
            out.push(peer);
            out.push(body);
        }
    }
}

/// Rebuilds `e` with every direct child mapped through `f` (fallible).
pub fn map_children(
    e: &Expr,
    f: &mut impl FnMut(&Expr) -> Result<Expr, EvalError>,
) -> Result<Expr, EvalError> {
    Ok(match e {
        Expr::Literal(_) | Expr::Empty | Expr::VarRef(_) | Expr::ContextItem => e.clone(),
        Expr::Sequence(es) => {
            Expr::Sequence(es.iter().map(&mut *f).collect::<Result<_, _>>()?)
        }
        Expr::For { var, seq, ret } => Expr::For {
            var: var.clone(),
            seq: f(seq)?.boxed(),
            ret: f(ret)?.boxed(),
        },
        Expr::Let { var, value, ret } => Expr::Let {
            var: var.clone(),
            value: f(value)?.boxed(),
            ret: f(ret)?.boxed(),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: f(cond)?.boxed(),
            then: f(then)?.boxed(),
            els: f(els)?.boxed(),
        },
        Expr::Typeswitch { input, cases, default_var, default } => Expr::Typeswitch {
            input: f(input)?.boxed(),
            cases: cases
                .iter()
                .map(|c| {
                    Ok(CaseClause {
                        var: c.var.clone(),
                        seq_type: c.seq_type.clone(),
                        body: f(&c.body)?,
                    })
                })
                .collect::<Result<_, EvalError>>()?,
            default_var: default_var.clone(),
            default: f(default)?.boxed(),
        },
        Expr::Comparison { op, lhs, rhs } => Expr::Comparison {
            op: *op,
            lhs: f(lhs)?.boxed(),
            rhs: f(rhs)?.boxed(),
        },
        Expr::NodeComparison { op, lhs, rhs } => Expr::NodeComparison {
            op: *op,
            lhs: f(lhs)?.boxed(),
            rhs: f(rhs)?.boxed(),
        },
        Expr::OrderBy { input, specs } => Expr::OrderBy {
            input: f(input)?.boxed(),
            specs: specs
                .iter()
                .map(|s| Ok(OrderSpec { key: f(&s.key)?, descending: s.descending }))
                .collect::<Result<_, EvalError>>()?,
        },
        Expr::NodeSet { op, lhs, rhs } => Expr::NodeSet {
            op: *op,
            lhs: f(lhs)?.boxed(),
            rhs: f(rhs)?.boxed(),
        },
        Expr::Construct(c) => Expr::Construct(match c {
            Constructor::Document { content } => {
                Constructor::Document { content: f(content)?.boxed() }
            }
            Constructor::Text { content } => Constructor::Text { content: f(content)?.boxed() },
            Constructor::Element { name, content } => Constructor::Element {
                name: map_elem_name(name, f)?,
                content: f(content)?.boxed(),
            },
            Constructor::Attribute { name, content } => Constructor::Attribute {
                name: map_elem_name(name, f)?,
                content: f(content)?.boxed(),
            },
        }),
        Expr::Path { start, steps } => Expr::Path {
            start: match start {
                Some(s) => Some(f(s)?.boxed()),
                None => None,
            },
            steps: steps
                .iter()
                .map(|st| {
                    Ok(Step {
                        axis: st.axis,
                        test: st.test.clone(),
                        predicates: st
                            .predicates
                            .iter()
                            .map(&mut *f)
                            .collect::<Result<_, EvalError>>()?,
                    })
                })
                .collect::<Result<_, EvalError>>()?,
        },
        Expr::Filter { input, predicate } => Expr::Filter {
            input: f(input)?.boxed(),
            predicate: f(predicate)?.boxed(),
        },
        Expr::FunCall { name, args } => Expr::FunCall {
            name: name.clone(),
            args: args.iter().map(&mut *f).collect::<Result<_, _>>()?,
        },
        Expr::And(l, r) => Expr::And(f(l)?.boxed(), f(r)?.boxed()),
        Expr::Or(l, r) => Expr::Or(f(l)?.boxed(), f(r)?.boxed()),
        Expr::Arith { op, lhs, rhs } => Expr::Arith {
            op: *op,
            lhs: f(lhs)?.boxed(),
            rhs: f(rhs)?.boxed(),
        },
        Expr::Execute { peer, params, body, projection } => Expr::Execute {
            peer: f(peer)?.boxed(),
            params: params.clone(),
            body: f(body)?.boxed(),
            projection: projection.clone(),
        },
    })
}

/// Infallible variant of [`map_children`].
pub fn map_children_infallible(e: &Expr, f: &mut impl FnMut(&Expr) -> Expr) -> Expr {
    map_children(e, &mut |c| Ok(f(c))).expect("infallible mapping cannot fail")
}

fn map_elem_name(
    n: &ElemName,
    f: &mut impl FnMut(&Expr) -> Result<Expr, EvalError>,
) -> Result<ElemName, EvalError> {
    Ok(match n {
        ElemName::Static(s) => ElemName::Static(s.clone()),
        ElemName::Computed(e) => ElemName::Computed(f(e)?.boxed()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn inline_simple_function() {
        let m = parse_query(
            "declare function double($x as xs:integer) as xs:integer { $x + $x }; double(21)",
        )
        .unwrap();
        let e = inline_functions(&m).unwrap();
        match &e {
            Expr::Let { var, value, ret } => {
                assert!(var.starts_with("x_inl"));
                assert_eq!(**value, Expr::int(21));
                assert!(matches!(ret.as_ref(), Expr::Arith { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inline_is_hygienic() {
        // the call argument references an outer $x; the function's own $x
        // must not capture it
        let m = parse_query(
            "declare function f($x as xs:integer) { $x + 1 }; let $x := 10 return f($x + 1)",
        )
        .unwrap();
        let e = inline_functions(&m).unwrap();
        // shape: let $x := 10 return let $x_inlN := $x + 1 return $x_inlN + 1
        match &e {
            Expr::Let { var, ret, .. } => {
                assert_eq!(var, "x");
                match ret.as_ref() {
                    Expr::Let { var: inner, ret: body, .. } => {
                        assert!(inner.starts_with("x_inl"));
                        match body.as_ref() {
                            Expr::Arith { lhs, .. } => {
                                assert_eq!(**lhs, Expr::VarRef(inner.clone()));
                            }
                            other => panic!("{other:?}"),
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn recursion_is_rejected() {
        let m = parse_query("declare function f($x as xs:integer) { f($x) }; f(1)").unwrap();
        assert!(inline_functions(&m).is_err());
    }

    #[test]
    fn nested_function_calls_inline() {
        let m = parse_query(
            "declare function g($y as xs:integer) { $y * 2 }; \
             declare function f($x as xs:integer) { g($x) + 1 }; \
             f(5)",
        )
        .unwrap();
        let e = inline_functions(&m).unwrap();
        let mut has_funcall = false;
        e.walk(&mut |x| {
            if matches!(x, Expr::FunCall { name, .. } if name == "f" || name == "g") {
                has_funcall = true;
            }
        });
        assert!(!has_funcall, "all UDF calls must be gone: {e}");
    }

    #[test]
    fn filter_lowering_matches_qc2() {
        let m = parse_query("let $s := doc(\"d.xml\")/people/person return $s[tutor = $s/name]")
            .unwrap();
        let e = normalize(&m).unwrap();
        // the filter becomes for $flt in $s return if (...) then $flt else ()
        let mut found_for_if = false;
        e.walk(&mut |x| {
            if let Expr::For { var, ret, .. } = x {
                if var.starts_with("flt_") {
                    if let Expr::If { then, els, .. } = ret.as_ref() {
                        assert_eq!(**then, Expr::VarRef(var.clone()));
                        assert_eq!(**els, Expr::Empty);
                        found_for_if = true;
                    }
                }
            }
        });
        assert!(found_for_if, "filter not lowered: {e}");
    }

    #[test]
    fn positional_filters_are_kept() {
        let m = parse_query("let $x := (1,2,3) return $x[2]").unwrap();
        let e = normalize(&m).unwrap();
        let mut has_filter = false;
        e.walk(&mut |x| {
            if matches!(x, Expr::Filter { .. }) {
                has_filter = true;
            }
        });
        assert!(has_filter);
    }

    #[test]
    fn free_vars_respect_binders() {
        let m =
            parse_query("for $x in $outer return ($x, $y, let $y := 1 return $y)").unwrap();
        let fv = free_vars(&m.body);
        assert!(fv.contains("outer"));
        assert!(fv.contains("y"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn free_vars_of_execute() {
        let m = parse_query(
            "execute at { $peer } params ($a := $x) { ($a, $b) }",
        )
        .unwrap();
        let fv = free_vars(&m.body);
        assert!(fv.contains("peer"));
        assert!(fv.contains("x"), "shipped outer vars are free");
        assert!(fv.contains("b"), "body vars not bound by params are free");
        assert!(!fv.contains("a"), "params bind inside the body");
    }

    #[test]
    fn rename_respects_shadowing() {
        let m = parse_query("($x, let $x := 1 return $x)").unwrap();
        let renamed = rename_var(&m.body, "x", "z");
        match &renamed {
            Expr::Sequence(es) => {
                assert_eq!(es[0], Expr::VarRef("z".into()));
                match &es[1] {
                    Expr::Let { var, ret, .. } => {
                        assert_eq!(var, "x");
                        assert_eq!(**ret, Expr::VarRef("x".into()));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn substitute_context_stops_at_rebinders() {
        let m = parse_query("(., $s[. = 1])").unwrap();
        let out = substitute_context(&m.body, "v");
        match &out {
            Expr::Sequence(es) => {
                assert_eq!(es[0], Expr::VarRef("v".into()));
                // the nested filter predicate keeps its context item
                match &es[1] {
                    Expr::Filter { predicate, .. } => {
                        let mut has_ctx = false;
                        predicate.walk(&mut |x| {
                            if matches!(x, Expr::ContextItem) {
                                has_ctx = true;
                            }
                        });
                        assert!(has_ctx);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
