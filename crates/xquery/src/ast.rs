//! Abstract syntax for the extended XCore language of Table II
//! (rules 1–26) plus the XRPC extension (rules 27–28).
//!
//! The parser accepts a pragmatic XQuery surface syntax (FLWOR with multiple
//! clauses, `where`, abbreviated steps, predicates, `and`/`or`, arithmetic)
//! and desugars it into this single expression type; the normalizer
//! ([`mod@crate::normalize`]) then reduces the remaining sugar to the XCore
//! forms the d-graph framework operates on.

use std::fmt;

use xqd_xml::Axis;

/// Atomic values (`xs:string`, `xs:integer`, `xs:double`, `xs:boolean`, and
/// untyped atomics produced by atomizing nodes).
#[derive(Debug, Clone, PartialEq)]
pub enum Atomic {
    Str(String),
    Int(i64),
    Dbl(f64),
    Bool(bool),
    /// `xs:untypedAtomic` — the type of atomized node content; compared
    /// numerically against numbers and textually against strings.
    Untyped(String),
}

impl Atomic {
    /// Lexical form per XPath casting rules (sufficient for our subset).
    pub fn to_lexical(&self) -> String {
        match self {
            Atomic::Str(s) | Atomic::Untyped(s) => s.clone(),
            Atomic::Int(i) => i.to_string(),
            Atomic::Dbl(d) => {
                if d.fract() == 0.0 && d.is_finite() && d.abs() < 1e15 {
                    format!("{}", *d as i64)
                } else {
                    format!("{d}")
                }
            }
            Atomic::Bool(b) => b.to_string(),
        }
    }
}

/// Value / general comparison operators (XCore rule 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }
}

/// Node comparison operators (XCore rule 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeCompOp {
    /// `is` — node identity.
    Is,
    /// `<<` — strictly before in document order.
    Before,
    /// `>>` — strictly after in document order.
    After,
}

impl NodeCompOp {
    pub fn symbol(self) -> &'static str {
        match self {
            NodeCompOp::Is => "is",
            NodeCompOp::Before => "<<",
            NodeCompOp::After => ">>",
        }
    }
}

/// Node set operators (XCore rule 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeSetOp {
    Union,
    Intersect,
    Except,
}

impl NodeSetOp {
    pub fn keyword(self) -> &'static str {
        match self {
            NodeSetOp::Union => "union",
            NodeSetOp::Intersect => "intersect",
            NodeSetOp::Except => "except",
        }
    }
}

/// Arithmetic operators (surface extension; normalized queries treat them
/// like value comparisons for decomposition purposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        }
    }
}

/// Node test of an axis step (XCore rule 25).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    Name(String),
    Wildcard,
    AnyKind,
    Text,
    Comment,
}

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Name(n) => write!(f, "{n}"),
            NameTest::Wildcard => write!(f, "*"),
            NameTest::AnyKind => write!(f, "node()"),
            NameTest::Text => write!(f, "text()"),
            NameTest::Comment => write!(f, "comment()"),
        }
    }
}

/// One axis step with optional predicates (XCore keeps consecutive steps of
/// a path together, rule 20/21; predicates are our surface extension kept in
/// place because the paper's position()-free normalization allows it).
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NameTest,
    pub predicates: Vec<Expr>,
}

impl Step {
    pub fn simple(axis: Axis, test: NameTest) -> Self {
        Step { axis, test, predicates: Vec::new() }
    }
}

/// Node constructors (XCore rule 19).
#[derive(Debug, Clone, PartialEq)]
pub enum Constructor {
    Document { content: Box<Expr> },
    Text { content: Box<Expr> },
    Element { name: ElemName, content: Box<Expr> },
    Attribute { name: ElemName, content: Box<Expr> },
}

/// Static or computed constructor name.
#[derive(Debug, Clone, PartialEq)]
pub enum ElemName {
    Static(String),
    Computed(Box<Expr>),
}

/// A `typeswitch` case clause (XCore rule 11).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseClause {
    pub var: String,
    pub seq_type: SeqType,
    pub body: Expr,
}

/// Sequence types, as far as `typeswitch` needs them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqType {
    pub item: ItemType,
    pub occurrence: Occurrence,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemType {
    AnyItem,
    AnyNode,
    Element(Option<String>),
    Attribute(Option<String>),
    TextNode,
    DocumentNode,
    AtomicStr,
    AtomicInt,
    AtomicDbl,
    AtomicBool,
    AtomicUntyped,
    EmptySequence,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    One,
    Optional,
    ZeroOrMore,
    OneOrMore,
}

impl fmt::Display for SeqType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match &self.item {
            ItemType::AnyItem => "item()".to_string(),
            ItemType::AnyNode => "node()".to_string(),
            ItemType::Element(Some(n)) => format!("element({n})"),
            ItemType::Element(None) => "element()".to_string(),
            ItemType::Attribute(Some(n)) => format!("attribute({n})"),
            ItemType::Attribute(None) => "attribute()".to_string(),
            ItemType::TextNode => "text()".to_string(),
            ItemType::DocumentNode => "document-node()".to_string(),
            ItemType::AtomicStr => "xs:string".to_string(),
            ItemType::AtomicInt => "xs:integer".to_string(),
            ItemType::AtomicDbl => "xs:double".to_string(),
            ItemType::AtomicBool => "xs:boolean".to_string(),
            ItemType::AtomicUntyped => "xs:untypedAtomic".to_string(),
            ItemType::EmptySequence => return write!(f, "empty-sequence()"),
        };
        let occ = match self.occurrence {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::ZeroOrMore => "*",
            Occurrence::OneOrMore => "+",
        };
        write!(f, "{base}{occ}")
    }
}

/// One `order by` specification (XCore rule 16): a key expression evaluated
/// with each input item as context item, plus a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    pub key: Expr,
    pub descending: bool,
}

/// The XCore expression language (Table II + rules 27–28).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Rule 3: Literal.
    Literal(Atomic),
    /// `()`.
    Empty,
    /// Rule 2: ExprSeq with at least two members after parsing.
    Sequence(Vec<Expr>),
    /// Rule 4: VarRef.
    VarRef(String),
    /// The context item `.` — used inside step predicates and order-by
    /// keys; not part of Table II but required to express them.
    ContextItem,
    /// Rule 6: ForExpr.
    For { var: String, seq: Box<Expr>, ret: Box<Expr> },
    /// Rule 7: LetExpr.
    Let { var: String, value: Box<Expr>, ret: Box<Expr> },
    /// Rule 8: IfExpr.
    If { cond: Box<Expr>, then: Box<Expr>, els: Box<Expr> },
    /// Rule 10: Typeswitch.
    Typeswitch {
        input: Box<Expr>,
        cases: Vec<CaseClause>,
        default_var: String,
        default: Box<Expr>,
    },
    /// Rule 12/13: value (general) comparison.
    Comparison { op: CompOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Rule 12/14: node comparison.
    NodeComparison { op: NodeCompOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Rule 15: OrderExpr.
    OrderBy { input: Box<Expr>, specs: Vec<OrderSpec> },
    /// Rule 17: NodeSetExpr.
    NodeSet { op: NodeSetOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Rule 19: Constructor.
    Construct(Constructor),
    /// Rules 20/21: a path: a start expression followed by axis steps.
    /// `start == None` means the path starts at the context document root
    /// (`/a/b` form).
    Path { start: Option<Box<Expr>>, steps: Vec<Step> },
    /// Surface filter `expr[pred]` on a non-step expression; normalized to
    /// For/If unless the predicate is positional.
    Filter { input: Box<Expr>, predicate: Box<Expr> },
    /// Rule 26: function call (built-in or user-defined).
    FunCall { name: String, args: Vec<Expr> },
    /// Surface logic, analyzed like IfExpr.
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    /// Surface arithmetic, analyzed like CompExpr.
    Arith { op: ArithOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Rules 27–28: `execute at {peer} { body }` with parameter bindings
    /// `$param := $outer` mapping outer-scope variables into the remote
    /// function's scope. `projection` carries the relative projection paths
    /// computed by by-projection decomposition (Section VI); it is `None`
    /// for by-value / by-fragment calls.
    Execute {
        peer: Box<Expr>,
        params: Vec<XrpcParam>,
        body: Box<Expr>,
        projection: Option<Box<ExecProjection>>,
    },
}

/// One step of a *relative* projection path (Table V grammar): a plain axis
/// step or one of the built-in function markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelStep {
    Axis { axis: Axis, test: NameTest },
    /// `root()`
    Root,
    /// `id()`
    Id,
    /// `idref()`
    Idref,
}

impl fmt::Display for RelStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelStep::Axis { axis, test } => write!(f, "{}::{}", axis.name(), test),
            RelStep::Root => write!(f, "root()"),
            RelStep::Id => write!(f, "id()"),
            RelStep::Idref => write!(f, "idref()"),
        }
    }
}

/// A relative projection path: a sequence of [`RelStep`]s applied to a
/// materialized context sequence (a shipped parameter or a call result).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelPath(pub Vec<RelStep>);

impl fmt::Display for RelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "self::node()");
        }
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Used/returned relative paths for one projection context
/// (`Urel`/`Rrel` of Section VI-B).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathSpec {
    pub used: Vec<RelPath>,
    pub returned: Vec<RelPath>,
}

/// Projection metadata attached to an `Execute` by by-projection
/// decomposition: per-parameter request projections plus the response
/// projection the remote side must apply to the call result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecProjection {
    /// Parallel to `Execute::params`: how each shipped parameter is used by
    /// the remote body.
    pub params: Vec<PathSpec>,
    /// How the *caller* consumes the call result (`Urel(vxrpc)`,
    /// `Rrel(vxrpc)`); shipped inside the request's `projection-paths`
    /// element so the remote peer can project the response.
    pub result: PathSpec,
}

/// Rule 28: one XRPCParam binding `$var := $outer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XrpcParam {
    /// Fresh variable visible inside the shipped body.
    pub var: String,
    /// Variable in the surrounding query whose value is shipped.
    pub outer: String,
}

/// A user-defined function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    pub name: String,
    pub params: Vec<(String, Option<SeqType>)>,
    pub return_type: Option<SeqType>,
    pub body: Expr,
}

/// A parsed query module: function declarations plus the main expression.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryModule {
    pub functions: Vec<FunctionDef>,
    pub body: Expr,
}

impl QueryModule {
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl Expr {
    pub fn boxed(self) -> Box<Expr> {
        Box::new(self)
    }

    /// Convenience constructor for string literals.
    pub fn str(s: &str) -> Expr {
        Expr::Literal(Atomic::Str(s.to_string()))
    }

    pub fn int(i: i64) -> Expr {
        Expr::Literal(Atomic::Int(i))
    }

    /// `fn:doc("uri")`.
    pub fn doc(uri: &str) -> Expr {
        Expr::FunCall { name: "doc".into(), args: vec![Expr::str(uri)] }
    }

    /// Visits this expression and all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Empty | Expr::VarRef(_) | Expr::ContextItem => {}
            Expr::Sequence(es) => es.iter().for_each(|e| e.walk(f)),
            Expr::For { seq, ret, .. } => {
                seq.walk(f);
                ret.walk(f);
            }
            Expr::Let { value, ret, .. } => {
                value.walk(f);
                ret.walk(f);
            }
            Expr::If { cond, then, els } => {
                cond.walk(f);
                then.walk(f);
                els.walk(f);
            }
            Expr::Typeswitch { input, cases, default, .. } => {
                input.walk(f);
                cases.iter().for_each(|c| c.body.walk(f));
                default.walk(f);
            }
            Expr::Comparison { lhs, rhs, .. }
            | Expr::NodeComparison { lhs, rhs, .. }
            | Expr::NodeSet { lhs, rhs, .. }
            | Expr::Arith { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::OrderBy { input, specs } => {
                input.walk(f);
                specs.iter().for_each(|s| s.key.walk(f));
            }
            Expr::Construct(c) => match c {
                Constructor::Document { content } | Constructor::Text { content } => {
                    content.walk(f)
                }
                Constructor::Element { name, content }
                | Constructor::Attribute { name, content } => {
                    if let ElemName::Computed(e) = name {
                        e.walk(f);
                    }
                    content.walk(f);
                }
            },
            Expr::Path { start, steps } => {
                if let Some(s) = start {
                    s.walk(f);
                }
                steps.iter().for_each(|st| st.predicates.iter().for_each(|p| p.walk(f)));
            }
            Expr::Filter { input, predicate } => {
                input.walk(f);
                predicate.walk(f);
            }
            Expr::FunCall { args, .. } => args.iter().for_each(|a| a.walk(f)),
            Expr::And(l, r) | Expr::Or(l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Execute { peer, body, .. } => {
                peer.walk(f);
                body.walk(f);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pretty printer: emits parseable XQuery text. Used by the XRPC request
// codec (function bodies travel as XQuery source, mirroring XRPC's
// module-based remote invocation) and by the `decompose_explain` example.
// ---------------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        print_expr(self, &mut out);
        f.write_str(&out)
    }
}

/// Serializes an expression to parseable XQuery text.
pub fn print_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Literal(a) => match a {
            Atomic::Str(s) | Atomic::Untyped(s) => {
                out.push('"');
                for c in s.chars() {
                    if c == '"' {
                        out.push_str("\"\"");
                    } else {
                        out.push(c);
                    }
                }
                out.push('"');
            }
            Atomic::Int(i) => out.push_str(&i.to_string()),
            Atomic::Dbl(d) => {
                let s = format!("{d}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN")
                {
                    out.push_str(".0");
                }
            }
            Atomic::Bool(b) => out.push_str(if *b { "true()" } else { "false()" }),
        },
        Expr::Empty => out.push_str("()"),
        Expr::Sequence(es) => {
            // members print parenthesized where needed: a bare OrderExpr
            // would swallow the following comma as an extra order spec
            out.push('(');
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_paren(e, out);
            }
            out.push(')');
        }
        Expr::VarRef(v) => {
            out.push('$');
            out.push_str(v);
        }
        Expr::ContextItem => out.push('.'),
        Expr::For { var, seq, ret } => {
            out.push_str("for $");
            out.push_str(var);
            out.push_str(" in ");
            print_binding(seq, out);
            out.push_str(" return ");
            print_expr(ret, out);
        }
        Expr::Let { var, value, ret } => {
            out.push_str("let $");
            out.push_str(var);
            out.push_str(" := ");
            print_binding(value, out);
            out.push_str(" return ");
            print_expr(ret, out);
        }
        Expr::If { cond, then, els } => {
            out.push_str("if (");
            print_expr(cond, out);
            out.push_str(") then ");
            print_expr(then, out);
            out.push_str(" else ");
            print_expr(els, out);
        }
        Expr::Typeswitch { input, cases, default_var, default } => {
            out.push_str("typeswitch (");
            print_expr(input, out);
            out.push(')');
            for c in cases {
                out.push_str(&format!(" case ${} as {} return ", c.var, c.seq_type));
                print_expr(&c.body, out);
            }
            out.push_str(&format!(" default ${default_var} return "));
            print_expr(default, out);
        }
        Expr::Comparison { op, lhs, rhs } => {
            print_paren(lhs, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            print_paren(rhs, out);
        }
        Expr::NodeComparison { op, lhs, rhs } => {
            print_paren(lhs, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            print_paren(rhs, out);
        }
        Expr::OrderBy { input, specs } => {
            print_paren(input, out);
            out.push_str(" order by ");
            for (i, s) in specs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                // keys parse with standalone order-by disabled: nested
                // OrderExprs need parentheses
                print_binding(&s.key, out);
                if s.descending {
                    out.push_str(" descending");
                }
            }
        }
        Expr::NodeSet { op, lhs, rhs } => {
            print_paren(lhs, out);
            out.push(' ');
            out.push_str(op.keyword());
            out.push(' ');
            print_paren(rhs, out);
        }
        Expr::Construct(c) => match c {
            Constructor::Document { content } => {
                out.push_str("document { ");
                print_expr(content, out);
                out.push_str(" }");
            }
            Constructor::Text { content } => {
                out.push_str("text { ");
                print_expr(content, out);
                out.push_str(" }");
            }
            Constructor::Element { name, content } => {
                out.push_str("element ");
                print_elem_name(name, out);
                out.push_str(" { ");
                print_expr(content, out);
                out.push_str(" }");
            }
            Constructor::Attribute { name, content } => {
                out.push_str("attribute ");
                print_elem_name(name, out);
                out.push_str(" { ");
                print_expr(content, out);
                out.push_str(" }");
            }
        },
        Expr::Path { start, steps } => {
            match start {
                Some(s) => print_paren(s, out),
                None => {
                    // leading "/" handled below by always prefixing
                }
            }
            for step in steps {
                out.push('/');
                out.push_str(step.axis.name());
                out.push_str("::");
                out.push_str(&step.test.to_string());
                for p in &step.predicates {
                    out.push('[');
                    print_expr(p, out);
                    out.push(']');
                }
            }
            if steps.is_empty() && start.is_none() {
                out.push('/');
            }
        }
        Expr::Filter { input, predicate } => {
            // the input is always parenthesized: `E//x[1]` would re-parse
            // as a per-step predicate, which filters per context node
            // rather than over the whole sequence
            out.push('(');
            print_expr(input, out);
            out.push_str(")[");
            print_expr(predicate, out);
            out.push(']');
        }
        Expr::FunCall { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                // parenthesized for the same comma-ambiguity reason as
                // sequence members
                print_paren(a, out);
            }
            out.push(')');
        }
        Expr::And(l, r) => {
            print_paren(l, out);
            out.push_str(" and ");
            print_paren(r, out);
        }
        Expr::Or(l, r) => {
            print_paren(l, out);
            out.push_str(" or ");
            print_paren(r, out);
        }
        Expr::Arith { op, lhs, rhs } => {
            print_paren(lhs, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            print_paren(rhs, out);
        }
        Expr::Execute { peer, params, body, .. } => {
            out.push_str("execute at { ");
            print_expr(peer, out);
            out.push_str(" } params (");
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("${} := ${}", p.var, p.outer));
            }
            out.push_str(") { ");
            print_expr(body, out);
            out.push_str(" }");
        }
    }
}

fn print_elem_name(name: &ElemName, out: &mut String) {
    match name {
        ElemName::Static(n) => out.push_str(n),
        ElemName::Computed(e) => {
            out.push_str("{ ");
            print_expr(e, out);
            out.push_str(" }");
        }
    }
}

fn needs_parens(e: &Expr) -> bool {
    matches!(
        e,
        Expr::For { .. }
            | Expr::Let { .. }
            | Expr::If { .. }
            | Expr::Comparison { .. }
            | Expr::NodeComparison { .. }
            | Expr::NodeSet { .. }
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Arith { .. }
            | Expr::OrderBy { .. }
            | Expr::Typeswitch { .. }
            | Expr::Execute { .. }
    )
}

/// Binding values (`for $x in …`, `let $x := …`) parse with standalone
/// `order by` disabled (it belongs to the FLWOR), so an OrderExpr value
/// must be parenthesized.
fn print_binding(e: &Expr, out: &mut String) {
    if matches!(e, Expr::OrderBy { .. }) {
        out.push('(');
        print_expr(e, out);
        out.push(')');
    } else {
        print_expr(e, out);
    }
}

fn print_paren(e: &Expr, out: &mut String) {
    if needs_parens(e) {
        out.push('(');
        print_expr(e, out);
        out.push(')');
    } else {
        print_expr(e, out);
    }
}

/// Serializes a whole module (function declarations + body).
pub fn print_module(m: &QueryModule, out: &mut String) {
    for f in &m.functions {
        out.push_str("declare function ");
        out.push_str(&f.name);
        out.push('(');
        for (i, (p, t)) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('$');
            out.push_str(p);
            if let Some(t) = t {
                out.push_str(&format!(" as {t}"));
            }
        }
        out.push(')');
        if let Some(t) = &f.return_type {
            out.push_str(&format!(" as {t}"));
        }
        out.push_str(" { ");
        print_expr(&f.body, out);
        out.push_str(" };\n");
    }
    print_expr(&m.body, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Let {
            var: "x".into(),
            value: Expr::doc("a.xml").boxed(),
            ret: Expr::If {
                cond: Expr::Comparison {
                    op: CompOp::Eq,
                    lhs: Expr::VarRef("x".into()).boxed(),
                    rhs: Expr::int(1).boxed(),
                }
                .boxed(),
                then: Expr::VarRef("x".into()).boxed(),
                els: Expr::Empty.boxed(),
            }
            .boxed(),
        };
        // Let, FunCall(doc), Literal(uri), If, Comparison, VarRef, Literal(1), VarRef, Empty
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 9);
    }

    #[test]
    fn print_roundtrip_shapes() {
        let e = Expr::For {
            var: "x".into(),
            seq: Expr::Path {
                start: Some(Expr::doc("d.xml").boxed()),
                steps: vec![Step::simple(Axis::Child, NameTest::Name("a".into()))],
            }
            .boxed(),
            ret: Expr::VarRef("x".into()).boxed(),
        };
        assert_eq!(e.to_string(), "for $x in doc(\"d.xml\")/child::a return $x");
    }

    #[test]
    fn print_execute() {
        let e = Expr::Execute {
            peer: Expr::str("peer1").boxed(),
            params: vec![XrpcParam { var: "p".into(), outer: "t".into() }],
            body: Expr::VarRef("p".into()).boxed(),
            projection: None,
        };
        assert_eq!(e.to_string(), "execute at { \"peer1\" } params ($p := $t) { $p }");
    }

    #[test]
    fn atomic_lexical_forms() {
        assert_eq!(Atomic::Int(-3).to_lexical(), "-3");
        assert_eq!(Atomic::Dbl(2.0).to_lexical(), "2");
        assert_eq!(Atomic::Dbl(2.5).to_lexical(), "2.5");
        assert_eq!(Atomic::Bool(true).to_lexical(), "true");
        assert_eq!(Atomic::Untyped("x".into()).to_lexical(), "x");
    }

    #[test]
    fn seq_type_display() {
        let t = SeqType { item: ItemType::Element(Some("person".into())), occurrence: Occurrence::ZeroOrMore };
        assert_eq!(t.to_string(), "element(person)*");
        let t2 = SeqType { item: ItemType::AtomicStr, occurrence: Occurrence::One };
        assert_eq!(t2.to_string(), "xs:string");
    }
}
